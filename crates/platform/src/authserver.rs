//! Authoritative nameservers with query logs.
//!
//! The query log is the paper's observation channel: the CDE infrastructure
//! "counts the number of queries arriving at our nameservers" (§IV-A). The
//! `minimal_responses` switch mirrors BIND's option of the same name; the
//! CNAME-chain bypass (§IV-B2a) needs it on so resolving the alias target
//! costs the resolver a separate, countable query.

use cde_dns::zone::LookupResult;
use cde_dns::{Edns, Message, Name, Question, Rcode, RecordType, Zone};
use cde_netsim::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One query observed by an authoritative server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryLogEntry {
    /// Virtual time of arrival.
    pub at: SimTime,
    /// Source (egress) address the query came from.
    pub from: Ipv4Addr,
    /// Queried name.
    pub qname: Name,
    /// Queried type.
    pub qtype: RecordType,
    /// EDNS parameters advertised by the querier, when any (the paper's
    /// §II-C EDNS-adoption use case measures exactly this field).
    pub edns: Option<Edns>,
}

/// An authoritative nameserver serving one or more zones.
///
/// # Examples
///
/// ```
/// use cde_platform::AuthServer;
/// use cde_dns::{Name, Question, RecordType, Ttl, Zone};
/// use cde_netsim::SimTime;
/// use std::net::Ipv4Addr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let apex: Name = "cache.example".parse()?;
/// let zone = Zone::with_soa(apex.clone(), Ttl::from_secs(300));
/// let mut server = AuthServer::new(Ipv4Addr::new(198, 51, 100, 53), vec![zone]);
/// let q = Question::new(apex, RecordType::Soa);
/// let resp = server.handle(Ipv4Addr::new(203, 0, 113, 9), &q, SimTime::ZERO);
/// assert!(resp.flags.aa);
/// assert_eq!(server.log().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AuthServer {
    addr: Ipv4Addr,
    zones: Vec<Zone>,
    minimal_responses: bool,
    log: Vec<QueryLogEntry>,
}

impl AuthServer {
    /// Creates a server at `addr` serving `zones`.
    pub fn new(addr: Ipv4Addr, zones: Vec<Zone>) -> AuthServer {
        AuthServer {
            addr,
            zones,
            minimal_responses: true,
            log: Vec::new(),
        }
    }

    /// Server address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// Enables or disables target chasing in CNAME answers. With minimal
    /// responses on (the default, and BIND's common configuration), the
    /// alias target's records are *not* appended, forcing resolvers to
    /// issue a separate query — the signal the CNAME-chain bypass counts.
    pub fn set_minimal_responses(&mut self, on: bool) {
        self.minimal_responses = on;
    }

    /// Mutable access to a served zone by apex (for planting records).
    pub fn zone_mut(&mut self, apex: &Name) -> Option<&mut Zone> {
        self.zones.iter_mut().find(|z| z.apex() == apex)
    }

    /// Starts serving an additional zone (measurement sessions delegate
    /// fresh subzones onto a shared server).
    pub fn add_zone(&mut self, zone: Zone) {
        self.zones.push(zone);
    }

    /// The query log, in arrival order.
    pub fn log(&self) -> &[QueryLogEntry] {
        &self.log
    }

    /// Appends an externally observed query to the log.
    ///
    /// Live measurement engines serve snapshots of this server over real
    /// sockets on worker threads; the queries those snapshots observe are
    /// streamed back and re-recorded here so the canonical net remains the
    /// single observation point the measurement code reads.
    pub fn record_query(&mut self, entry: QueryLogEntry) {
        self.log.push(entry);
    }

    /// Clears the query log (between measurement rounds).
    pub fn clear_log(&mut self) {
        self.log.clear();
    }

    /// Number of logged queries matching `qname` (any type).
    pub fn count_queries_for(&self, qname: &Name) -> usize {
        self.log.iter().filter(|e| &e.qname == qname).count()
    }

    /// Distinct source addresses seen asking for `qname`.
    pub fn sources_for(&self, qname: &Name) -> Vec<Ipv4Addr> {
        let mut out: Vec<Ipv4Addr> = self
            .log
            .iter()
            .filter(|e| &e.qname == qname)
            .map(|e| e.from)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Finds the best zone for `qname`: the one with the deepest apex that
    /// contains the name.
    fn best_zone(&self, qname: &Name) -> Option<&Zone> {
        self.zones
            .iter()
            .filter(|z| z.contains_name(qname))
            .max_by_key(|z| z.apex().label_count())
    }

    /// Handles one query without EDNS: logs it and synthesises the answer.
    pub fn handle(&mut self, from: Ipv4Addr, q: &Question, now: SimTime) -> Message {
        self.handle_with_edns(from, q, None, now)
    }

    /// Handles one query carrying the querier's EDNS advertisement.
    pub fn handle_with_edns(
        &mut self,
        from: Ipv4Addr,
        q: &Question,
        edns: Option<Edns>,
        now: SimTime,
    ) -> Message {
        self.log.push(QueryLogEntry {
            at: now,
            from,
            qname: q.qname().clone(),
            qtype: q.qtype(),
            edns,
        });

        let query = Message::query(0, q.clone());
        let mut resp = Message::response_to(&query);

        let Some(zone) = self.best_zone(q.qname()) else {
            resp.flags.rcode = Rcode::Refused;
            return resp;
        };

        match zone.lookup(q.qname(), q.qtype()) {
            LookupResult::Answer(rrs) => {
                resp.flags.aa = true;
                resp.answers = rrs;
            }
            LookupResult::Cname {
                chain,
                target_records,
            } => {
                resp.flags.aa = true;
                resp.answers = chain;
                if !self.minimal_responses {
                    resp.answers.extend(target_records);
                }
            }
            LookupResult::Referral { ns_records, glue } => {
                resp.flags.aa = false;
                resp.authorities = ns_records;
                resp.additionals = glue;
            }
            LookupResult::NoData { soa } => {
                resp.flags.aa = true;
                resp.authorities.extend(soa);
            }
            LookupResult::NxDomain { soa } => {
                resp.flags.aa = true;
                resp.flags.rcode = Rcode::NxDomain;
                resp.authorities.extend(soa);
            }
        }
        resp
    }
}

/// The set of authoritative servers reachable in the simulated Internet,
/// with root hints.
///
/// A thin registry: the platform's egress resolvers address servers by IP,
/// exactly as real resolvers do.
#[derive(Debug, Default, Clone)]
pub struct NameserverNet {
    servers: HashMap<Ipv4Addr, AuthServer>,
    root_addr: Option<Ipv4Addr>,
}

impl NameserverNet {
    /// Creates an empty network.
    pub fn new() -> NameserverNet {
        NameserverNet::default()
    }

    /// Registers a server; the first server registered with a root zone
    /// (apex `.`) becomes the root hint.
    pub fn add_server(&mut self, server: AuthServer) {
        if self.root_addr.is_none() && server.zones.iter().any(|z| z.apex().is_root()) {
            self.root_addr = Some(server.addr);
        }
        self.servers.insert(server.addr, server);
    }

    /// Root server address.
    ///
    /// # Panics
    ///
    /// Panics when no root server was registered.
    pub fn root_addr(&self) -> Ipv4Addr {
        self.root_addr.expect("a root server must be registered")
    }

    /// Shared access to a server.
    pub fn server(&self, addr: Ipv4Addr) -> Option<&AuthServer> {
        self.servers.get(&addr)
    }

    /// Mutable access to a server.
    pub fn server_mut(&mut self, addr: Ipv4Addr) -> Option<&mut AuthServer> {
        self.servers.get_mut(&addr)
    }

    /// Delivers one query to the server at `addr`.
    ///
    /// Returns `None` when no server listens there (the query blackholes).
    pub fn deliver(
        &mut self,
        addr: Ipv4Addr,
        from: Ipv4Addr,
        q: &Question,
        now: SimTime,
    ) -> Option<Message> {
        self.servers.get_mut(&addr).map(|s| s.handle(from, q, now))
    }

    /// Like [`NameserverNet::deliver`] with the querier's EDNS parameters.
    pub fn deliver_with_edns(
        &mut self,
        addr: Ipv4Addr,
        from: Ipv4Addr,
        q: &Question,
        edns: Option<Edns>,
        now: SimTime,
    ) -> Option<Message> {
        self.servers
            .get_mut(&addr)
            .map(|s| s.handle_with_edns(from, q, edns, now))
    }

    /// Iterates over all registered servers.
    pub fn servers(&self) -> impl Iterator<Item = &AuthServer> + '_ {
        self.servers.values()
    }

    /// Clears every server's query log.
    pub fn clear_logs(&mut self) {
        for s in self.servers.values_mut() {
            s.clear_log();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cde_dns::{RData, Record, Ttl};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn cde_zone() -> Zone {
        let mut z = Zone::with_soa(n("cache.example"), Ttl::from_secs(300));
        z.add(Record::new(
            n("name.cache.example"),
            Ttl::from_secs(3600),
            RData::A(ip(198, 51, 100, 4)),
        ))
        .unwrap();
        z.add(Record::new(
            n("x-1.cache.example"),
            Ttl::from_secs(3600),
            RData::Cname(n("name.cache.example")),
        ))
        .unwrap();
        z
    }

    #[test]
    fn handle_logs_and_answers() {
        let mut s = AuthServer::new(ip(9, 9, 9, 9), vec![cde_zone()]);
        let resp = s.handle(
            ip(1, 2, 3, 4),
            &Question::new(n("name.cache.example"), RecordType::A),
            SimTime::ZERO,
        );
        assert!(resp.flags.aa);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(s.count_queries_for(&n("name.cache.example")), 1);
        assert_eq!(s.log()[0].from, ip(1, 2, 3, 4));
    }

    #[test]
    fn minimal_responses_hide_cname_target() {
        let mut s = AuthServer::new(ip(9, 9, 9, 9), vec![cde_zone()]);
        let q = Question::new(n("x-1.cache.example"), RecordType::A);
        let resp = s.handle(ip(1, 1, 1, 1), &q, SimTime::ZERO);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(resp.answers[0].rtype(), RecordType::Cname);
    }

    #[test]
    fn full_responses_chase_cname_target() {
        let mut s = AuthServer::new(ip(9, 9, 9, 9), vec![cde_zone()]);
        s.set_minimal_responses(false);
        let q = Question::new(n("x-1.cache.example"), RecordType::A);
        let resp = s.handle(ip(1, 1, 1, 1), &q, SimTime::ZERO);
        assert_eq!(resp.answers.len(), 2);
    }

    #[test]
    fn unknown_zone_is_refused() {
        let mut s = AuthServer::new(ip(9, 9, 9, 9), vec![cde_zone()]);
        let resp = s.handle(
            ip(1, 1, 1, 1),
            &Question::new(n("elsewhere.test"), RecordType::A),
            SimTime::ZERO,
        );
        assert_eq!(resp.flags.rcode, Rcode::Refused);
    }

    #[test]
    fn nxdomain_carries_soa() {
        let mut s = AuthServer::new(ip(9, 9, 9, 9), vec![cde_zone()]);
        let resp = s.handle(
            ip(1, 1, 1, 1),
            &Question::new(n("nope.cache.example"), RecordType::A),
            SimTime::ZERO,
        );
        assert_eq!(resp.flags.rcode, Rcode::NxDomain);
        assert_eq!(resp.authorities.len(), 1);
        assert_eq!(resp.authorities[0].rtype(), RecordType::Soa);
    }

    #[test]
    fn sources_are_deduplicated() {
        let mut s = AuthServer::new(ip(9, 9, 9, 9), vec![cde_zone()]);
        let q = Question::new(n("name.cache.example"), RecordType::A);
        for src in [ip(1, 1, 1, 1), ip(2, 2, 2, 2), ip(1, 1, 1, 1)] {
            s.handle(src, &q, SimTime::ZERO);
        }
        assert_eq!(
            s.sources_for(&n("name.cache.example")),
            vec![ip(1, 1, 1, 1), ip(2, 2, 2, 2)]
        );
    }

    #[test]
    fn deepest_zone_wins() {
        let parent = cde_zone();
        let mut child = Zone::with_soa(n("sub.cache.example"), Ttl::from_secs(60));
        child
            .add(Record::new(
                n("w.sub.cache.example"),
                Ttl::from_secs(60),
                RData::A(ip(4, 4, 4, 4)),
            ))
            .unwrap();
        let mut s = AuthServer::new(ip(9, 9, 9, 9), vec![parent, child]);
        let resp = s.handle(
            ip(1, 1, 1, 1),
            &Question::new(n("w.sub.cache.example"), RecordType::A),
            SimTime::ZERO,
        );
        assert!(resp.flags.aa);
        assert_eq!(resp.answers.len(), 1);
    }

    #[test]
    fn net_registers_root_and_delivers() {
        let mut net = NameserverNet::new();
        let mut root_zone = Zone::new(Name::root());
        root_zone
            .add(Record::new(
                n("example"),
                Ttl::from_secs(86400),
                RData::Ns(n("ns.example")),
            ))
            .unwrap();
        root_zone
            .add(Record::new(
                n("ns.example"),
                Ttl::from_secs(86400),
                RData::A(ip(10, 0, 0, 1)),
            ))
            .unwrap();
        net.add_server(AuthServer::new(ip(10, 0, 0, 250), vec![root_zone]));
        net.add_server(AuthServer::new(ip(10, 0, 0, 1), vec![cde_zone()]));
        assert_eq!(net.root_addr(), ip(10, 0, 0, 250));
        let resp = net
            .deliver(
                ip(10, 0, 0, 250),
                ip(7, 7, 7, 7),
                &Question::new(n("name.cache.example"), RecordType::A),
                SimTime::ZERO,
            )
            .unwrap();
        // The root zone contains every name, so the root answers with a
        // referral towards `example` (NoError, not authoritative).
        assert_eq!(resp.flags.rcode, Rcode::NoError);
        assert!(!resp.flags.aa);
        assert_eq!(resp.authorities.len(), 1);
        assert_eq!(resp.authorities[0].name(), &n("example"));
        assert!(net
            .deliver(
                ip(1, 2, 3, 4),
                ip(7, 7, 7, 7),
                &Question::new(n("x"), RecordType::A),
                SimTime::ZERO
            )
            .is_none());
    }

    #[test]
    fn clear_logs_resets_all_servers() {
        let mut net = NameserverNet::new();
        net.add_server(AuthServer::new(ip(10, 0, 0, 1), vec![cde_zone()]));
        net.deliver(
            ip(10, 0, 0, 1),
            ip(7, 7, 7, 7),
            &Question::new(n("name.cache.example"), RecordType::A),
            SimTime::ZERO,
        );
        net.clear_logs();
        assert!(net.server(ip(10, 0, 0, 1)).unwrap().log().is_empty());
    }
}
