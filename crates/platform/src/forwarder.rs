//! Forwarders: resolvers that relay to an upstream platform.
//!
//! The paper (§VI) observes that "ingress resolvers are also often
//! configured to use upstream caches, such as Google Public DNS, in which
//! cases the client will only see the forwarder whose sole functionality
//! is to relay queries, while the complex caching logic is performed by
//! the upstream cache." A [`Forwarder`] models exactly that: one address
//! facing clients, an optional small local cache, and an upstream
//! platform ingress it relays misses to.
//!
//! Measurement consequences (covered by tests here and used in the
//! ablations): a *pure relay* is transparent — enumeration counts the
//! upstream's caches; a *caching* forwarder absorbs repeated names, so
//! identical-query enumeration sees exactly one cache (the forwarder's
//! own), while the CNAME-farm technique still reaches the upstream.

use crate::authserver::NameserverNet;
use crate::platform::{PlatformError, PlatformResponse, ResolutionPlatform};
use crate::resolver::ResolveResult;
use cde_cache::{CacheConfig, CacheLookup, DnsCache};
use cde_dns::{Name, RecordType};
use cde_netsim::{DetRng, LatencyModel, SimTime};
use std::net::Ipv4Addr;

/// A forwarding resolver in front of an upstream platform.
///
/// # Examples
///
/// ```
/// use cde_platform::testnet::build_simple_world;
/// use cde_platform::Forwarder;
/// use cde_dns::RecordType;
/// use cde_netsim::SimTime;
/// use std::net::Ipv4Addr;
///
/// let mut world = build_simple_world(2, 11);
/// let upstream_ingress = world.platform.ingress_ips()[0];
/// let mut fwd = Forwarder::pure_relay(Ipv4Addr::new(198, 18, 7, 53), upstream_ingress, 5);
/// let resp = fwd
///     .handle_query(
///         Ipv4Addr::new(203, 0, 113, 4),
///         &"name.cache.example".parse().unwrap(),
///         RecordType::A,
///         SimTime::ZERO,
///         &mut world.platform,
///         &mut world.net,
///     )
///     .unwrap();
/// assert!(resp.outcome.result.is_success());
/// ```
#[derive(Debug)]
pub struct Forwarder {
    addr: Ipv4Addr,
    upstream_ingress: Ipv4Addr,
    cache: Option<DnsCache>,
    hop_latency: LatencyModel,
    rng: DetRng,
    relayed: u64,
    served_locally: u64,
}

impl Forwarder {
    /// A forwarder that relays everything (no local cache).
    pub fn pure_relay(addr: Ipv4Addr, upstream_ingress: Ipv4Addr, seed: u64) -> Forwarder {
        Forwarder {
            addr,
            upstream_ingress,
            cache: None,
            hop_latency: LatencyModel::datacenter(),
            rng: DetRng::seed(seed).fork("forwarder"),
            relayed: 0,
            served_locally: 0,
        }
    }

    /// A forwarder with its own small cache in front of the upstream.
    pub fn caching(
        addr: Ipv4Addr,
        upstream_ingress: Ipv4Addr,
        capacity: usize,
        seed: u64,
    ) -> Forwarder {
        Forwarder {
            cache: Some(DnsCache::new(
                seed ^ 0xF0,
                CacheConfig {
                    capacity,
                    ..CacheConfig::default()
                },
            )),
            ..Forwarder::pure_relay(addr, upstream_ingress, seed)
        }
    }

    /// The forwarder's client-facing address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// `true` when the forwarder has a local cache.
    pub fn is_caching(&self) -> bool {
        self.cache.is_some()
    }

    /// Queries relayed upstream so far.
    pub fn relayed(&self) -> u64 {
        self.relayed
    }

    /// Queries answered from the local cache so far.
    pub fn served_locally(&self) -> u64 {
        self.served_locally
    }

    /// Handles one client query: local cache first (when present), then
    /// relay to the upstream platform's ingress.
    ///
    /// # Errors
    ///
    /// Propagates [`PlatformError::UnknownIngress`] when the configured
    /// upstream ingress is wrong.
    pub fn handle_query(
        &mut self,
        src: Ipv4Addr,
        qname: &Name,
        qtype: RecordType,
        now: SimTime,
        upstream: &mut ResolutionPlatform,
        net: &mut NameserverNet,
    ) -> Result<PlatformResponse, PlatformError> {
        let hop = self.hop_latency.sample(&mut self.rng);
        if let Some(cache) = &mut self.cache {
            if let CacheLookup::Hit(records) = cache.lookup(qname, qtype, now) {
                self.served_locally += 1;
                return Ok(PlatformResponse {
                    outcome: crate::resolver::ResolveOutcome {
                        result: ResolveResult::Records(records),
                        latency: hop * 2,
                        upstream_queries: 0,
                        cache_hit: true,
                    },
                    truth_cluster: usize::MAX, // served by the forwarder itself
                    truth_cache: usize::MAX,
                });
            }
        }
        self.relayed += 1;
        // The upstream sees the forwarder as the client.
        let mut resp =
            upstream.handle_query(self.addr, self.upstream_ingress, qname, qtype, now, net)?;
        let _ = src;
        resp.outcome.latency += hop * 2;
        if let Some(cache) = &mut self.cache {
            if let ResolveResult::Records(records) = &resp.outcome.result {
                cache.insert(qname.clone(), qtype, records.clone(), now);
            }
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::testnet::{build_simple_world, CDE_ZONE_SERVER};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn client() -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, 31)
    }

    #[test]
    fn pure_relay_is_transparent_to_enumeration() {
        // q identical queries through a pure relay touch every upstream
        // cache, exactly as direct queries would.
        let mut w = build_simple_world(3, 21);
        let ing = w.platform.ingress_ips()[0];
        let mut fwd = Forwarder::pure_relay(Ipv4Addr::new(198, 18, 7, 53), ing, 1);
        for _ in 0..48 {
            fwd.handle_query(
                client(),
                &n("name.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut w.platform,
                &mut w.net,
            )
            .unwrap();
        }
        let omega = w
            .net
            .server(CDE_ZONE_SERVER)
            .unwrap()
            .count_queries_for(&n("name.cache.example"));
        assert_eq!(omega, 3);
        assert_eq!(fwd.relayed(), 48);
        assert_eq!(fwd.served_locally(), 0);
    }

    #[test]
    fn caching_forwarder_masks_upstream_caches_for_identical_queries() {
        // The repeated name sticks in the forwarder's cache: the upstream
        // is touched once, so identical-query enumeration reports 1.
        let mut w = build_simple_world(3, 22);
        let ing = w.platform.ingress_ips()[0];
        let mut fwd = Forwarder::caching(Ipv4Addr::new(198, 18, 7, 53), ing, 1000, 2);
        for _ in 0..48 {
            fwd.handle_query(
                client(),
                &n("name.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut w.platform,
                &mut w.net,
            )
            .unwrap();
        }
        let omega = w
            .net
            .server(CDE_ZONE_SERVER)
            .unwrap()
            .count_queries_for(&n("name.cache.example"));
        assert_eq!(omega, 1);
        assert_eq!(fwd.relayed(), 1);
        assert_eq!(fwd.served_locally(), 47);
    }

    #[test]
    fn cname_farm_reaches_upstream_through_caching_forwarder() {
        // Distinct aliases miss the forwarder cache each time, so the farm
        // technique enumerates the upstream even behind a caching
        // forwarder — the same reason it bypasses browser caches.
        let mut w = build_simple_world(3, 23);
        let ing = w.platform.ingress_ips()[0];
        let mut fwd = Forwarder::caching(Ipv4Addr::new(198, 18, 7, 53), ing, 1000, 3);
        for i in 1..=64 {
            fwd.handle_query(
                client(),
                &n(&format!("x-{i}.cache.example")),
                RecordType::A,
                SimTime::ZERO,
                &mut w.platform,
                &mut w.net,
            )
            .unwrap();
        }
        let omega = w
            .net
            .server(CDE_ZONE_SERVER)
            .unwrap()
            .count_queries_for(&n("name.cache.example"));
        assert_eq!(omega, 3);
    }

    #[test]
    fn forwarder_reports_misconfigured_upstream() {
        let mut w = build_simple_world(1, 24);
        let mut fwd =
            Forwarder::pure_relay(Ipv4Addr::new(198, 18, 7, 53), Ipv4Addr::new(9, 9, 9, 9), 4);
        let err = fwd
            .handle_query(
                client(),
                &n("name.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut w.platform,
                &mut w.net,
            )
            .unwrap_err();
        assert!(matches!(err, PlatformError::UnknownIngress(_)));
    }

    #[test]
    fn local_hits_are_faster_than_relays() {
        let mut w = build_simple_world(1, 25);
        let ing = w.platform.ingress_ips()[0];
        let mut fwd = Forwarder::caching(Ipv4Addr::new(198, 18, 7, 53), ing, 1000, 5);
        let miss = fwd
            .handle_query(
                client(),
                &n("name.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut w.platform,
                &mut w.net,
            )
            .unwrap();
        let hit = fwd
            .handle_query(
                client(),
                &n("name.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut w.platform,
                &mut w.net,
            )
            .unwrap();
        assert!(hit.outcome.cache_hit);
        assert!(hit.outcome.latency <= miss.outcome.latency);
    }
}
