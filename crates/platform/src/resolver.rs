//! Iterative resolution performed by one cache instance.
//!
//! Each hidden cache is a full recursive-resolver worker: on a miss it
//! walks the delegation tree from the root hints, caching NS records and
//! glue along the way. This reproduces the behaviour the names-hierarchy
//! bypass (§IV-B2b) exploits — after the first resolution the cache holds
//! the child zone's NS/glue and subsequent queries go *directly* to the
//! child nameserver, skipping the parent where the CDE counts.

use crate::authserver::NameserverNet;
use cde_cache::{CacheLookup, DnsCache, NegativeKind};
use cde_dns::{Edns, Name, Question, RData, Rcode, Record, RecordType, Ttl};
use cde_netsim::{DetRng, Link, SimDuration, SimTime};
use rand::Rng;
use std::net::Ipv4Addr;

/// Maximum CNAME hops a resolution follows.
const MAX_CNAME_CHAIN: usize = 12;
/// Maximum referral hops per target name.
const MAX_REFERRALS: usize = 32;

/// Final status of a resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveResult {
    /// Records answering the question (including any CNAME chain followed).
    Records(Vec<Record>),
    /// The name does not exist.
    NxDomain,
    /// The name exists without the queried type.
    NoData,
    /// Upstream unreachable or looping delegations.
    ServFail,
}

impl ResolveResult {
    /// `true` when records were produced.
    pub fn is_success(&self) -> bool {
        matches!(self, ResolveResult::Records(_))
    }

    /// The corresponding response code.
    pub fn rcode(&self) -> Rcode {
        match self {
            ResolveResult::Records(_) | ResolveResult::NoData => Rcode::NoError,
            ResolveResult::NxDomain => Rcode::NxDomain,
            ResolveResult::ServFail => Rcode::ServFail,
        }
    }
}

/// What one resolution cost and touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveOutcome {
    /// Final status.
    pub result: ResolveResult,
    /// Wall-clock (virtual) time the resolution took.
    pub latency: SimDuration,
    /// Upstream queries actually sent (including retries).
    pub upstream_queries: usize,
    /// `true` when the whole answer came from cache, with no upstream
    /// traffic — the paper's *cache hit* event.
    pub cache_hit: bool,
}

/// Everything a cache needs to reach the authoritative world.
#[derive(Debug)]
pub struct Upstream<'a> {
    /// The simulated authoritative Internet.
    pub net: &'a mut NameserverNet,
    /// Egress addresses the platform may source queries from. One is drawn
    /// uniformly per upstream query — the paper observed that "multiple
    /// different egress IP addresses participated in a resolution of a
    /// given name" (§VII).
    pub egress_ips: &'a [Ipv4Addr],
    /// Link between egress resolvers and nameservers.
    pub link: &'a Link,
    /// Retries after a lost packet before giving up.
    pub retries: u32,
    /// Latency charged per lost-packet timeout.
    pub timeout: SimDuration,
    /// EDNS parameters advertised in upstream queries; `None` models
    /// legacy software without EDNS support (§II-C adoption studies).
    pub edns: Option<Edns>,
}

/// Resolves `qname`/`qtype` using `cache`, going upstream on misses.
///
/// The negative-caching TTL is taken from the SOA record in negative
/// responses when present, defaulting to 300 s.
pub fn resolve(
    cache: &mut DnsCache,
    qname: &Name,
    qtype: RecordType,
    now: SimTime,
    rng: &mut DetRng,
    up: &mut Upstream<'_>,
) -> ResolveOutcome {
    let mut latency = SimDuration::ZERO;
    let mut upstream_queries = 0usize;
    let mut chain: Vec<Record> = Vec::new();
    let mut current = qname.clone();

    for _hop in 0..=MAX_CNAME_CHAIN {
        // 1. Try the cache, chasing cached CNAMEs.
        match cache.lookup(&current, qtype, now) {
            CacheLookup::Hit(rrs) => {
                chain.extend(rrs);
                return ResolveOutcome {
                    result: ResolveResult::Records(chain),
                    latency,
                    upstream_queries,
                    cache_hit: upstream_queries == 0,
                };
            }
            CacheLookup::NegativeHit(kind) => {
                return ResolveOutcome {
                    result: match kind {
                        NegativeKind::NxDomain => ResolveResult::NxDomain,
                        NegativeKind::NoData => ResolveResult::NoData,
                    },
                    latency,
                    upstream_queries,
                    cache_hit: upstream_queries == 0,
                };
            }
            CacheLookup::Miss => {}
        }
        if qtype != RecordType::Cname {
            if let CacheLookup::Hit(cnames) = cache.lookup(&current, RecordType::Cname, now) {
                if let Some(RData::Cname(target)) = cnames.first().map(Record::rdata) {
                    let target = target.clone();
                    chain.extend(cnames);
                    current = target;
                    continue;
                }
            }
        }

        // 2. Iterate from the best known nameserver.
        match iterate(
            cache,
            &current,
            qtype,
            now,
            rng,
            up,
            &mut latency,
            &mut upstream_queries,
        ) {
            IterOutcome::Answer(rrs) => {
                // Answer may itself start with a CNAME (authoritative server
                // with minimal responses): cache pieces and maybe continue.
                if qtype != RecordType::Cname
                    && rrs.first().map(Record::rtype) == Some(RecordType::Cname)
                {
                    let target = match rrs[0].rdata() {
                        RData::Cname(t) => t.clone(),
                        _ => unreachable!("cname rtype carries cname rdata"),
                    };
                    cache.insert(current.clone(), RecordType::Cname, rrs.clone(), now);
                    chain.extend(rrs);
                    current = target;
                    continue;
                }
                cache.insert(current.clone(), qtype, rrs.clone(), now);
                chain.extend(rrs);
                return ResolveOutcome {
                    result: ResolveResult::Records(chain),
                    latency,
                    upstream_queries,
                    cache_hit: false,
                };
            }
            IterOutcome::Negative(kind, neg_ttl) => {
                cache.insert_negative(current.clone(), qtype, kind, neg_ttl, now);
                return ResolveOutcome {
                    result: match kind {
                        NegativeKind::NxDomain => ResolveResult::NxDomain,
                        NegativeKind::NoData => ResolveResult::NoData,
                    },
                    latency,
                    upstream_queries,
                    cache_hit: false,
                };
            }
            IterOutcome::Fail => {
                return ResolveOutcome {
                    result: ResolveResult::ServFail,
                    latency,
                    upstream_queries,
                    cache_hit: false,
                };
            }
        }
    }

    // CNAME chain too long.
    ResolveOutcome {
        result: ResolveResult::ServFail,
        latency,
        upstream_queries,
        cache_hit: false,
    }
}

enum IterOutcome {
    Answer(Vec<Record>),
    Negative(NegativeKind, Ttl),
    Fail,
}

/// Iteratively queries authoritative servers for one target name.
#[allow(clippy::too_many_arguments)]
fn iterate(
    cache: &mut DnsCache,
    qname: &Name,
    qtype: RecordType,
    now: SimTime,
    rng: &mut DetRng,
    up: &mut Upstream<'_>,
    latency: &mut SimDuration,
    upstream_queries: &mut usize,
) -> IterOutcome {
    let question = Question::new(qname.clone(), qtype);
    for _ in 0..MAX_REFERRALS {
        let ns_addr = best_nameserver(cache, qname, now, up);
        let Some(resp) =
            send_with_retries(ns_addr, &question, now, rng, up, latency, upstream_queries)
        else {
            return IterOutcome::Fail;
        };

        if resp.flags.rcode == Rcode::NxDomain {
            let neg_ttl = soa_minimum(&resp.authorities).unwrap_or(Ttl::from_secs(300));
            return IterOutcome::Negative(NegativeKind::NxDomain, neg_ttl);
        }
        if resp.flags.rcode != Rcode::NoError {
            // Refused/ServFail from this server: give up (real resolvers
            // would try siblings; one server per zone here).
            return IterOutcome::Fail;
        }
        if !resp.answers.is_empty() {
            return IterOutcome::Answer(resp.answers);
        }
        // Referral?
        let ns_records: Vec<&Record> = resp
            .authorities
            .iter()
            .filter(|r| r.rtype() == RecordType::Ns)
            .collect();
        if !resp.flags.aa && !ns_records.is_empty() {
            // Cache the delegation NS set and its glue.
            let zone = ns_records[0].name().clone();
            let ns_owned: Vec<Record> = ns_records.into_iter().cloned().collect();
            cache.insert(zone, RecordType::Ns, ns_owned, now);
            for glue in &resp.additionals {
                if matches!(glue.rtype(), RecordType::A | RecordType::Aaaa) {
                    cache.insert(glue.name().clone(), glue.rtype(), vec![glue.clone()], now);
                }
            }
            continue;
        }
        // Authoritative empty answer: NODATA.
        let neg_ttl = soa_minimum(&resp.authorities).unwrap_or(Ttl::from_secs(300));
        return IterOutcome::Negative(NegativeKind::NoData, neg_ttl);
    }
    IterOutcome::Fail
}

/// Deepest cached delegation with a usable address, else the root.
fn best_nameserver(cache: &DnsCache, qname: &Name, now: SimTime, up: &Upstream<'_>) -> Ipv4Addr {
    for zone in qname.ancestors() {
        if let Some(ns_set) = cache.peek(&zone, RecordType::Ns, now) {
            for ns in &ns_set {
                if let RData::Ns(host) = ns.rdata() {
                    if let Some(addrs) = cache.peek(host, RecordType::A, now) {
                        if let Some(RData::A(ip)) = addrs.first().map(Record::rdata) {
                            return *ip;
                        }
                    }
                }
            }
        }
    }
    up.net.root_addr()
}

/// Sends one query with loss-aware retries; returns `None` when every
/// attempt failed.
#[allow(clippy::too_many_arguments)]
fn send_with_retries(
    ns_addr: Ipv4Addr,
    question: &Question,
    now: SimTime,
    rng: &mut DetRng,
    up: &mut Upstream<'_>,
    latency: &mut SimDuration,
    upstream_queries: &mut usize,
) -> Option<cde_dns::Message> {
    for _attempt in 0..=up.retries {
        let egress = up.egress_ips[rng.gen_range(0..up.egress_ips.len())];
        *upstream_queries += 1;
        // Query direction.
        let Some(fwd) = up.link.transmit(rng) else {
            *latency += up.timeout;
            continue;
        };
        let arrival = now + *latency + fwd;
        let Some(resp) = up
            .net
            .deliver_with_edns(ns_addr, egress, question, up.edns, arrival)
        else {
            // Blackhole: charge a full timeout.
            *latency += up.timeout;
            continue;
        };
        // Response direction.
        let Some(back) = up.link.transmit(rng) else {
            *latency += up.timeout;
            continue;
        };
        *latency += fwd + back;
        return Some(resp);
    }
    None
}

fn soa_minimum(authorities: &[Record]) -> Option<Ttl> {
    authorities.iter().find_map(|r| match r.rdata() {
        RData::Soa(soa) => Some(Ttl::from_secs(soa.minimum)),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authserver::AuthServer;
    use cde_dns::Zone;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, d)
    }

    /// Builds root + cache.example + delegated sub.cache.example.
    fn build_net() -> NameserverNet {
        let mut net = NameserverNet::new();

        let mut root = Zone::new(Name::root());
        root.add(Record::new(
            n("example"),
            Ttl::from_secs(86400),
            RData::Ns(n("ns.example")),
        ))
        .unwrap();
        root.add(Record::new(
            n("ns.example"),
            Ttl::from_secs(86400),
            RData::A(ip(10)),
        ))
        .unwrap();
        net.add_server(AuthServer::new(ip(1), vec![root]));

        // .example TLD server delegating cache.example.
        let mut tld = Zone::with_soa(n("example"), Ttl::from_secs(300));
        tld.add(Record::new(
            n("cache.example"),
            Ttl::from_secs(86400),
            RData::Ns(n("ns1.cache.example")),
        ))
        .unwrap();
        tld.add(Record::new(
            n("ns1.cache.example"),
            Ttl::from_secs(86400),
            RData::A(ip(20)),
        ))
        .unwrap();
        net.add_server(AuthServer::new(ip(10), vec![tld]));

        // cache.example zone with CNAME farm and delegation to sub.
        let mut zone = Zone::with_soa(n("cache.example"), Ttl::from_secs(300));
        zone.add(Record::new(
            n("name.cache.example"),
            Ttl::from_secs(3600),
            RData::A(Ipv4Addr::new(198, 51, 100, 4)),
        ))
        .unwrap();
        for i in 1..=8 {
            zone.add(Record::new(
                n(&format!("x-{i}.cache.example")),
                Ttl::from_secs(3600),
                RData::Cname(n("name.cache.example")),
            ))
            .unwrap();
        }
        zone.add(Record::new(
            n("sub.cache.example"),
            Ttl::from_secs(3600),
            RData::Ns(n("ns.sub.cache.example")),
        ))
        .unwrap();
        zone.add(Record::new(
            n("ns.sub.cache.example"),
            Ttl::from_secs(3600),
            RData::A(ip(30)),
        ))
        .unwrap();
        net.add_server(AuthServer::new(ip(20), vec![zone]));

        // sub.cache.example child server.
        let mut sub = Zone::with_soa(n("sub.cache.example"), Ttl::from_secs(300));
        for i in 1..=8 {
            sub.add(Record::new(
                n(&format!("x-{i}.sub.cache.example")),
                Ttl::from_secs(3600),
                RData::A(Ipv4Addr::new(198, 51, 100, 5)),
            ))
            .unwrap();
        }
        net.add_server(AuthServer::new(ip(30), vec![sub]));
        net
    }

    fn upstream<'a>(
        net: &'a mut NameserverNet,
        link: &'a Link,
        egress: &'a [Ipv4Addr],
    ) -> Upstream<'a> {
        Upstream {
            net,
            egress_ips: egress,
            link,
            retries: 3,
            timeout: SimDuration::from_millis(800),
            edns: Some(Edns::default()),
        }
    }

    #[test]
    fn cold_resolution_walks_from_root() {
        let mut net = build_net();
        let link = Link::ideal();
        let egress = [Ipv4Addr::new(203, 0, 113, 1)];
        let mut cache = DnsCache::with_defaults(0);
        let mut rng = DetRng::seed(0);
        let mut up = upstream(&mut net, &link, &egress);
        let out = resolve(
            &mut cache,
            &n("name.cache.example"),
            RecordType::A,
            SimTime::ZERO,
            &mut rng,
            &mut up,
        );
        assert!(out.result.is_success());
        assert!(!out.cache_hit);
        // root → tld → zone = 3 queries.
        assert_eq!(out.upstream_queries, 3);
        // Each server logged once.
        assert_eq!(net.server(ip(1)).unwrap().log().len(), 1);
        assert_eq!(net.server(ip(10)).unwrap().log().len(), 1);
        assert_eq!(net.server(ip(20)).unwrap().log().len(), 1);
    }

    #[test]
    fn second_resolution_is_a_cache_hit() {
        let mut net = build_net();
        let link = Link::ideal();
        let egress = [Ipv4Addr::new(203, 0, 113, 1)];
        let mut cache = DnsCache::with_defaults(0);
        let mut rng = DetRng::seed(0);
        {
            let mut up = upstream(&mut net, &link, &egress);
            resolve(
                &mut cache,
                &n("name.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut rng,
                &mut up,
            );
        }
        let mut up = upstream(&mut net, &link, &egress);
        let out = resolve(
            &mut cache,
            &n("name.cache.example"),
            RecordType::A,
            SimTime::ZERO,
            &mut rng,
            &mut up,
        );
        assert!(out.cache_hit);
        assert_eq!(out.upstream_queries, 0);
        assert_eq!(out.latency, SimDuration::ZERO);
    }

    #[test]
    fn cname_restart_costs_separate_target_query() {
        let mut net = build_net();
        let link = Link::ideal();
        let egress = [Ipv4Addr::new(203, 0, 113, 1)];
        let mut cache = DnsCache::with_defaults(0);
        let mut rng = DetRng::seed(0);
        let mut up = upstream(&mut net, &link, &egress);
        let out = resolve(
            &mut cache,
            &n("x-1.cache.example"),
            RecordType::A,
            SimTime::ZERO,
            &mut rng,
            &mut up,
        );
        assert!(out.result.is_success());
        // root, tld, x-1 (CNAME), name (A) = 4.
        assert_eq!(out.upstream_queries, 4);
        let zone_server = net.server(ip(20)).unwrap();
        assert_eq!(zone_server.count_queries_for(&n("x-1.cache.example")), 1);
        assert_eq!(zone_server.count_queries_for(&n("name.cache.example")), 1);
        match out.result {
            ResolveResult::Records(rrs) => {
                assert_eq!(rrs[0].rtype(), RecordType::Cname);
                assert_eq!(rrs.last().unwrap().rtype(), RecordType::A);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cname_target_already_cached_needs_no_target_query() {
        let mut net = build_net();
        let link = Link::ideal();
        let egress = [Ipv4Addr::new(203, 0, 113, 1)];
        let mut cache = DnsCache::with_defaults(0);
        let mut rng = DetRng::seed(0);
        {
            let mut up = upstream(&mut net, &link, &egress);
            resolve(
                &mut cache,
                &n("name.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut rng,
                &mut up,
            );
        }
        net.clear_logs();
        let mut up = upstream(&mut net, &link, &egress);
        let out = resolve(
            &mut cache,
            &n("x-2.cache.example"),
            RecordType::A,
            SimTime::ZERO,
            &mut rng,
            &mut up,
        );
        assert!(out.result.is_success());
        // Only the x-2 CNAME fetch; the target came from cache. This is the
        // exact signal the CNAME-chain enumeration counts.
        assert_eq!(
            net.server(ip(20))
                .unwrap()
                .count_queries_for(&n("name.cache.example")),
            0
        );
    }

    #[test]
    fn names_hierarchy_caches_child_delegation() {
        let mut net = build_net();
        let link = Link::ideal();
        let egress = [Ipv4Addr::new(203, 0, 113, 1)];
        let mut cache = DnsCache::with_defaults(0);
        let mut rng = DetRng::seed(0);
        {
            let mut up = upstream(&mut net, &link, &egress);
            let out = resolve(
                &mut cache,
                &n("x-1.sub.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut rng,
                &mut up,
            );
            assert!(out.result.is_success());
        }
        // Parent (ip 20) saw the referral query once.
        assert_eq!(net.server(ip(20)).unwrap().log().len(), 1);
        net.clear_logs();
        // Second, different name under sub: goes straight to the child.
        let mut up = upstream(&mut net, &link, &egress);
        let out = resolve(
            &mut cache,
            &n("x-2.sub.cache.example"),
            RecordType::A,
            SimTime::ZERO,
            &mut rng,
            &mut up,
        );
        assert!(out.result.is_success());
        assert_eq!(out.upstream_queries, 1);
        assert_eq!(net.server(ip(20)).unwrap().log().len(), 0);
        assert_eq!(net.server(ip(30)).unwrap().log().len(), 1);
    }

    #[test]
    fn nxdomain_is_negatively_cached() {
        let mut net = build_net();
        let link = Link::ideal();
        let egress = [Ipv4Addr::new(203, 0, 113, 1)];
        let mut cache = DnsCache::with_defaults(0);
        let mut rng = DetRng::seed(0);
        {
            let mut up = upstream(&mut net, &link, &egress);
            let out = resolve(
                &mut cache,
                &n("ghost.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut rng,
                &mut up,
            );
            assert_eq!(out.result, ResolveResult::NxDomain);
        }
        net.clear_logs();
        let mut up = upstream(&mut net, &link, &egress);
        let out = resolve(
            &mut cache,
            &n("ghost.cache.example"),
            RecordType::A,
            SimTime::ZERO,
            &mut rng,
            &mut up,
        );
        assert_eq!(out.result, ResolveResult::NxDomain);
        assert_eq!(out.upstream_queries, 0);
    }

    #[test]
    fn nodata_for_wrong_type() {
        let mut net = build_net();
        let link = Link::ideal();
        let egress = [Ipv4Addr::new(203, 0, 113, 1)];
        let mut cache = DnsCache::with_defaults(0);
        let mut rng = DetRng::seed(0);
        let mut up = upstream(&mut net, &link, &egress);
        let out = resolve(
            &mut cache,
            &n("name.cache.example"),
            RecordType::Mx,
            SimTime::ZERO,
            &mut rng,
            &mut up,
        );
        assert_eq!(out.result, ResolveResult::NoData);
    }

    #[test]
    fn total_loss_yields_servfail_with_timeout_latency() {
        let mut net = build_net();
        let link = Link::new(
            cde_netsim::LatencyModel::Constant(SimDuration::from_millis(10)),
            cde_netsim::LossModel::with_rate(1.0),
        );
        let egress = [Ipv4Addr::new(203, 0, 113, 1)];
        let mut cache = DnsCache::with_defaults(0);
        let mut rng = DetRng::seed(0);
        let mut up = upstream(&mut net, &link, &egress);
        let out = resolve(
            &mut cache,
            &n("name.cache.example"),
            RecordType::A,
            SimTime::ZERO,
            &mut rng,
            &mut up,
        );
        assert_eq!(out.result, ResolveResult::ServFail);
        // 4 attempts × 800 ms.
        assert_eq!(out.latency, SimDuration::from_millis(3200));
    }

    #[test]
    fn egress_ips_rotate_across_queries() {
        let mut net = build_net();
        let link = Link::ideal();
        let egress: Vec<Ipv4Addr> = (1..=8).map(|d| Ipv4Addr::new(203, 0, 113, d)).collect();
        let mut cache = DnsCache::with_defaults(0);
        let mut rng = DetRng::seed(3);
        {
            let mut up = upstream(&mut net, &link, &egress);
            for i in 1..=8 {
                resolve(
                    &mut cache,
                    &n(&format!("x-{i}.cache.example")),
                    RecordType::A,
                    SimTime::ZERO,
                    &mut rng,
                    &mut up,
                );
            }
        }
        let seen: std::collections::HashSet<Ipv4Addr> = net
            .server(ip(20))
            .unwrap()
            .log()
            .iter()
            .map(|e| e.from)
            .collect();
        assert!(seen.len() >= 3, "expected several egress IPs, saw {seen:?}");
    }

    #[test]
    fn latency_accumulates_link_delays() {
        let mut net = build_net();
        let link = Link::new(
            cde_netsim::LatencyModel::Constant(SimDuration::from_millis(10)),
            cde_netsim::LossModel::none(),
        );
        let egress = [Ipv4Addr::new(203, 0, 113, 1)];
        let mut cache = DnsCache::with_defaults(0);
        let mut rng = DetRng::seed(0);
        let mut up = upstream(&mut net, &link, &egress);
        let out = resolve(
            &mut cache,
            &n("name.cache.example"),
            RecordType::A,
            SimTime::ZERO,
            &mut rng,
            &mut up,
        );
        // 3 upstream round trips × 20 ms.
        assert_eq!(out.latency, SimDuration::from_millis(60));
    }
}
