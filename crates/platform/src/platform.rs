//! DNS resolution platforms (paper Fig. 1).
//!
//! A platform owns: a set of *ingress* addresses facing clients, one or
//! more *cache clusters* (each a bank of hidden caches behind a load
//! balancer), a pool of *egress* addresses facing nameservers, and the
//! links between them. Ingress addresses map onto clusters; the paper's
//! IP-to-caches mapping technique (§IV-B1b) recovers exactly this mapping
//! from the outside.

use crate::authserver::NameserverNet;
use crate::resolver::{resolve, ResolveOutcome, Upstream};
use crate::selector::{LoadBalancer, SelectorKind};
use cde_cache::{CacheConfig, DnsCache};
use cde_dns::{Edns, Name, RecordType};
use cde_netsim::{DetRng, LatencyModel, Link, SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// One cache cluster: a bank of caches behind a load balancer.
#[derive(Debug)]
pub struct Cluster {
    caches: Vec<DnsCache>,
    balancer: LoadBalancer,
}

impl Cluster {
    fn new(
        platform_id: u64,
        cluster_idx: usize,
        cache_count: usize,
        cache_config: CacheConfig,
        selector: SelectorKind,
    ) -> Cluster {
        let caches = (0..cache_count)
            .map(|i| {
                DnsCache::new(
                    platform_id
                        .wrapping_mul(1_000_003)
                        .wrapping_add(cluster_idx as u64 * 1009)
                        .wrapping_add(i as u64),
                    cache_config.clone(),
                )
            })
            .collect();
        Cluster {
            caches,
            balancer: LoadBalancer::new(selector, cache_count),
        }
    }

    /// Number of caches in this cluster.
    pub fn cache_count(&self) -> usize {
        self.caches.len()
    }

    /// The load balancer state.
    pub fn balancer(&self) -> &LoadBalancer {
        &self.balancer
    }

    /// Ground-truth access to one cache (validation only).
    pub fn cache(&self, idx: usize) -> &DnsCache {
        &self.caches[idx]
    }

    /// Ground-truth mutable access (failure injection in tests).
    pub fn cache_mut(&mut self, idx: usize) -> &mut DnsCache {
        &mut self.caches[idx]
    }
}

/// Configuration of one cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of hidden caches.
    pub cache_count: usize,
    /// Per-cache configuration.
    pub cache_config: CacheConfig,
    /// Load-balancing strategy.
    pub selector: SelectorKind,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            cache_count: 1,
            cache_config: CacheConfig::default(),
            selector: SelectorKind::Random,
        }
    }
}

/// Builder for [`ResolutionPlatform`] (C-BUILDER).
///
/// # Examples
///
/// ```
/// use cde_platform::{PlatformBuilder, SelectorKind};
/// use std::net::Ipv4Addr;
///
/// let platform = PlatformBuilder::new(7)
///     .ingress((0..4).map(|i| Ipv4Addr::new(192, 0, 2, i)).collect())
///     .egress((0..8).map(|i| Ipv4Addr::new(192, 0, 3, i)).collect())
///     .cluster(3, SelectorKind::Random)
///     .build();
/// assert_eq!(platform.ground_truth().total_caches(), 3);
/// ```
#[derive(Debug)]
pub struct PlatformBuilder {
    id: u64,
    ingress_ips: Vec<Ipv4Addr>,
    egress_ips: Vec<Ipv4Addr>,
    clusters: Vec<ClusterConfig>,
    ingress_assignment: Option<Vec<usize>>,
    upstream_link: Link,
    internal_latency: LatencyModel,
    retries: u32,
    timeout: SimDuration,
    edns: Option<Edns>,
}

impl PlatformBuilder {
    /// Starts a builder; `id` seeds all of the platform's randomness.
    pub fn new(id: u64) -> PlatformBuilder {
        PlatformBuilder {
            id,
            ingress_ips: vec![Ipv4Addr::new(192, 0, 2, 1)],
            egress_ips: vec![Ipv4Addr::new(192, 0, 2, 1)],
            clusters: Vec::new(),
            ingress_assignment: None,
            upstream_link: Link::ideal(),
            internal_latency: LatencyModel::datacenter(),
            retries: 3,
            timeout: SimDuration::from_millis(800),
            edns: Some(Edns::default()),
        }
    }

    /// Sets the ingress address pool.
    pub fn ingress(mut self, ips: Vec<Ipv4Addr>) -> PlatformBuilder {
        assert!(!ips.is_empty(), "at least one ingress address");
        self.ingress_ips = ips;
        self
    }

    /// Sets the egress address pool.
    pub fn egress(mut self, ips: Vec<Ipv4Addr>) -> PlatformBuilder {
        assert!(!ips.is_empty(), "at least one egress address");
        self.egress_ips = ips;
        self
    }

    /// Adds a cluster of `cache_count` caches using `selector`.
    pub fn cluster(mut self, cache_count: usize, selector: SelectorKind) -> PlatformBuilder {
        self.clusters.push(ClusterConfig {
            cache_count,
            selector,
            ..ClusterConfig::default()
        });
        self
    }

    /// Adds a cluster with full configuration.
    pub fn cluster_config(mut self, config: ClusterConfig) -> PlatformBuilder {
        self.clusters.push(config);
        self
    }

    /// Explicitly assigns each ingress address (by index) to a cluster.
    /// Without this, ingress addresses are spread over clusters round-robin.
    pub fn ingress_assignment(mut self, assignment: Vec<usize>) -> PlatformBuilder {
        self.ingress_assignment = Some(assignment);
        self
    }

    /// Sets the egress↔nameserver link.
    pub fn upstream_link(mut self, link: Link) -> PlatformBuilder {
        self.upstream_link = link;
        self
    }

    /// Sets the load-balancer→cache hop latency.
    pub fn internal_latency(mut self, latency: LatencyModel) -> PlatformBuilder {
        self.internal_latency = latency;
        self
    }

    /// Sets retry count and per-loss timeout for upstream queries.
    pub fn retry_policy(mut self, retries: u32, timeout: SimDuration) -> PlatformBuilder {
        self.retries = retries;
        self.timeout = timeout;
        self
    }

    /// Sets the EDNS advertisement carried by upstream queries; `None`
    /// models legacy resolver software without EDNS support.
    pub fn edns(mut self, edns: Option<Edns>) -> PlatformBuilder {
        self.edns = edns;
        self
    }

    /// Builds the platform.
    ///
    /// # Panics
    ///
    /// Panics when an explicit ingress assignment has the wrong length or
    /// references a missing cluster.
    pub fn build(self) -> ResolutionPlatform {
        let clusters_cfg = if self.clusters.is_empty() {
            vec![ClusterConfig::default()]
        } else {
            self.clusters
        };
        let clusters: Vec<Cluster> = clusters_cfg
            .iter()
            .enumerate()
            .map(|(i, c)| {
                Cluster::new(
                    self.id,
                    i,
                    c.cache_count,
                    c.cache_config.clone(),
                    c.selector,
                )
            })
            .collect();
        let assignment = match self.ingress_assignment {
            Some(a) => {
                assert_eq!(
                    a.len(),
                    self.ingress_ips.len(),
                    "assignment length must match ingress count"
                );
                assert!(
                    a.iter().all(|&c| c < clusters.len()),
                    "assignment references missing cluster"
                );
                a
            }
            None => (0..self.ingress_ips.len())
                .map(|i| i % clusters.len())
                .collect(),
        };
        let ingress_map = self
            .ingress_ips
            .iter()
            .copied()
            .zip(assignment.iter().copied())
            .collect();
        ResolutionPlatform {
            id: self.id,
            rng: DetRng::seed(self.id).fork("platform"),
            ingress_ips: self.ingress_ips,
            ingress_map,
            egress_ips: self.egress_ips,
            clusters,
            upstream_link: self.upstream_link,
            internal_latency: self.internal_latency,
            retries: self.retries,
            timeout: self.timeout,
            edns: self.edns,
        }
    }
}

/// Response a client receives from the platform, plus ground-truth
/// annotations used only for validating the measurement pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformResponse {
    /// Resolution status and records.
    pub outcome: ResolveOutcome,
    /// GROUND TRUTH (validation only — the measurement code never reads
    /// this): index of the cluster that served the query.
    pub truth_cluster: usize,
    /// GROUND TRUTH (validation only): index of the cache probed within the
    /// cluster.
    pub truth_cache: usize,
}

/// Errors a platform can return to a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// The destination address is not an ingress of this platform.
    UnknownIngress(Ipv4Addr),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownIngress(ip) => {
                write!(f, "address {ip} is not an ingress of this platform")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

/// Ground truth about a platform, used to validate measurements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    /// Cache count per cluster.
    pub cluster_cache_counts: Vec<usize>,
    /// Ingress address → cluster index.
    pub ingress_clusters: HashMap<Ipv4Addr, usize>,
    /// Egress pool.
    pub egress_ips: Vec<Ipv4Addr>,
    /// Selector of each cluster.
    pub selectors: Vec<SelectorKind>,
}

impl GroundTruth {
    /// Total caches across clusters.
    pub fn total_caches(&self) -> usize {
        self.cluster_cache_counts.iter().sum()
    }
}

/// A simulated DNS resolution platform.
///
/// # Examples
///
/// ```
/// use cde_platform::testnet::build_simple_world;
/// use cde_dns::RecordType;
/// use cde_netsim::SimTime;
///
/// let mut world = build_simple_world(4, 42);
/// let ingress = world.platform.ingress_ips()[0];
/// let client = std::net::Ipv4Addr::new(203, 0, 113, 77);
/// let qname = "name.cache.example".parse().unwrap();
/// let resp = world
///     .platform
///     .handle_query(client, ingress, &qname, RecordType::A, SimTime::ZERO, &mut world.net)
///     .unwrap();
/// assert!(resp.outcome.result.is_success());
/// ```
#[derive(Debug)]
pub struct ResolutionPlatform {
    id: u64,
    rng: DetRng,
    ingress_ips: Vec<Ipv4Addr>,
    ingress_map: HashMap<Ipv4Addr, usize>,
    egress_ips: Vec<Ipv4Addr>,
    clusters: Vec<Cluster>,
    upstream_link: Link,
    internal_latency: LatencyModel,
    retries: u32,
    timeout: SimDuration,
    edns: Option<Edns>,
}

impl ResolutionPlatform {
    /// Platform identifier (also its random seed).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Ingress addresses clients may query.
    pub fn ingress_ips(&self) -> &[Ipv4Addr] {
        &self.ingress_ips
    }

    /// Egress addresses used toward nameservers.
    pub fn egress_ips(&self) -> &[Ipv4Addr] {
        &self.egress_ips
    }

    /// The clusters (ground truth).
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Mutable cluster access (failure injection).
    pub fn clusters_mut(&mut self) -> &mut [Cluster] {
        &mut self.clusters
    }

    /// Ground truth snapshot for validating measurements.
    pub fn ground_truth(&self) -> GroundTruth {
        GroundTruth {
            cluster_cache_counts: self.clusters.iter().map(Cluster::cache_count).collect(),
            ingress_clusters: self.ingress_map.clone(),
            egress_ips: self.egress_ips.clone(),
            selectors: self.clusters.iter().map(|c| c.balancer.kind()).collect(),
        }
    }

    /// Handles one client query arriving at `ingress` from `src`.
    ///
    /// Selects exactly one cache via the cluster's load balancer, resolves
    /// within that cache (going upstream through `net` on misses) and
    /// returns the outcome with latency. The returned latency covers the
    /// internal hop and all upstream traffic; the client↔ingress link is
    /// the prober's concern.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownIngress`] when `ingress` is not an ingress
    /// address of this platform.
    pub fn handle_query(
        &mut self,
        src: Ipv4Addr,
        ingress: Ipv4Addr,
        qname: &Name,
        qtype: RecordType,
        now: SimTime,
        net: &mut NameserverNet,
    ) -> Result<PlatformResponse, PlatformError> {
        let &cluster_idx = self
            .ingress_map
            .get(&ingress)
            .ok_or(PlatformError::UnknownIngress(ingress))?;
        let cluster = &mut self.clusters[cluster_idx];
        let cache_idx = cluster.balancer.select(qname, src, &mut self.rng);
        let internal = self.internal_latency.sample(&mut self.rng);
        let mut up = Upstream {
            net,
            egress_ips: &self.egress_ips,
            link: &self.upstream_link,
            retries: self.retries,
            timeout: self.timeout,
            edns: self.edns,
        };
        let mut outcome = resolve(
            &mut cluster.caches[cache_idx],
            qname,
            qtype,
            now,
            &mut self.rng,
            &mut up,
        );
        outcome.latency += internal * 2; // in and out of the cache bank
        Ok(PlatformResponse {
            outcome,
            truth_cluster: cluster_idx,
            truth_cache: cache_idx,
        })
    }

    /// Injects background client traffic: `queries` arrive in order from
    /// synthetic clients, perturbing load-balancer state and cache contents
    /// the way real concurrent users do (§V-B: enumeration complexity
    /// depends on "traffic from other clients").
    pub fn inject_background(
        &mut self,
        queries: &[(Name, RecordType)],
        now: SimTime,
        net: &mut NameserverNet,
    ) {
        let ingress: Vec<Ipv4Addr> = self.ingress_ips.clone();
        for (i, (qname, qtype)) in queries.iter().enumerate() {
            let src = Ipv4Addr::new(100, 64, (i >> 8) as u8, i as u8);
            let ing = ingress[i % ingress.len()];
            let _ = self.handle_query(src, ing, qname, *qtype, now, net);
        }
    }

    /// Flushes every cache in every cluster (models a platform restart).
    pub fn flush_all_caches(&mut self) {
        for cluster in &mut self.clusters {
            for cache in &mut cluster.caches {
                cache.flush();
            }
        }
    }
}

/// Pre-built miniature worlds for tests, examples and benches.
pub mod testnet {
    use super::*;
    use crate::authserver::AuthServer;
    use cde_dns::{RData, Record, Ttl, Zone};

    /// A platform plus the authoritative Internet it resolves against.
    #[derive(Debug)]
    pub struct World {
        /// The platform under measurement.
        pub platform: ResolutionPlatform,
        /// The authoritative servers, including the CDE domain.
        pub net: NameserverNet,
    }

    /// Address of the nameserver authoritative for `cache.example` in
    /// worlds built by [`build_simple_world`].
    pub const CDE_ZONE_SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 20);
    /// Address of the nameserver authoritative for `sub.cache.example`.
    pub const CDE_SUB_SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 30);

    /// Builds the authoritative tree used throughout the tests: a root, an
    /// `example` TLD, the CDE domain `cache.example` (with `name` A record,
    /// a farm of `x-i` CNAMEs and a delegated `sub.cache.example`) and the
    /// child zone.
    pub fn build_cde_net(cname_farm: usize) -> NameserverNet {
        let mut net = NameserverNet::new();
        let n = |s: &str| -> Name { s.parse().expect("static names are valid") };

        let mut root = Zone::new(Name::root());
        root.add(Record::new(
            n("example"),
            Ttl::from_secs(86400),
            RData::Ns(n("ns.example")),
        ))
        .expect("in zone");
        root.add(Record::new(
            n("ns.example"),
            Ttl::from_secs(86400),
            RData::A(Ipv4Addr::new(10, 0, 0, 10)),
        ))
        .expect("in zone");
        net.add_server(AuthServer::new(Ipv4Addr::new(10, 0, 0, 1), vec![root]));

        let mut tld = Zone::with_soa(n("example"), Ttl::from_secs(300));
        tld.add(Record::new(
            n("cache.example"),
            Ttl::from_secs(86400),
            RData::Ns(n("ns1.cache.example")),
        ))
        .expect("in zone");
        tld.add(Record::new(
            n("ns1.cache.example"),
            Ttl::from_secs(86400),
            RData::A(CDE_ZONE_SERVER),
        ))
        .expect("in zone");
        net.add_server(AuthServer::new(Ipv4Addr::new(10, 0, 0, 10), vec![tld]));

        let mut zone = Zone::with_soa(n("cache.example"), Ttl::from_secs(300));
        zone.add(Record::new(
            n("name.cache.example"),
            Ttl::from_secs(3600),
            RData::A(Ipv4Addr::new(198, 51, 100, 4)),
        ))
        .expect("in zone");
        for i in 1..=cname_farm {
            zone.add(Record::new(
                n(&format!("x-{i}.cache.example")),
                Ttl::from_secs(3600),
                RData::Cname(n("name.cache.example")),
            ))
            .expect("in zone");
        }
        zone.add(Record::new(
            n("sub.cache.example"),
            Ttl::from_secs(3600),
            RData::Ns(n("ns.sub.cache.example")),
        ))
        .expect("in zone");
        zone.add(Record::new(
            n("ns.sub.cache.example"),
            Ttl::from_secs(3600),
            RData::A(CDE_SUB_SERVER),
        ))
        .expect("in zone");
        net.add_server(AuthServer::new(CDE_ZONE_SERVER, vec![zone]));

        let mut sub = Zone::with_soa(n("sub.cache.example"), Ttl::from_secs(300));
        for i in 1..=cname_farm {
            sub.add(Record::new(
                n(&format!("x-{i}.sub.cache.example")),
                Ttl::from_secs(3600),
                RData::A(Ipv4Addr::new(198, 51, 100, 5)),
            ))
            .expect("in zone");
        }
        net.add_server(AuthServer::new(CDE_SUB_SERVER, vec![sub]));
        net
    }

    /// Builds a single-cluster platform with `cache_count` caches (random
    /// selection) resolving against [`build_cde_net`] with a 512-name farm.
    pub fn build_simple_world(cache_count: usize, seed: u64) -> World {
        let platform = PlatformBuilder::new(seed)
            .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
            .egress((1..=4).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
            .cluster(cache_count, SelectorKind::Random)
            .build();
        World {
            platform,
            net: build_cde_net(512),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testnet::*;
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn client() -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, 99)
    }

    #[test]
    fn single_cache_platform_answers() {
        let mut w = build_simple_world(1, 1);
        let ing = w.platform.ingress_ips()[0];
        let resp = w
            .platform
            .handle_query(
                client(),
                ing,
                &n("name.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut w.net,
            )
            .unwrap();
        assert!(resp.outcome.result.is_success());
        assert_eq!(resp.truth_cache, 0);
    }

    #[test]
    fn unknown_ingress_is_rejected() {
        let mut w = build_simple_world(1, 1);
        let err = w
            .platform
            .handle_query(
                client(),
                Ipv4Addr::new(9, 9, 9, 9),
                &n("name.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut w.net,
            )
            .unwrap_err();
        assert!(matches!(err, PlatformError::UnknownIngress(_)));
    }

    #[test]
    fn repeated_identical_queries_touch_each_cache_once() {
        // The direct enumeration signal: q identical queries produce one
        // upstream fetch per distinct cache.
        let mut w = build_simple_world(4, 7);
        let ing = w.platform.ingress_ips()[0];
        let mut touched = std::collections::HashSet::new();
        for _ in 0..64 {
            let resp = w
                .platform
                .handle_query(
                    client(),
                    ing,
                    &n("name.cache.example"),
                    RecordType::A,
                    SimTime::ZERO,
                    &mut w.net,
                )
                .unwrap();
            if !resp.outcome.cache_hit {
                touched.insert(resp.truth_cache);
            }
        }
        assert_eq!(touched.len(), 4);
        // Nameserver saw exactly 4 queries for the name.
        let count = w
            .net
            .server(CDE_ZONE_SERVER)
            .unwrap()
            .count_queries_for(&n("name.cache.example"));
        assert_eq!(count, 4);
    }

    #[test]
    fn ingress_clusters_are_isolated() {
        // Two clusters; honey planted via ingress 0 must not be visible via
        // ingress 1.
        let mut platform = PlatformBuilder::new(11)
            .ingress(vec![
                Ipv4Addr::new(192, 0, 2, 1),
                Ipv4Addr::new(192, 0, 2, 2),
            ])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(1, SelectorKind::Random)
            .cluster(1, SelectorKind::Random)
            .ingress_assignment(vec![0, 1])
            .build();
        let mut net = build_cde_net(8);
        let honey = n("name.cache.example");
        platform
            .handle_query(
                client(),
                Ipv4Addr::new(192, 0, 2, 1),
                &honey,
                RecordType::A,
                SimTime::ZERO,
                &mut net,
            )
            .unwrap();
        net.clear_logs();
        // Same cluster: cache hit, no upstream traffic.
        let resp = platform
            .handle_query(
                client(),
                Ipv4Addr::new(192, 0, 2, 1),
                &honey,
                RecordType::A,
                SimTime::ZERO,
                &mut net,
            )
            .unwrap();
        assert!(resp.outcome.cache_hit);
        // Other cluster: miss, upstream traffic observed.
        let resp = platform
            .handle_query(
                client(),
                Ipv4Addr::new(192, 0, 2, 2),
                &honey,
                RecordType::A,
                SimTime::ZERO,
                &mut net,
            )
            .unwrap();
        assert!(!resp.outcome.cache_hit);
    }

    #[test]
    fn ground_truth_reports_structure() {
        let platform = PlatformBuilder::new(3)
            .ingress((1..=6).map(|d| Ipv4Addr::new(192, 0, 2, d)).collect())
            .egress((1..=9).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
            .cluster(2, SelectorKind::RoundRobin)
            .cluster(5, SelectorKind::Random)
            .build();
        let gt = platform.ground_truth();
        assert_eq!(gt.total_caches(), 7);
        assert_eq!(gt.cluster_cache_counts, vec![2, 5]);
        assert_eq!(gt.egress_ips.len(), 9);
        assert_eq!(
            gt.selectors,
            vec![SelectorKind::RoundRobin, SelectorKind::Random]
        );
        // Default assignment spreads ingress round-robin over clusters.
        let c0 = gt.ingress_clusters.values().filter(|&&c| c == 0).count();
        assert_eq!(c0, 3);
    }

    #[test]
    fn background_traffic_perturbs_round_robin() {
        // With round-robin selection and no other traffic, q = n identical
        // queries hit all n caches; background traffic shifts the stride.
        let mut platform = PlatformBuilder::new(5)
            .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(4, SelectorKind::RoundRobin)
            .build();
        let mut net = build_cde_net(8);
        let mut probed = Vec::new();
        for i in 0..4 {
            if i == 2 {
                platform.inject_background(
                    &[(n("x-1.cache.example"), RecordType::A)],
                    SimTime::ZERO,
                    &mut net,
                );
            }
            let resp = platform
                .handle_query(
                    client(),
                    Ipv4Addr::new(192, 0, 2, 1),
                    &n("name.cache.example"),
                    RecordType::A,
                    SimTime::ZERO,
                    &mut net,
                )
                .unwrap();
            probed.push(resp.truth_cache);
        }
        // The four probes no longer cover four distinct caches.
        let distinct: std::collections::HashSet<usize> = probed.iter().copied().collect();
        assert!(distinct.len() < 4);
    }

    #[test]
    fn flush_restores_cold_cache() {
        let mut w = build_simple_world(1, 13);
        let ing = w.platform.ingress_ips()[0];
        w.platform
            .handle_query(
                client(),
                ing,
                &n("name.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut w.net,
            )
            .unwrap();
        w.platform.flush_all_caches();
        let resp = w
            .platform
            .handle_query(
                client(),
                ing,
                &n("name.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut w.net,
            )
            .unwrap();
        assert!(!resp.outcome.cache_hit);
    }

    #[test]
    fn cache_hits_are_faster_than_misses() {
        // The foundation of the §IV-B3 timing side channel.
        let mut platform = PlatformBuilder::new(17)
            .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(1, SelectorKind::Random)
            .upstream_link(Link::new(
                LatencyModel::Constant(SimDuration::from_millis(15)),
                cde_netsim::LossModel::none(),
            ))
            .build();
        let mut net = build_cde_net(8);
        let miss = platform
            .handle_query(
                client(),
                Ipv4Addr::new(192, 0, 2, 1),
                &n("name.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut net,
            )
            .unwrap();
        let hit = platform
            .handle_query(
                client(),
                Ipv4Addr::new(192, 0, 2, 1),
                &n("name.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut net,
            )
            .unwrap();
        assert!(!miss.outcome.cache_hit);
        assert!(hit.outcome.cache_hit);
        assert!(hit.outcome.latency < miss.outcome.latency);
    }
}
