//! Background client traffic.
//!
//! §V-B notes that enumeration complexity "depends on the cache selection
//! algorithm, and on the traffic from other clients, arriving to the
//! resolution platform". This module generates that traffic: a Zipf-like
//! popularity distribution over a synthetic domain catalogue, replayed
//! through the platform between (or interleaved with) measurement probes.

use crate::authserver::NameserverNet;
use crate::platform::ResolutionPlatform;
use cde_dns::{Name, RecordType};
use cde_netsim::{DetRng, SimTime};
use rand::Rng;
use std::net::Ipv4Addr;

/// A background-traffic generator with Zipf-distributed domain popularity.
///
/// # Examples
///
/// ```
/// use cde_platform::BackgroundTraffic;
///
/// let mut traffic = BackgroundTraffic::new(100, 1.0, 7);
/// assert_eq!(traffic.catalogue_size(), 100);
/// ```
#[derive(Debug)]
pub struct BackgroundTraffic {
    catalogue: Vec<Name>,
    /// Cumulative Zipf weights for sampling.
    cumulative: Vec<f64>,
    rng: DetRng,
    generated: u64,
}

impl BackgroundTraffic {
    /// Creates a generator over `domains` synthetic popular domains with
    /// Zipf exponent `s` (1.0 is the classic web value).
    ///
    /// # Panics
    ///
    /// Panics when `domains` is zero or `s` is not finite.
    pub fn new(domains: usize, s: f64, seed: u64) -> BackgroundTraffic {
        assert!(domains > 0, "catalogue must be non-empty");
        assert!(s.is_finite(), "zipf exponent must be finite");
        let catalogue: Vec<Name> = (0..domains)
            .map(|i| {
                format!("www.site-{i}.example")
                    .parse()
                    .expect("static names are valid")
            })
            .collect();
        let mut cumulative = Vec::with_capacity(domains);
        let mut total = 0.0;
        for rank in 1..=domains {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        BackgroundTraffic {
            catalogue,
            cumulative,
            rng: DetRng::seed(seed).fork("background"),
            generated: 0,
        }
    }

    /// Number of domains in the catalogue.
    pub fn catalogue_size(&self) -> usize {
        self.catalogue.len()
    }

    /// Queries generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Draws one domain by popularity.
    pub fn sample_domain(&mut self) -> Name {
        let total = *self.cumulative.last().expect("non-empty catalogue");
        let x = self.rng.gen::<f64>() * total;
        let idx = self.cumulative.partition_point(|&c| c < x);
        self.catalogue[idx.min(self.catalogue.len() - 1)].clone()
    }

    /// Sends `count` background queries from synthetic clients through the
    /// platform (spread over its ingress addresses). Unresolvable domains
    /// are fine: the load balancer and caches still do their work, which
    /// is all the perturbation needs.
    pub fn inject(
        &mut self,
        platform: &mut ResolutionPlatform,
        net: &mut NameserverNet,
        count: u64,
        now: SimTime,
    ) {
        let ingress: Vec<Ipv4Addr> = platform.ingress_ips().to_vec();
        for k in 0..count {
            let domain = self.sample_domain();
            let src = Ipv4Addr::new(100, 70, (k >> 8) as u8, k as u8);
            let ing = ingress[self.rng.gen_range(0..ingress.len())];
            let _ = platform.handle_query(src, ing, &domain, RecordType::A, now, net);
            self.generated += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::testnet::build_simple_world;
    use crate::selector::SelectorKind;
    use crate::PlatformBuilder;

    #[test]
    fn sampling_is_zipf_skewed() {
        let mut t = BackgroundTraffic::new(50, 1.0, 1);
        let mut head = 0u64;
        let trials = 20_000;
        let top: Name = "www.site-0.example".parse().unwrap();
        for _ in 0..trials {
            if t.sample_domain() == top {
                head += 1;
            }
        }
        // Rank-1 share under Zipf(1.0) over 50 items ≈ 1/H_50 ≈ 22%.
        let share = head as f64 / trials as f64;
        assert!((0.17..0.28).contains(&share), "share {share}");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let mut t = BackgroundTraffic::new(10, 0.0, 2);
        let mut counts = vec![0u64; 10];
        for _ in 0..20_000 {
            let d = t.sample_domain();
            let label = d.first_label().unwrap().to_vec();
            let text = String::from_utf8(label).unwrap();
            let _ = text; // first label is "www"; count by full name instead
            let idx = (0..10)
                .find(|i| d == format!("www.site-{i}.example").parse::<Name>().unwrap())
                .unwrap();
            counts[idx] += 1;
        }
        for &c in &counts {
            assert!((1_500..2_500).contains(&(c as usize)), "count {c}");
        }
    }

    #[test]
    fn inject_counts_and_touches_platform() {
        let mut w = build_simple_world(2, 31);
        let mut t = BackgroundTraffic::new(20, 1.0, 3);
        t.inject(&mut w.platform, &mut w.net, 100, SimTime::ZERO);
        assert_eq!(t.generated(), 100);
        // The load balancer saw the traffic.
        let loads: u64 = w.platform.clusters()[0].balancer().loads().iter().sum();
        assert_eq!(loads, 100);
    }

    #[test]
    fn background_traffic_shifts_round_robin_phase() {
        // The §V-B point: with round-robin selection, concurrent traffic
        // makes the stride unpredictable from the prober's seat.
        let run = |background: bool| {
            let mut net = crate::platform::testnet::build_cde_net(8);
            let mut platform = PlatformBuilder::new(77)
                .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
                .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
                .cluster(4, SelectorKind::RoundRobin)
                .build();
            let mut traffic = BackgroundTraffic::new(10, 1.0, 4);
            let mut probed = Vec::new();
            for i in 0..4 {
                if background && i == 2 {
                    traffic.inject(&mut platform, &mut net, 1, SimTime::ZERO);
                }
                let r = platform
                    .handle_query(
                        Ipv4Addr::new(203, 0, 113, 5),
                        Ipv4Addr::new(192, 0, 2, 1),
                        &"name.cache.example".parse().unwrap(),
                        RecordType::A,
                        SimTime::ZERO,
                        &mut net,
                    )
                    .unwrap();
                probed.push(r.truth_cache);
            }
            probed
        };
        let clean = run(false);
        let noisy = run(true);
        assert_ne!(clean, noisy);
        // Clean round-robin covers all 4 caches in 4 probes.
        let distinct: std::collections::HashSet<_> = clean.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    #[should_panic(expected = "catalogue")]
    fn empty_catalogue_rejected() {
        BackgroundTraffic::new(0, 1.0, 1);
    }
}
