//! Simulated DNS resolution platforms for the CDE reproduction.
//!
//! This crate implements the paper's platform model (Fig. 1): clients talk
//! to *ingress* addresses, a load balancer selects exactly one hidden
//! cache per query, and cache misses go out through *egress* addresses to
//! authoritative nameservers. It also provides the nameserver side — the
//! CDE infrastructure's observation point — and the local-cache chain that
//! sits in front of indirect probers.
//!
//! * [`AuthServer`]/[`NameserverNet`] — authoritative servers with query
//!   logs (§IV-A observation channel),
//! * [`LoadBalancer`]/[`SelectorKind`] — the cache-selection strategies of
//!   §IV-A,
//! * [`resolver`] — per-cache iterative resolution (referrals, CNAME
//!   restarts, negative caching, loss-aware retries),
//! * [`ResolutionPlatform`]/[`PlatformBuilder`] — the full platform,
//! * [`LocalCacheChain`] — browser/OS-stub caches the indirect techniques
//!   must bypass (§IV-B2),
//! * [`testnet`] — ready-made worlds for tests, examples and benches.
//!
//! # Examples
//!
//! ```
//! use cde_platform::testnet::build_simple_world;
//! use cde_dns::RecordType;
//! use cde_netsim::SimTime;
//!
//! let mut world = build_simple_world(3, 1);
//! let ingress = world.platform.ingress_ips()[0];
//! let client = std::net::Ipv4Addr::new(203, 0, 113, 5);
//! let qname = "name.cache.example".parse().unwrap();
//! let resp = world
//!     .platform
//!     .handle_query(client, ingress, &qname, RecordType::A, SimTime::ZERO, &mut world.net)
//!     .unwrap();
//! assert!(resp.outcome.result.is_success());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authserver;
pub mod forwarder;
pub mod localcache;
pub mod platform;
pub mod resolver;
pub mod selector;
pub mod traffic;

pub use authserver::{AuthServer, NameserverNet, QueryLogEntry};
pub use forwarder::Forwarder;
pub use localcache::{LocalCacheChain, LocalCacheLayer};
pub use platform::{
    testnet, Cluster, ClusterConfig, GroundTruth, PlatformBuilder, PlatformError, PlatformResponse,
    ResolutionPlatform,
};
pub use resolver::{ResolveOutcome, ResolveResult, Upstream};
pub use selector::{LoadBalancer, SelectorKind};
pub use traffic::BackgroundTraffic;
