//! Property-based tests for platform behaviour.

use cde_dns::{Name, RecordType};
use cde_netsim::{DetRng, SimTime};
use cde_platform::testnet::{build_cde_net, CDE_ZONE_SERVER};
use cde_platform::{PlatformBuilder, SelectorKind};
use proptest::prelude::*;
use rand::Rng;
use std::net::Ipv4Addr;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
const CLIENT: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 50);

fn any_selector() -> impl Strategy<Value = SelectorKind> {
    prop_oneof![
        Just(SelectorKind::RoundRobin),
        Just(SelectorKind::Random),
        Just(SelectorKind::QnameHash),
        Just(SelectorKind::SourceHash),
        Just(SelectorKind::LeastLoaded),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Identical platform + identical query sequence = identical outcomes,
    /// cache assignments and nameserver logs (full determinism).
    #[test]
    fn platform_is_deterministic(
        n in 1usize..8,
        selector in any_selector(),
        seed in any::<u64>(),
        query_picks in proptest::collection::vec(0usize..16, 1..40),
    ) {
        let run = || {
            let mut net = build_cde_net(16);
            let mut platform = PlatformBuilder::new(seed)
                .ingress(vec![INGRESS])
                .egress((1..=3).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
                .cluster(n, selector)
                .build();
            let mut outcomes = Vec::new();
            for &pick in &query_picks {
                let qname: Name = format!("x-{}.cache.example", pick + 1).parse().unwrap();
                let r = platform
                    .handle_query(CLIENT, INGRESS, &qname, RecordType::A, SimTime::ZERO, &mut net)
                    .unwrap();
                outcomes.push((r.truth_cache, r.outcome.cache_hit, r.outcome.upstream_queries));
            }
            let log_len = net.server(CDE_ZONE_SERVER).unwrap().log().len();
            (outcomes, log_len)
        };
        prop_assert_eq!(run(), run());
    }

    /// The enumeration invariant behind the whole paper: with a lossless
    /// path, the number of honey fetches at the nameserver never exceeds
    /// min(n, probes), and always reaches at least 1.
    #[test]
    fn honey_fetches_bounded_by_caches_and_probes(
        n in 1usize..10,
        probes in 1usize..60,
        selector in any_selector(),
        seed in any::<u64>(),
    ) {
        let mut net = build_cde_net(8);
        let mut platform = PlatformBuilder::new(seed)
            .ingress(vec![INGRESS])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(n, selector)
            .build();
        let honey: Name = "name.cache.example".parse().unwrap();
        for _ in 0..probes {
            platform
                .handle_query(CLIENT, INGRESS, &honey, RecordType::A, SimTime::ZERO, &mut net)
                .unwrap();
        }
        let omega = net
            .server(CDE_ZONE_SERVER)
            .unwrap()
            .count_queries_for(&honey);
        prop_assert!(omega >= 1);
        prop_assert!(omega <= n.min(probes), "omega {omega} n {n} probes {probes}");
    }

    /// Cache hits never generate upstream queries, and misses always do.
    #[test]
    fn hit_miss_upstream_invariant(
        n in 1usize..6,
        seed in any::<u64>(),
        picks in proptest::collection::vec(0usize..8, 1..30),
    ) {
        let mut net = build_cde_net(8);
        let mut platform = PlatformBuilder::new(seed)
            .ingress(vec![INGRESS])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(n, SelectorKind::Random)
            .build();
        for &pick in &picks {
            let qname: Name = format!("x-{}.cache.example", pick + 1).parse().unwrap();
            let r = platform
                .handle_query(CLIENT, INGRESS, &qname, RecordType::A, SimTime::ZERO, &mut net)
                .unwrap();
            if r.outcome.cache_hit {
                prop_assert_eq!(r.outcome.upstream_queries, 0);
            } else {
                prop_assert!(r.outcome.upstream_queries >= 1);
            }
        }
    }

    /// Every upstream query's source address belongs to the platform's
    /// configured egress pool.
    #[test]
    fn upstream_sources_come_from_egress_pool(
        egress_count in 1usize..6,
        seed in any::<u64>(),
    ) {
        let egress: Vec<Ipv4Addr> =
            (1..=egress_count as u8).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect();
        let mut net = build_cde_net(8);
        let mut platform = PlatformBuilder::new(seed)
            .ingress(vec![INGRESS])
            .egress(egress.clone())
            .cluster(2, SelectorKind::Random)
            .build();
        let mut rng = DetRng::seed(seed);
        for _ in 0..20 {
            let qname: Name = format!("x-{}.cache.example", rng.gen_range(1..=8)).parse().unwrap();
            platform
                .handle_query(CLIENT, INGRESS, &qname, RecordType::A, SimTime::ZERO, &mut net)
                .unwrap();
        }
        for server in net.servers() {
            for entry in server.log() {
                prop_assert!(egress.contains(&entry.from), "{} not in pool", entry.from);
            }
        }
    }
}
