//! Batched UDP syscalls for the probe reactor.
//!
//! A campaign tick wants to hand the kernel a whole burst of datagrams
//! (and drain a whole burst of replies) per syscall. Linux exposes this
//! as `sendmmsg(2)`/`recvmmsg(2)`; everywhere else — and on Linux when
//! `CDE_SYSIO_FALLBACK=1` is set — we degrade to a loop of one-datagram
//! `send_to`/`recv_from` calls with identical semantics.
//!
//! This is deliberately the *only* crate in the workspace that contains
//! `unsafe` code (the FFI structs and calls live in [`mmsg`], the
//! SIGUSR1 latch in [`signal`], and the lock-free submission ring in
//! [`MpscRing`]); every other crate keeps `#![forbid(unsafe_code)]`.
//!
//! All functions assume a non-blocking socket: "nothing to do right now"
//! is reported as `Ok(0)`, never as an `Err(WouldBlock)` the caller has
//! to pattern-match.
//!
//! # Examples
//!
//! ```
//! use cde_sysio::{recv_batch, send_batch, RecvSlot, SendItem};
//! use std::net::{SocketAddrV4, UdpSocket};
//!
//! # fn main() -> std::io::Result<()> {
//! let a = UdpSocket::bind("127.0.0.1:0")?;
//! let b = UdpSocket::bind("127.0.0.1:0")?;
//! a.set_nonblocking(true)?;
//! b.set_nonblocking(true)?;
//! let dest = match b.local_addr()? {
//!     std::net::SocketAddr::V4(v4) => v4,
//!     _ => unreachable!(),
//! };
//!
//! let sent = send_batch(&a, &[SendItem { payload: b"ping", dest }])?;
//! assert_eq!(sent, 1);
//!
//! let mut slots = vec![RecvSlot::new()];
//! // Non-blocking: poll until the datagram lands.
//! let mut got = 0;
//! while got == 0 {
//!     got = recv_batch(&b, &mut slots)?;
//! }
//! assert_eq!(slots[0].bytes(), b"ping");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use std::io;
use std::net::{SocketAddrV4, UdpSocket};
use std::sync::OnceLock;

#[cfg(target_os = "linux")]
mod mmsg;
mod ring;
pub mod signal;

pub use ring::MpscRing;
pub use signal::{take_sigusr1, watch_sigusr1};

/// Largest number of datagrams moved per batched syscall. Callers may
/// pass longer slices; the excess simply waits for the next call.
pub const MAX_BATCH: usize = 32;

/// Receive buffer size per slot. Measurement replies are single
/// questions plus a handful of records — far below this, and anything
/// larger is truncated exactly as a fixed-size `recv_from` would.
pub const RECV_BUF_LEN: usize = 2048;

/// One outbound datagram in a [`send_batch`] call.
#[derive(Debug, Clone, Copy)]
pub struct SendItem<'a> {
    /// Wire bytes to transmit.
    pub payload: &'a [u8],
    /// Destination address.
    pub dest: SocketAddrV4,
}

/// One reusable receive slot for [`recv_batch`].
///
/// Slots own their buffer; constructing a slot allocates once and every
/// subsequent `recv_batch` call reuses it.
#[derive(Debug)]
pub struct RecvSlot {
    buf: Vec<u8>,
    len: usize,
    from: Option<SocketAddrV4>,
}

impl RecvSlot {
    /// Creates an empty slot with a [`RECV_BUF_LEN`]-byte buffer.
    pub fn new() -> RecvSlot {
        RecvSlot {
            buf: vec![0; RECV_BUF_LEN],
            len: 0,
            from: None,
        }
    }

    /// The datagram received into this slot by the last `recv_batch`
    /// call that filled it. Empty if the slot was not filled.
    pub fn bytes(&self) -> &[u8] {
        &self.buf[..self.len]
    }

    /// Source address of the received datagram, if the slot was filled.
    pub fn from(&self) -> Option<SocketAddrV4> {
        self.from
    }

    /// Clears the slot (receive functions do this implicitly).
    pub fn reset(&mut self) {
        self.len = 0;
        self.from = None;
    }

    fn fill(&mut self, len: usize, from: SocketAddrV4) {
        self.len = len.min(self.buf.len());
        self.from = Some(from);
    }

    fn buf_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Default for RecvSlot {
    fn default() -> Self {
        RecvSlot::new()
    }
}

fn use_fallback() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("CDE_SYSIO_FALLBACK").is_ok_and(|v| !v.is_empty() && v != "0")
    })
}

/// Name of the active backend: `"mmsg"` (batched Linux syscalls) or
/// `"fallback"` (portable one-datagram loop).
pub fn backend() -> &'static str {
    #[cfg(target_os = "linux")]
    {
        if !use_fallback() {
            return "mmsg";
        }
    }
    "fallback"
}

/// Sends up to [`MAX_BATCH`] datagrams from `items`, returning how many
/// the kernel accepted (a prefix of `items`).
///
/// `Ok(0)` means the socket's send buffer is full right now — try again
/// after the next reactor tick.
///
/// # Errors
///
/// Any socket error other than `WouldBlock`/`Interrupted` (those map to
/// `Ok(0)` and a short count respectively).
pub fn send_batch(sock: &UdpSocket, items: &[SendItem<'_>]) -> io::Result<usize> {
    let items = &items[..items.len().min(MAX_BATCH)];
    if items.is_empty() {
        return Ok(0);
    }
    #[cfg(target_os = "linux")]
    {
        if !use_fallback() {
            return mmsg::send_batch(sock, items);
        }
    }
    fallback::send_batch(sock, items)
}

/// Receives up to `slots.len().min(MAX_BATCH)` datagrams, filling slots
/// from the front and returning how many were filled.
///
/// `Ok(0)` means nothing is queued on the socket right now.
///
/// # Errors
///
/// Any socket error other than `WouldBlock`/`Interrupted`.
pub fn recv_batch(sock: &UdpSocket, slots: &mut [RecvSlot]) -> io::Result<usize> {
    let n = slots.len().min(MAX_BATCH);
    let slots = &mut slots[..n];
    if slots.is_empty() {
        return Ok(0);
    }
    #[cfg(target_os = "linux")]
    {
        if !use_fallback() {
            return mmsg::recv_batch(sock, slots);
        }
    }
    fallback::recv_batch(sock, slots)
}

/// Portable implementation: a loop of one-datagram std calls.
mod fallback {
    use super::{RecvSlot, SendItem};
    use std::io::{self, ErrorKind};
    use std::net::{SocketAddr, UdpSocket};

    pub fn send_batch(sock: &UdpSocket, items: &[SendItem<'_>]) -> io::Result<usize> {
        let mut sent = 0;
        for item in items {
            match sock.send_to(item.payload, SocketAddr::V4(item.dest)) {
                Ok(_) => sent += 1,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => break,
                Err(e) => {
                    if sent > 0 {
                        break;
                    }
                    return Err(e);
                }
            }
        }
        Ok(sent)
    }

    pub fn recv_batch(sock: &UdpSocket, slots: &mut [RecvSlot]) -> io::Result<usize> {
        let mut filled = 0;
        for slot in slots.iter_mut() {
            slot.reset();
            match sock.recv_from(slot.buf_mut()) {
                Ok((len, SocketAddr::V4(from))) => {
                    slot.fill(len, from);
                    filled += 1;
                }
                // The engine is IPv4-only; skip the slot but keep going.
                Ok((_, SocketAddr::V6(_))) => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => break,
                Err(e) => {
                    if filled > 0 {
                        break;
                    }
                    return Err(e);
                }
            }
        }
        Ok(filled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::SocketAddr;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddrV4) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let dest = match b.local_addr().unwrap() {
            SocketAddr::V4(v4) => v4,
            _ => unreachable!(),
        };
        (a, b, dest)
    }

    fn drain(sock: &UdpSocket, slots: &mut [RecvSlot], want: usize) -> usize {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        let mut got = 0;
        while got < want && std::time::Instant::now() < deadline {
            got += recv_batch(sock, &mut slots[got..]).unwrap();
            if got < want {
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
        }
        got
    }

    fn roundtrip(send: impl Fn(&UdpSocket, &[SendItem<'_>]) -> io::Result<usize>) {
        let (a, b, dest) = pair();
        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 16 + i as usize]).collect();
        let items: Vec<SendItem<'_>> = payloads
            .iter()
            .map(|p| SendItem { payload: p, dest })
            .collect();
        assert_eq!(send(&a, &items).unwrap(), 5);

        let mut slots: Vec<RecvSlot> = (0..8).map(|_| RecvSlot::new()).collect();
        assert_eq!(drain(&b, &mut slots, 5), 5);
        let src = match a.local_addr().unwrap() {
            SocketAddr::V4(v4) => v4,
            _ => unreachable!(),
        };
        for (slot, payload) in slots.iter().zip(&payloads) {
            assert_eq!(slot.bytes(), &payload[..]);
            assert_eq!(slot.from(), Some(src));
        }
        // Unfilled slots stay empty.
        assert!(slots[5].bytes().is_empty());
        assert_eq!(slots[5].from(), None);
    }

    #[test]
    fn default_backend_roundtrips() {
        roundtrip(send_batch);
    }

    #[test]
    fn fallback_backend_roundtrips() {
        roundtrip(fallback::send_batch);
        // And fallback receive against default send.
        let (a, b, dest) = pair();
        let payload = b"xyz".to_vec();
        assert_eq!(
            send_batch(
                &a,
                &[SendItem {
                    payload: &payload,
                    dest
                }]
            )
            .unwrap(),
            1
        );
        let mut slots = [RecvSlot::new()];
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        let mut got = 0;
        while got == 0 && std::time::Instant::now() < deadline {
            got = fallback::recv_batch(&b, &mut slots).unwrap();
        }
        assert_eq!(got, 1);
        assert_eq!(slots[0].bytes(), b"xyz");
    }

    #[test]
    fn empty_batches_are_noops() {
        let (a, _b, _dest) = pair();
        assert_eq!(send_batch(&a, &[]).unwrap(), 0);
        assert_eq!(recv_batch(&a, &mut []).unwrap(), 0);
    }

    #[test]
    fn recv_on_idle_socket_returns_zero() {
        let (a, _b, _dest) = pair();
        let mut slots = [RecvSlot::new()];
        assert_eq!(recv_batch(&a, &mut slots).unwrap(), 0);
    }

    #[test]
    fn backend_reports_a_known_name() {
        assert!(matches!(backend(), "mmsg" | "fallback"));
    }

    #[test]
    fn batch_larger_than_max_is_clamped() {
        let (a, b, dest) = pair();
        let payload = [7u8; 8];
        let items: Vec<SendItem<'_>> = (0..MAX_BATCH + 9)
            .map(|_| SendItem {
                payload: &payload,
                dest,
            })
            .collect();
        assert_eq!(send_batch(&a, &items).unwrap(), MAX_BATCH);
        let mut slots: Vec<RecvSlot> = (0..MAX_BATCH + 9).map(|_| RecvSlot::new()).collect();
        assert_eq!(drain(&b, &mut slots, MAX_BATCH), MAX_BATCH);
    }
}
