//! A bounded lock-free submission ring (Vyukov MPMC queue).
//!
//! The sharded reactor hands probes from any number of submitting
//! threads to one shard's event loop. A `Mutex<VecDeque>` channel puts
//! every submission through a lock the event loop also takes on its hot
//! path; this ring replaces it with a fixed array of cells, each guarded
//! by a sequence number, so producers and the consumer only touch
//! atomics (Dmitry Vyukov's bounded MPMC queue). Capacity is fixed at
//! construction — a full ring reports backpressure instead of
//! allocating.
//!
//! This crate is the workspace's designated home for `unsafe` (see the
//! crate docs); the ring's unsafety is confined to writing/reading the
//! `MaybeUninit` cell payload, which the sequence protocol proves is
//! exclusively owned at that point.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pads a hot atomic to its own cache line so producers bumping the
/// enqueue cursor don't false-share with the consumer's dequeue cursor.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Cell<T> {
    /// The cell's turn counter: equals the claiming position when free
    /// for a producer, position + 1 when holding a value for the
    /// consumer, and advances by the capacity each full lap.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free multi-producer queue.
///
/// Used single-consumer by the reactor (one shard loop drains it), but
/// the algorithm is safe for concurrent consumers too. `push` never
/// blocks: a full ring returns the value back to the caller.
pub struct MpscRing<T> {
    buffer: Box<[Cell<T>]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

// SAFETY: values move through the cells with release/acquire handoff on
// each cell's sequence counter; a cell's payload is only touched by the
// thread that won the position CAS for it.
unsafe impl<T: Send> Send for MpscRing<T> {}
unsafe impl<T: Send> Sync for MpscRing<T> {}

impl<T> MpscRing<T> {
    /// A ring holding at least `capacity` items (rounded up to the next
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> MpscRing<T> {
        let cap = capacity.max(2).next_power_of_two();
        let buffer: Box<[Cell<T>]> = (0..cap)
            .map(|i| Cell {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        MpscRing {
            buffer,
            mask: cap - 1,
            enqueue_pos: CachePadded(AtomicUsize::new(0)),
            dequeue_pos: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.buffer.len()
    }

    /// Enqueues `value`, or returns it when the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let cell = &self.buffer[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed `pos`, so this cell is
                        // ours until we publish via the seq store below.
                        unsafe { (*cell.value.get()).write(value) };
                        cell.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(found) => pos = found,
                }
            } else if dif < 0 {
                // The cell still holds a value from one lap ago: full.
                return Err(value);
            } else {
                pos = self.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest value, or `None` when the ring is empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let cell = &self.buffer[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                match self.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed `pos`; the producer's
                        // release store published an initialized value.
                        let value = unsafe { (*cell.value.get()).assume_init_read() };
                        cell.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(found) => pos = found,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Queued items right now. Approximate under concurrency, but never
    /// reports empty while a claimed push has not been popped — safe for
    /// a consumer's "drained?" check.
    pub fn len(&self) -> usize {
        let enq = self.enqueue_pos.0.load(Ordering::SeqCst);
        let deq = self.dequeue_pos.0.load(Ordering::SeqCst);
        enq.wrapping_sub(deq)
    }

    /// `true` when no item is queued or mid-push.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for MpscRing<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for MpscRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpscRing")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_roundtrip() {
        let ring = MpscRing::with_capacity(8);
        for i in 0..5 {
            ring.push(i).unwrap();
        }
        assert_eq!(ring.len(), 5);
        for i in 0..5 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn capacity_rounds_up_and_full_ring_rejects() {
        let ring = MpscRing::with_capacity(5);
        assert_eq!(ring.capacity(), 8);
        for i in 0..8 {
            ring.push(i).unwrap();
        }
        assert_eq!(ring.push(99), Err(99));
        assert_eq!(ring.pop(), Some(0));
        ring.push(99).unwrap();
        let drained: Vec<_> = std::iter::from_fn(|| ring.pop()).collect();
        assert_eq!(drained, vec![1, 2, 3, 4, 5, 6, 7, 99]);
    }

    #[test]
    fn wraps_many_laps() {
        let ring = MpscRing::with_capacity(4);
        for lap in 0..1000u64 {
            ring.push(lap).unwrap();
            assert_eq!(ring.pop(), Some(lap));
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn concurrent_producers_one_consumer() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 5_000;
        let ring = Arc::new(MpscRing::with_capacity(64));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let mut v = p * PER_PRODUCER + i;
                    loop {
                        match ring.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let mut seen = vec![false; (PRODUCERS * PER_PRODUCER) as usize];
        let mut got = 0usize;
        let mut last_per_producer = vec![None::<u64>; PRODUCERS as usize];
        while got < seen.len() {
            if let Some(v) = ring.pop() {
                assert!(!seen[v as usize], "duplicate {v}");
                seen[v as usize] = true;
                // Per-producer FIFO: values from one producer arrive in
                // submission order.
                let p = (v / PER_PRODUCER) as usize;
                if let Some(prev) = last_per_producer[p] {
                    assert!(v > prev, "producer {p} reordered: {prev} then {v}");
                }
                last_per_producer[p] = Some(v);
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(seen.iter().all(|&s| s));
        assert!(ring.is_empty());
    }

    #[test]
    fn drop_releases_queued_values() {
        let payload = Arc::new(());
        {
            let ring = MpscRing::with_capacity(8);
            for _ in 0..6 {
                ring.push(Arc::clone(&payload)).unwrap();
            }
            ring.pop();
        }
        assert_eq!(Arc::strong_count(&payload), 1, "ring drop leaked values");
    }
}
