//! Linux `sendmmsg(2)`/`recvmmsg(2)` via direct FFI.
//!
//! The workspace vendors no `libc` crate, but `std` already links
//! against the platform C library, so declaring the two symbols (plus
//! the handful of `repr(C)` structs from `<bits/socket.h>`) is all the
//! binding we need. Layouts below match glibc on every 64-bit Linux
//! target; the struct-size assertions in the tests pin them.
//!
//! All `unsafe` in the workspace is confined to this crate.

use super::{RecvSlot, SendItem};
use std::io::{self, ErrorKind};
use std::net::{Ipv4Addr, SocketAddrV4, UdpSocket};
use std::os::fd::AsRawFd;

const AF_INET: u16 = 2;
const MSG_DONTWAIT: i32 = 0x40;

/// `struct iovec`.
#[repr(C)]
struct IoVec {
    base: *mut u8,
    len: usize,
}

/// `struct sockaddr_in` (always 16 bytes).
#[repr(C)]
#[derive(Clone, Copy)]
struct SockAddrIn {
    family: u16,
    /// Network byte order.
    port: u16,
    /// Network byte order.
    addr: u32,
    zero: [u8; 8],
}

impl SockAddrIn {
    fn from_v4(sa: SocketAddrV4) -> SockAddrIn {
        SockAddrIn {
            family: AF_INET,
            port: sa.port().to_be(),
            addr: u32::from(*sa.ip()).to_be(),
            zero: [0; 8],
        }
    }

    fn to_v4(self) -> Option<SocketAddrV4> {
        if self.family != AF_INET {
            return None;
        }
        Some(SocketAddrV4::new(
            Ipv4Addr::from(u32::from_be(self.addr)),
            u16::from_be(self.port),
        ))
    }

    fn zeroed() -> SockAddrIn {
        SockAddrIn {
            family: 0,
            port: 0,
            addr: 0,
            zero: [0; 8],
        }
    }
}

/// `struct msghdr` (glibc, 64-bit).
#[repr(C)]
struct MsgHdr {
    name: *mut SockAddrIn,
    namelen: u32,
    iov: *mut IoVec,
    iovlen: usize,
    control: *mut u8,
    controllen: usize,
    flags: i32,
}

/// `struct mmsghdr`.
#[repr(C)]
struct MMsgHdr {
    hdr: MsgHdr,
    len: u32,
}

extern "C" {
    fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
    fn recvmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32, timeout: *mut u8) -> i32;
}

fn soft_error(e: &io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::Interrupted)
}

pub fn send_batch(sock: &UdpSocket, items: &[SendItem<'_>]) -> io::Result<usize> {
    debug_assert!(items.len() <= super::MAX_BATCH);
    let mut addrs = [SockAddrIn::zeroed(); super::MAX_BATCH];
    let mut iovecs: [IoVec; super::MAX_BATCH] = std::array::from_fn(|_| IoVec {
        base: std::ptr::null_mut(),
        len: 0,
    });
    let mut hdrs: Vec<MMsgHdr> = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        addrs[i] = SockAddrIn::from_v4(item.dest);
        iovecs[i] = IoVec {
            // sendmmsg only reads the buffer; the mut cast is an API
            // artefact of the shared iovec type.
            base: item.payload.as_ptr() as *mut u8,
            len: item.payload.len(),
        };
        hdrs.push(MMsgHdr {
            hdr: MsgHdr {
                name: &mut addrs[i],
                namelen: std::mem::size_of::<SockAddrIn>() as u32,
                iov: &mut iovecs[i],
                iovlen: 1,
                control: std::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            },
            len: 0,
        });
    }
    // SAFETY: every pointer in `hdrs` targets a live stack/heap slot
    // (`addrs`, `iovecs`, the caller's payloads) that outlives the call;
    // vlen equals hdrs.len(); the fd is a valid UDP socket.
    let rc = unsafe {
        sendmmsg(
            sock.as_raw_fd(),
            hdrs.as_mut_ptr(),
            hdrs.len() as u32,
            MSG_DONTWAIT,
        )
    };
    if rc < 0 {
        let e = io::Error::last_os_error();
        if soft_error(&e) {
            return Ok(0);
        }
        return Err(e);
    }
    Ok(rc as usize)
}

pub fn recv_batch(sock: &UdpSocket, slots: &mut [RecvSlot]) -> io::Result<usize> {
    debug_assert!(slots.len() <= super::MAX_BATCH);
    let mut addrs = [SockAddrIn::zeroed(); super::MAX_BATCH];
    let mut iovecs: [IoVec; super::MAX_BATCH] = std::array::from_fn(|_| IoVec {
        base: std::ptr::null_mut(),
        len: 0,
    });
    let mut hdrs: Vec<MMsgHdr> = Vec::with_capacity(slots.len());
    for (i, slot) in slots.iter_mut().enumerate() {
        slot.reset();
        let buf = slot.buf_mut();
        iovecs[i] = IoVec {
            base: buf.as_mut_ptr(),
            len: buf.len(),
        };
        hdrs.push(MMsgHdr {
            hdr: MsgHdr {
                name: &mut addrs[i],
                namelen: std::mem::size_of::<SockAddrIn>() as u32,
                iov: &mut iovecs[i],
                iovlen: 1,
                control: std::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            },
            len: 0,
        });
    }
    // SAFETY: as in send_batch — all pointers are to live buffers that
    // outlive the call, vlen matches, null timeout means "no timeout"
    // (we pass MSG_DONTWAIT so the call never blocks).
    let rc = unsafe {
        recvmmsg(
            sock.as_raw_fd(),
            hdrs.as_mut_ptr(),
            hdrs.len() as u32,
            MSG_DONTWAIT,
            std::ptr::null_mut(),
        )
    };
    if rc < 0 {
        let e = io::Error::last_os_error();
        if soft_error(&e) {
            return Ok(0);
        }
        return Err(e);
    }
    let filled = rc as usize;
    for (i, hdr) in hdrs.iter().take(filled).enumerate() {
        if let Some(from) = addrs[i].to_v4() {
            slots[i].fill(hdr.len as usize, from);
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_layouts_match_glibc() {
        // Pin the ABI this module hand-declares. If any of these fire,
        // the FFI structs no longer match the platform's C library.
        assert_eq!(std::mem::size_of::<SockAddrIn>(), 16);
        assert_eq!(std::mem::size_of::<IoVec>(), 16);
        assert_eq!(std::mem::size_of::<MsgHdr>(), 56);
        assert_eq!(std::mem::size_of::<MMsgHdr>(), 64);
        assert_eq!(std::mem::align_of::<MMsgHdr>(), 8);
    }

    #[test]
    fn sockaddr_roundtrips() {
        let sa = SocketAddrV4::new(Ipv4Addr::new(127, 0, 0, 1), 5353);
        assert_eq!(SockAddrIn::from_v4(sa).to_v4(), Some(sa));
        assert_eq!(SockAddrIn::zeroed().to_v4(), None);
    }

    #[test]
    fn mmsg_roundtrip_over_loopback() {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let dest = match b.local_addr().unwrap() {
            std::net::SocketAddr::V4(v4) => v4,
            _ => unreachable!(),
        };
        let payloads: Vec<Vec<u8>> = (0..4u8).map(|i| vec![0xA0 | i; 12]).collect();
        let items: Vec<SendItem<'_>> = payloads
            .iter()
            .map(|p| SendItem { payload: p, dest })
            .collect();
        assert_eq!(send_batch(&a, &items).unwrap(), 4);

        let mut slots: Vec<RecvSlot> = (0..4).map(|_| RecvSlot::new()).collect();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        let mut got = 0;
        while got < 4 && std::time::Instant::now() < deadline {
            got += recv_batch(&b, &mut slots[got..]).unwrap();
        }
        assert_eq!(got, 4);
        for (slot, payload) in slots.iter().zip(&payloads) {
            assert_eq!(slot.bytes(), &payload[..]);
        }
    }
}
