//! Async-signal-safe SIGUSR1 latch for operator-triggered dumps.
//!
//! The flight recorder's third dump trigger is the classic black-box
//! one: `kill -USR1 <pid>` snapshots the rings without any control
//! plane. A signal handler may only touch async-signal-safe state, so
//! the handler here does exactly one thing — a relaxed store into a
//! process-global `AtomicBool` — and the daemon's run loop polls
//! [`take_sigusr1`] at its own cadence.
//!
//! Like [`mmsg`](../index.html), this module binds the platform C
//! library directly (`std` already links it; the workspace vendors no
//! `libc` crate). Non-Linux targets get a no-op install so callers
//! never need their own `cfg` gates.

use std::sync::atomic::{AtomicBool, Ordering};

/// `SIGUSR1` on Linux (same value on every architecture glibc supports).
#[cfg(target_os = "linux")]
const SIGUSR1: i32 = 10;

static SIGUSR1_PENDING: AtomicBool = AtomicBool::new(false);

#[cfg(target_os = "linux")]
extern "C" fn on_sigusr1(_signum: i32) {
    // Async-signal-safe: a single relaxed atomic store.
    SIGUSR1_PENDING.store(true, Ordering::Relaxed);
}

/// Installs the SIGUSR1 handler (idempotent; later installs just
/// re-point the handler at the same latch). Returns `true` if the
/// handler is active, `false` on platforms without SIGUSR1 or if the
/// kernel refused the registration.
pub fn watch_sigusr1() -> bool {
    #[cfg(target_os = "linux")]
    {
        extern "C" {
            /// `signal(2)` — returns the previous handler, or
            /// `SIG_ERR` (-1) on failure.
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let handler = on_sigusr1 as extern "C" fn(i32);
        let previous = unsafe { signal(SIGUSR1, handler as usize) };
        previous != usize::MAX
    }
    #[cfg(not(target_os = "linux"))]
    false
}

/// Consumes a pending SIGUSR1: returns `true` at most once per
/// delivered signal (multiple deliveries between polls coalesce into
/// one, which is the right semantics for "dump now").
pub fn take_sigusr1() -> bool {
    SIGUSR1_PENDING.swap(false, Ordering::Relaxed)
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn sigusr1_latches_once_and_coalesces() {
        assert!(watch_sigusr1());
        assert!(!take_sigusr1(), "nothing pending before the signal");
        unsafe {
            assert_eq!(raise(SIGUSR1), 0);
            assert_eq!(raise(SIGUSR1), 0);
        }
        assert!(take_sigusr1(), "latch set by the handler");
        assert!(!take_sigusr1(), "consumed exactly once");
    }
}
