//! Property-based tests for the simulator primitives.

use cde_netsim::{
    sample_weighted, DetRng, LatencyModel, Link, LossModel, Scheduler, SimDuration, SimTime,
};
use proptest::prelude::*;
use rand::RngCore;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The scheduler drains events in non-decreasing time order, with
    /// insertion-order ties, regardless of insertion order.
    #[test]
    fn scheduler_orders_any_workload(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut drained = 0;
        while let Some((at, idx)) = s.pop() {
            prop_assert_eq!(SimTime::from_micros(times[idx]), at);
            if let Some((lt, lidx)) = last {
                prop_assert!(at > lt || (at == lt && idx > lidx));
            }
            last = Some((at, idx));
            drained += 1;
        }
        prop_assert_eq!(drained, times.len());
    }

    /// Uniform latency samples always fall inside the configured bounds.
    #[test]
    fn uniform_latency_bounded(lo in 0u64..10_000, width in 0u64..10_000, seed in any::<u64>()) {
        let model = LatencyModel::Uniform {
            low: SimDuration::from_micros(lo),
            high: SimDuration::from_micros(lo + width),
        };
        let mut rng = DetRng::seed(seed);
        for _ in 0..50 {
            let d = model.sample(&mut rng);
            prop_assert!(d.as_micros() >= lo);
            prop_assert!(d.as_micros() <= lo + width);
        }
    }

    /// Log-normal samples are always positive and capped.
    #[test]
    fn lognormal_latency_sane(median_ms in 1u64..1_000, sigma in 0.0f64..3.0, seed in any::<u64>()) {
        let model = LatencyModel::LogNormal {
            median: SimDuration::from_millis(median_ms),
            sigma,
        };
        let mut rng = DetRng::seed(seed);
        for _ in 0..50 {
            let d = model.sample(&mut rng);
            prop_assert!(d.as_micros() >= 1);
            prop_assert!(d <= SimDuration::from_secs(60));
        }
    }

    /// Per-link transmissions succeed at roughly the configured rate.
    #[test]
    fn loss_rate_statistically_correct(rate_pct in 0u32..60, seed in any::<u64>()) {
        let rate = rate_pct as f64 / 100.0;
        let link = Link::new(
            LatencyModel::Constant(SimDuration::from_micros(1)),
            LossModel::with_rate(rate),
        );
        let mut rng = DetRng::seed(seed);
        let n = 4_000;
        let delivered = (0..n).filter(|_| link.transmit(&mut rng).is_some()).count();
        let observed = 1.0 - delivered as f64 / n as f64;
        prop_assert!((observed - rate).abs() < 0.04, "observed {observed}, rate {rate}");
    }

    /// Fork labels and indices always produce distinct, reproducible
    /// streams.
    #[test]
    fn rng_forks_reproducible(seed in any::<u64>(), idx in 0u64..1_000) {
        let a = DetRng::seed(seed).fork_indexed("x", idx).next_u64();
        let b = DetRng::seed(seed).fork_indexed("x", idx).next_u64();
        prop_assert_eq!(a, b);
        let c = DetRng::seed(seed).fork_indexed("x", idx + 1).next_u64();
        prop_assert_ne!(a, c);
    }

    /// Weighted sampling never selects zero-weight items.
    #[test]
    fn weighted_sampling_avoids_zero_mass(
        weights in proptest::collection::vec(0.0f64..10.0, 1..10),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().any(|w| *w > 0.0));
        let mut rng = DetRng::seed(seed);
        for _ in 0..50 {
            let idx = sample_weighted(&mut rng, &weights);
            prop_assert!(weights[idx] > 0.0);
        }
    }

    /// Time arithmetic is consistent: (t + d) - t == d.
    #[test]
    fn time_arithmetic_roundtrip(base in 0u64..1_000_000, delta in 0u64..1_000_000) {
        let t = SimTime::from_micros(base);
        let d = SimDuration::from_micros(delta);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d).since(t), d);
        prop_assert_eq!(t.since(t + d), SimDuration::ZERO);
    }
}
