//! Deterministic discrete-event network simulator for the CDE
//! reproduction.
//!
//! The paper's measurements run over the live Internet; this crate is the
//! substitute substrate (see `DESIGN.md` §2). It provides:
//!
//! * [`SimTime`]/[`SimDuration`]/[`Clock`] — virtual time shared between
//!   probers, platforms and nameservers,
//! * [`DetRng`] — seeded, fork-able randomness so runs replay exactly,
//! * [`LatencyModel`]/[`LossModel`]/[`Link`] — the stochastic behaviour the
//!   timing side channel (§IV-B3) and carpet bombing (§V) respond to,
//! * [`GilbertElliott`] — correlated (bursty) loss for chaos testing,
//! * [`CountryProfile`] — the per-country loss rates the paper measured,
//! * [`Scheduler`] — an event queue for background traffic.
//!
//! # Examples
//!
//! ```
//! use cde_netsim::{Clock, CountryProfile, DetRng, SimDuration};
//!
//! let clock = Clock::new();
//! let link = CountryProfile::Typical.wan_link();
//! let mut rng = DetRng::seed(7).fork("demo");
//! if let Some(delay) = link.transmit(&mut rng) {
//!     clock.advance(delay);
//! }
//! assert!(clock.now().as_micros() < 1_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod rng;
pub mod scheduler;
pub mod time;

pub use link::{CountryProfile, GilbertElliott, LatencyModel, Link, LossModel};
pub use rng::{sample_weighted, seed_from_env, DetRng, SeedGuard};
pub use scheduler::Scheduler;
pub use time::{Clock, SimDuration, SimTime};
