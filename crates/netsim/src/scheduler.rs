//! A minimal discrete-event scheduler.
//!
//! Used for background client traffic arriving at resolution platforms
//! while an enumeration runs (paper §V-B notes that enumeration complexity
//! depends on "traffic from other clients").

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event queue ordered by firing time; ties break by insertion order, so
/// execution is fully deterministic.
///
/// # Examples
///
/// ```
/// use cde_netsim::{Scheduler, SimTime};
///
/// let mut s = Scheduler::new();
/// s.schedule(SimTime::from_micros(20), "b");
/// s.schedule(SimTime::from_micros(10), "a");
/// assert_eq!(s.pop(), Some((SimTime::from_micros(10), "a")));
/// assert_eq!(s.pop(), Some((SimTime::from_micros(20), "b")));
/// assert_eq!(s.pop(), None);
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler.
    pub fn new() -> Scheduler<E> {
        Scheduler {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Enqueues `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Firing time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Removes and returns the next event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Removes and returns the next event only if it fires at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Scheduler<E> {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut s = Scheduler::new();
        for (t, e) in [(30, 'c'), (10, 'a'), (20, 'b')] {
            s.schedule(SimTime::from_micros(t), e);
        }
        let order: Vec<char> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut s = Scheduler::new();
        let t = SimTime::from_micros(5);
        for e in 0..100 {
            s.schedule(t, e);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_micros(10), "early");
        s.schedule(SimTime::from_micros(100), "late");
        assert_eq!(
            s.pop_due(SimTime::from_micros(50)).map(|(_, e)| e),
            Some("early")
        );
        assert_eq!(s.pop_due(SimTime::from_micros(50)), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut s: Scheduler<u8> = Scheduler::new();
        assert!(s.is_empty());
        s.schedule(SimTime::ZERO, 1);
        assert_eq!(s.len(), 1);
        s.pop();
        assert!(s.is_empty());
    }
}
