//! Virtual time primitives.
//!
//! The simulation measures time in integer microseconds. [`SimTime`] is an
//! absolute instant since simulation start; [`SimDuration`] is a span.
//! Newtypes keep instants and spans from being mixed up (C-NEWTYPE).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of virtual time, in microseconds.
///
/// # Examples
///
/// ```
/// use cde_netsim::SimDuration;
///
/// let rtt = SimDuration::from_millis(38);
/// assert_eq!(rtt.as_micros(), 38_000);
/// assert_eq!(rtt * 2, SimDuration::from_millis(76));
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Creates a span from milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Creates a span from whole seconds.
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// This span in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// This span in (truncated) milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// An absolute instant of virtual time since simulation start.
///
/// # Examples
///
/// ```
/// use cde_netsim::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_secs(2);
/// assert_eq!(t1 - t0, SimDuration::from_secs(2));
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from microseconds since the epoch.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Span since an earlier instant, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Whole seconds since the epoch (used for TTL arithmetic).
    pub fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_micros())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_micros();
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

/// A shared, monotonically advancing virtual clock.
///
/// Cloning a `Clock` yields a handle onto the same underlying time, so a
/// prober and the platform it probes observe one timeline.
///
/// # Examples
///
/// ```
/// use cde_netsim::{Clock, SimDuration};
///
/// let clock = Clock::new();
/// let view = clock.clone();
/// clock.advance(SimDuration::from_millis(5));
/// assert_eq!(view.now().as_micros(), 5_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    micros: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl Clock {
    /// Creates a clock at the epoch.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime(self.micros.load(std::sync::atomic::Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let v = self
            .micros
            .fetch_add(d.as_micros(), std::sync::atomic::Ordering::SeqCst);
        SimTime(v + d.as_micros())
    }

    /// Advances the clock to `t` if it is in the future; never goes back.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        self.micros
            .fetch_max(t.0, std::sync::atomic::Ordering::SeqCst);
        self.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!(a + b, SimDuration::from_millis(14));
        assert_eq!(a - b, SimDuration::from_millis(6));
        assert_eq!(a * 3, SimDuration::from_millis(30));
        assert_eq!(a / 2, SimDuration::from_millis(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn time_duration_interaction() {
        let t = SimTime::ZERO + SimDuration::from_secs(3);
        assert_eq!(t.as_secs(), 3);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_secs(3));
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn display_formats_scale() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.000ms");
        assert_eq!(SimDuration::from_secs(7).to_string(), "7.000s");
    }

    #[test]
    fn clock_is_shared_between_clones() {
        let c1 = Clock::new();
        let c2 = c1.clone();
        c1.advance(SimDuration::from_millis(3));
        c2.advance(SimDuration::from_millis(2));
        assert_eq!(c1.now(), c2.now());
        assert_eq!(c1.now().as_micros(), 5_000);
    }

    #[test]
    fn clock_advance_to_is_monotone() {
        let c = Clock::new();
        c.advance(SimDuration::from_millis(10));
        c.advance_to(SimTime::from_micros(5_000)); // in the past → no-op
        assert_eq!(c.now().as_micros(), 10_000);
        c.advance_to(SimTime::from_micros(20_000));
        assert_eq!(c.now().as_micros(), 20_000);
    }
}
