//! Deterministic random number generation.
//!
//! Every stochastic component of the simulation draws from a [`DetRng`]
//! derived from a master seed, so whole experiments replay bit-identically.
//! Substreams are forked by label, which keeps results stable when
//! unrelated components add or remove draws.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic RNG with labelled substreams.
///
/// # Examples
///
/// ```
/// use cde_netsim::DetRng;
/// use rand::Rng;
///
/// let mut a = DetRng::seed(42).fork("latency");
/// let mut b = DetRng::seed(42).fork("latency");
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
///
/// let mut c = DetRng::seed(42).fork("loss");
/// assert_ne!(DetRng::seed(42).fork("latency").gen::<u64>(), c.gen::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
    seed: u64,
}

impl DetRng {
    /// Creates a generator from a master seed.
    pub fn seed(seed: u64) -> DetRng {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Derives an independent substream named `label`.
    ///
    /// Forking does not consume state from `self`; the same `(seed, label)`
    /// pair always produces the same stream.
    pub fn fork(&self, label: &str) -> DetRng {
        DetRng::seed(mix(self.seed, hash_label(label)))
    }

    /// Derives an independent substream indexed by `index` (e.g. one per
    /// simulated network).
    pub fn fork_indexed(&self, label: &str, index: u64) -> DetRng {
        DetRng::seed(mix(mix(self.seed, hash_label(label)), index))
    }

    /// The master seed this generator derives from.
    pub fn master_seed(&self) -> u64 {
        self.seed
    }
}

/// Reads a replay seed from the environment, falling back to `default`.
///
/// The chaos suites derive every fault decision from one master seed;
/// exporting `CDE_CHAOS_SEED=<n>` replays a failed run bit-identically.
///
/// # Panics
///
/// Panics when the variable is set but not a `u64` — a silently ignored
/// typo would "replay" a different universe.
pub fn seed_from_env(var: &str, default: u64) -> u64 {
    match std::env::var(var) {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{var} must be a u64 seed, got {s:?}")),
        Err(_) => default,
    }
}

/// Prints the replay recipe when a test panics while the guard is live.
///
/// Hold one at the top of a seeded test; on an assertion failure the
/// drop handler prints `replay with <VAR>=<seed>` so the exact run can
/// be reproduced via [`seed_from_env`]. Passing runs stay silent.
///
/// # Examples
///
/// ```
/// use cde_netsim::rng::{seed_from_env, SeedGuard};
///
/// let seed = seed_from_env("CDE_CHAOS_SEED", 0xC0FFEE);
/// let _guard = SeedGuard::new("CDE_CHAOS_SEED", seed);
/// // ... seeded assertions ...
/// ```
#[derive(Debug)]
pub struct SeedGuard {
    var: &'static str,
    seed: u64,
}

impl SeedGuard {
    /// Guards the current scope with the seed to print on panic.
    pub fn new(var: &'static str, seed: u64) -> SeedGuard {
        SeedGuard { var, seed }
    }

    /// The guarded seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Drop for SeedGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "seeded test failed — replay with {}={}",
                self.var, self.seed
            );
        }
    }
}

/// FNV-1a over the label bytes.
fn hash_label(label: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 finaliser as a cheap 2-input mixer.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// Samples from a discrete distribution given `(item, weight)` pairs.
///
/// Returns the index of the chosen item. Weights need not sum to one.
///
/// # Panics
///
/// Panics when `weights` is empty or all weights are zero or negative.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    assert!(total > 0.0, "weights must have positive mass");
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if x < w {
            return i;
        }
        x -= w;
    }
    // Floating point slack: return the last positive-weight index.
    weights
        .iter()
        .rposition(|w| *w > 0.0)
        .expect("positive mass checked above")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent = DetRng::seed(9);
        let mut f1 = parent.fork("x");
        let mut parent2 = DetRng::seed(9);
        let _ = parent2.next_u64(); // consume parent state
        let mut f2 = parent2.fork("x");
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn fork_labels_separate_streams() {
        let parent = DetRng::seed(9);
        assert_ne!(parent.fork("a").next_u64(), parent.fork("b").next_u64());
    }

    #[test]
    fn fork_indexed_separates_streams() {
        let parent = DetRng::seed(9);
        let mut s: Vec<u64> = (0..16)
            .map(|i| parent.fork_indexed("net", i).next_u64())
            .collect();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 16, "indexed forks must not collide");
    }

    #[test]
    fn weighted_sampling_respects_mass() {
        let mut rng = DetRng::seed(1);
        let weights = [0.0, 10.0, 0.0, 1.0];
        let mut counts = [0usize; 4];
        for _ in 0..10_000 {
            counts[sample_weighted(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        let ratio = counts[1] as f64 / counts[3] as f64;
        assert!((5.0..20.0).contains(&ratio), "ratio {ratio} not near 10");
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn weighted_sampling_rejects_zero_mass() {
        let mut rng = DetRng::seed(1);
        sample_weighted(&mut rng, &[0.0, 0.0]);
    }

    #[test]
    fn seed_from_env_prefers_the_variable() {
        // Env mutation is process-global; use a name unique to this test.
        std::env::set_var("CDE_TEST_SEED_A", "  1234 ");
        assert_eq!(seed_from_env("CDE_TEST_SEED_A", 9), 1234);
        std::env::remove_var("CDE_TEST_SEED_A");
        assert_eq!(seed_from_env("CDE_TEST_SEED_A", 9), 9);
    }

    #[test]
    #[should_panic(expected = "must be a u64")]
    fn seed_from_env_rejects_garbage() {
        std::env::set_var("CDE_TEST_SEED_B", "not-a-seed");
        let _ = seed_from_env("CDE_TEST_SEED_B", 0);
    }

    #[test]
    fn seed_guard_is_silent_on_success() {
        let guard = SeedGuard::new("CDE_TEST_SEED_C", 77);
        assert_eq!(guard.seed(), 77);
    }
}
