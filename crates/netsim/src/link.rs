//! Link models: latency distributions and packet loss.
//!
//! The timing side channel (paper §IV-B3) distinguishes cached from
//! uncached answers by response latency, so latency needs a plausible
//! stochastic model; carpet bombing (§V) reacts to per-network packet
//! loss, so loss is Bernoulli with per-country rates matching the paper's
//! measurements (Iran 11%, China ≈4%, elsewhere ≈1%).

use crate::time::SimDuration;
use rand::Rng;

/// A latency distribution for one network hop.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LatencyModel {
    /// Fixed delay.
    Constant(SimDuration),
    /// Uniform in `[low, high]`.
    Uniform {
        /// Lower bound.
        low: SimDuration,
        /// Upper bound (inclusive).
        high: SimDuration,
    },
    /// Log-normal with the given median and sigma (of the underlying
    /// normal). Internet RTTs are heavy-tailed; log-normal is the usual
    /// stand-in.
    LogNormal {
        /// Median delay (`exp(mu)`).
        median: SimDuration,
        /// Shape parameter of the underlying normal.
        sigma: f64,
    },
}

impl LatencyModel {
    /// A typical intra-continent hop: log-normal, median 20 ms.
    pub fn typical_wan() -> LatencyModel {
        LatencyModel::LogNormal {
            median: SimDuration::from_millis(20),
            sigma: 0.35,
        }
    }

    /// A fast in-datacenter hop between a load balancer and its caches.
    pub fn datacenter() -> LatencyModel {
        LatencyModel::Uniform {
            low: SimDuration::from_micros(100),
            high: SimDuration::from_micros(600),
        }
    }

    /// Draws one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { low, high } => {
                debug_assert!(low <= high);
                SimDuration::from_micros(rng.gen_range(low.as_micros()..=high.as_micros()))
            }
            LatencyModel::LogNormal { median, sigma } => {
                // Box–Muller; SmallRng has no normal distribution built in
                // and we avoid extra dependencies.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let factor = (sigma * z).exp();
                let us = (median.as_micros() as f64 * factor).round();
                SimDuration::from_micros(us.clamp(1.0, 60_000_000.0) as u64)
            }
        }
    }

    /// The distribution's median, used by analysis code to set timing
    /// thresholds.
    pub fn median(&self) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { low, high } => (*low + *high) / 2,
            LatencyModel::LogNormal { median, .. } => *median,
        }
    }
}

/// Bernoulli packet-loss model.
///
/// # Examples
///
/// ```
/// use cde_netsim::LossModel;
///
/// let lossless = LossModel::none();
/// assert_eq!(lossless.rate(), 0.0);
/// let iran = LossModel::with_rate(0.11);
/// assert!((iran.rate() - 0.11).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LossModel {
    rate: f64,
}

impl LossModel {
    /// No loss.
    pub fn none() -> LossModel {
        LossModel { rate: 0.0 }
    }

    /// Loss with probability `rate` per transmission.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is outside `[0, 1]` or NaN.
    pub fn with_rate(rate: f64) -> LossModel {
        assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "loss rate must be in [0, 1]"
        );
        LossModel { rate }
    }

    /// The per-transmission loss probability.
    pub fn rate(self) -> f64 {
        self.rate
    }

    /// Draws whether one transmission is lost.
    pub fn drops<R: Rng + ?Sized>(self, rng: &mut R) -> bool {
        self.rate > 0.0 && rng.gen::<f64>() < self.rate
    }
}

impl Default for LossModel {
    fn default() -> LossModel {
        LossModel::none()
    }
}

/// One directed network hop: a latency distribution plus a loss model.
///
/// # Examples
///
/// ```
/// use cde_netsim::{DetRng, LatencyModel, Link, LossModel, SimDuration};
///
/// let link = Link::new(LatencyModel::Constant(SimDuration::from_millis(10)), LossModel::none());
/// let mut rng = DetRng::seed(1);
/// assert_eq!(link.transmit(&mut rng), Some(SimDuration::from_millis(10)));
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Link {
    latency: LatencyModel,
    loss: LossModel,
}

impl Link {
    /// Creates a link from its two models.
    pub fn new(latency: LatencyModel, loss: LossModel) -> Link {
        Link { latency, loss }
    }

    /// A zero-latency, lossless link (useful in unit tests).
    pub fn ideal() -> Link {
        Link::new(LatencyModel::Constant(SimDuration::ZERO), LossModel::none())
    }

    /// The latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// The loss model.
    pub fn loss(&self) -> LossModel {
        self.loss
    }

    /// Attempts one transmission: `Some(delay)` on success, `None` when the
    /// packet is lost.
    pub fn transmit<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<SimDuration> {
        if self.loss.drops(rng) {
            None
        } else {
            Some(self.latency.sample(rng))
        }
    }
}

/// Per-country network profiles with the loss rates the paper measured
/// (§V: Iran 11%, China almost 4%, elsewhere around 1%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CountryProfile {
    /// 11% packet loss.
    Iran,
    /// ≈4% packet loss.
    China,
    /// ≈1% packet loss, the typical case.
    Typical,
    /// Lossless control case.
    Lossless,
}

impl CountryProfile {
    /// The loss rate the paper reports for this profile.
    pub fn loss_rate(self) -> f64 {
        match self {
            CountryProfile::Iran => 0.11,
            CountryProfile::China => 0.04,
            CountryProfile::Typical => 0.01,
            CountryProfile::Lossless => 0.0,
        }
    }

    /// A WAN link with this profile's loss rate.
    pub fn wan_link(self) -> Link {
        Link::new(
            LatencyModel::typical_wan(),
            LossModel::with_rate(self.loss_rate()),
        )
    }

    /// All profiles, for sweeps.
    pub fn all() -> [CountryProfile; 4] {
        [
            CountryProfile::Lossless,
            CountryProfile::Typical,
            CountryProfile::China,
            CountryProfile::Iran,
        ]
    }
}

impl std::fmt::Display for CountryProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CountryProfile::Iran => write!(f, "iran (11% loss)"),
            CountryProfile::China => write!(f, "china (4% loss)"),
            CountryProfile::Typical => write!(f, "typical (1% loss)"),
            CountryProfile::Lossless => write!(f, "lossless"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn constant_latency_is_exact() {
        let m = LatencyModel::Constant(SimDuration::from_millis(25));
        let mut rng = DetRng::seed(0);
        for _ in 0..8 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(25));
        }
    }

    #[test]
    fn uniform_latency_within_bounds() {
        let m = LatencyModel::Uniform {
            low: SimDuration::from_millis(5),
            high: SimDuration::from_millis(10),
        };
        let mut rng = DetRng::seed(1);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(5));
            assert!(d <= SimDuration::from_millis(10));
        }
    }

    #[test]
    fn lognormal_median_approximately_holds() {
        let m = LatencyModel::LogNormal {
            median: SimDuration::from_millis(20),
            sigma: 0.3,
        };
        let mut rng = DetRng::seed(2);
        let mut samples: Vec<u64> = (0..4001).map(|_| m.sample(&mut rng).as_micros()).collect();
        samples.sort_unstable();
        let med = samples[samples.len() / 2] as f64;
        assert!((med - 20_000.0).abs() < 2_000.0, "median {med}");
    }

    #[test]
    fn lognormal_is_positive_and_bounded() {
        let m = LatencyModel::LogNormal {
            median: SimDuration::from_millis(20),
            sigma: 2.0,
        };
        let mut rng = DetRng::seed(3);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d.as_micros() >= 1);
            assert!(d <= SimDuration::from_secs(60));
        }
    }

    #[test]
    fn loss_rate_statistics() {
        let loss = LossModel::with_rate(0.11);
        let mut rng = DetRng::seed(4);
        let n = 100_000;
        let dropped = (0..n).filter(|_| loss.drops(&mut rng)).count();
        let observed = dropped as f64 / n as f64;
        assert!((observed - 0.11).abs() < 0.01, "observed {observed}");
    }

    #[test]
    fn zero_loss_never_drops() {
        let mut rng = DetRng::seed(5);
        for _ in 0..1000 {
            assert!(!LossModel::none().drops(&mut rng));
        }
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn invalid_loss_rate_panics() {
        LossModel::with_rate(1.5);
    }

    #[test]
    fn ideal_link_is_free_and_reliable() {
        let mut rng = DetRng::seed(6);
        assert_eq!(Link::ideal().transmit(&mut rng), Some(SimDuration::ZERO));
    }

    #[test]
    fn country_profiles_match_paper() {
        assert_eq!(CountryProfile::Iran.loss_rate(), 0.11);
        assert_eq!(CountryProfile::China.loss_rate(), 0.04);
        assert_eq!(CountryProfile::Typical.loss_rate(), 0.01);
        assert_eq!(CountryProfile::Lossless.loss_rate(), 0.0);
    }

    #[test]
    fn lossy_link_sometimes_drops() {
        let link = CountryProfile::Iran.wan_link();
        let mut rng = DetRng::seed(7);
        let drops = (0..1000)
            .filter(|_| link.transmit(&mut rng).is_none())
            .count();
        assert!(drops > 50, "expected ~110 drops, got {drops}");
        assert!(drops < 200, "expected ~110 drops, got {drops}");
    }

    #[test]
    fn median_accessor_matches_model() {
        assert_eq!(
            LatencyModel::Constant(SimDuration::from_millis(9)).median(),
            SimDuration::from_millis(9)
        );
        assert_eq!(
            LatencyModel::Uniform {
                low: SimDuration::from_millis(4),
                high: SimDuration::from_millis(6)
            }
            .median(),
            SimDuration::from_millis(5)
        );
    }
}
