//! Link models: latency distributions and packet loss.
//!
//! The timing side channel (paper §IV-B3) distinguishes cached from
//! uncached answers by response latency, so latency needs a plausible
//! stochastic model; carpet bombing (§V) reacts to per-network packet
//! loss, so loss is Bernoulli with per-country rates matching the paper's
//! measurements (Iran 11%, China ≈4%, elsewhere ≈1%).

use crate::time::SimDuration;
use rand::Rng;

/// A latency distribution for one network hop.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LatencyModel {
    /// Fixed delay.
    Constant(SimDuration),
    /// Uniform in `[low, high]`.
    Uniform {
        /// Lower bound.
        low: SimDuration,
        /// Upper bound (inclusive).
        high: SimDuration,
    },
    /// Log-normal with the given median and sigma (of the underlying
    /// normal). Internet RTTs are heavy-tailed; log-normal is the usual
    /// stand-in.
    LogNormal {
        /// Median delay (`exp(mu)`).
        median: SimDuration,
        /// Shape parameter of the underlying normal.
        sigma: f64,
    },
}

impl LatencyModel {
    /// A typical intra-continent hop: log-normal, median 20 ms.
    pub fn typical_wan() -> LatencyModel {
        LatencyModel::LogNormal {
            median: SimDuration::from_millis(20),
            sigma: 0.35,
        }
    }

    /// A fast in-datacenter hop between a load balancer and its caches.
    pub fn datacenter() -> LatencyModel {
        LatencyModel::Uniform {
            low: SimDuration::from_micros(100),
            high: SimDuration::from_micros(600),
        }
    }

    /// Draws one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { low, high } => {
                debug_assert!(low <= high);
                SimDuration::from_micros(rng.gen_range(low.as_micros()..=high.as_micros()))
            }
            LatencyModel::LogNormal { median, sigma } => {
                // Box–Muller; SmallRng has no normal distribution built in
                // and we avoid extra dependencies.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let factor = (sigma * z).exp();
                let us = (median.as_micros() as f64 * factor).round();
                SimDuration::from_micros(us.clamp(1.0, 60_000_000.0) as u64)
            }
        }
    }

    /// The distribution's median, used by analysis code to set timing
    /// thresholds.
    pub fn median(&self) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { low, high } => (*low + *high) / 2,
            LatencyModel::LogNormal { median, .. } => *median,
        }
    }
}

/// Bernoulli packet-loss model.
///
/// # Examples
///
/// ```
/// use cde_netsim::LossModel;
///
/// let lossless = LossModel::none();
/// assert_eq!(lossless.rate(), 0.0);
/// let iran = LossModel::with_rate(0.11);
/// assert!((iran.rate() - 0.11).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LossModel {
    rate: f64,
}

impl LossModel {
    /// No loss.
    pub fn none() -> LossModel {
        LossModel { rate: 0.0 }
    }

    /// Loss with probability `rate` per transmission.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is outside `[0, 1]` or NaN.
    pub fn with_rate(rate: f64) -> LossModel {
        assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "loss rate must be in [0, 1]"
        );
        LossModel { rate }
    }

    /// The per-transmission loss probability.
    pub fn rate(self) -> f64 {
        self.rate
    }

    /// Draws whether one transmission is lost.
    pub fn drops<R: Rng + ?Sized>(self, rng: &mut R) -> bool {
        self.rate > 0.0 && rng.gen::<f64>() < self.rate
    }
}

impl Default for LossModel {
    fn default() -> LossModel {
        LossModel::none()
    }
}

/// Two-state Markov (Gilbert–Elliott) burst-loss model.
///
/// Real packet loss is correlated, not Bernoulli: a congestion event or a
/// route flap kills several consecutive datagrams. That matters to carpet
/// bombing (paper §V) because K back-to-back copies of one probe can all
/// die inside a single burst — uniform-loss redundancy math undercounts
/// the required K. The chain sits in a *good* or *bad* state with
/// per-packet loss `good_loss` / `bad_loss`, transitioning good→bad with
/// probability `p_enter` and bad→good with `p_exit` after each packet.
///
/// # Examples
///
/// ```
/// use cde_netsim::{DetRng, GilbertElliott};
///
/// let mut ge = GilbertElliott::bursty(0.25, 4.0);
/// assert!((ge.mean_loss() - 0.25).abs() < 1e-9);
/// assert!((ge.mean_burst_len() - 4.0).abs() < 1e-9);
/// let mut rng = DetRng::seed(7);
/// let _ = ge.drops(&mut rng);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GilbertElliott {
    p_enter: f64,
    p_exit: f64,
    good_loss: f64,
    bad_loss: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// A chain from raw parameters.
    ///
    /// # Panics
    ///
    /// Panics when any probability is outside `[0, 1]` or `p_exit` is 0
    /// (the chain would never leave the bad state).
    pub fn new(p_enter: f64, p_exit: f64, good_loss: f64, bad_loss: f64) -> GilbertElliott {
        for (name, p) in [
            ("p_enter", p_enter),
            ("p_exit", p_exit),
            ("good_loss", good_loss),
            ("bad_loss", bad_loss),
        ] {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "{name} must be in [0, 1]"
            );
        }
        assert!(p_exit > 0.0, "p_exit must be positive");
        GilbertElliott {
            p_enter,
            p_exit,
            good_loss,
            bad_loss,
            in_bad: false,
        }
    }

    /// The classic simplified model (good state lossless, bad state drops
    /// everything) parameterised by what an operator actually measures:
    /// the long-run loss rate and the mean burst length in packets.
    ///
    /// Solves the stationary distribution `π_bad = p_enter / (p_enter +
    /// p_exit) = mean_loss` with `p_exit = 1 / mean_burst`.
    ///
    /// # Panics
    ///
    /// Panics when `mean_loss` is outside `[0, 1)` or `mean_burst < 1`.
    pub fn bursty(mean_loss: f64, mean_burst: f64) -> GilbertElliott {
        assert!(
            mean_loss.is_finite() && (0.0..1.0).contains(&mean_loss),
            "mean_loss must be in [0, 1)"
        );
        assert!(
            mean_burst.is_finite() && mean_burst >= 1.0,
            "mean_burst must be >= 1 packet"
        );
        let p_exit = 1.0 / mean_burst;
        let p_enter = (p_exit * mean_loss / (1.0 - mean_loss)).min(1.0);
        GilbertElliott::new(p_enter, p_exit, 0.0, 1.0)
    }

    /// The stationary long-run loss rate.
    pub fn mean_loss(&self) -> f64 {
        let pi_bad = self.p_enter / (self.p_enter + self.p_exit);
        (1.0 - pi_bad) * self.good_loss + pi_bad * self.bad_loss
    }

    /// Mean sojourn in the bad state, in packets (`1 / p_exit`).
    pub fn mean_burst_len(&self) -> f64 {
        1.0 / self.p_exit
    }

    /// Whether the chain currently sits in the bad state.
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }

    /// Advances the chain one packet: samples loss in the current state,
    /// then transitions. Stateful — each transmitted packet must call
    /// this exactly once, in order.
    pub fn drops<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        let rate = if self.in_bad {
            self.bad_loss
        } else {
            self.good_loss
        };
        let lost = rate > 0.0 && rng.gen::<f64>() < rate;
        let flip = if self.in_bad {
            self.p_exit
        } else {
            self.p_enter
        };
        if flip > 0.0 && rng.gen::<f64>() < flip {
            self.in_bad = !self.in_bad;
        }
        lost
    }
}

/// One directed network hop: a latency distribution plus a loss model.
///
/// # Examples
///
/// ```
/// use cde_netsim::{DetRng, LatencyModel, Link, LossModel, SimDuration};
///
/// let link = Link::new(LatencyModel::Constant(SimDuration::from_millis(10)), LossModel::none());
/// let mut rng = DetRng::seed(1);
/// assert_eq!(link.transmit(&mut rng), Some(SimDuration::from_millis(10)));
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Link {
    latency: LatencyModel,
    loss: LossModel,
}

impl Link {
    /// Creates a link from its two models.
    pub fn new(latency: LatencyModel, loss: LossModel) -> Link {
        Link { latency, loss }
    }

    /// A zero-latency, lossless link (useful in unit tests).
    pub fn ideal() -> Link {
        Link::new(LatencyModel::Constant(SimDuration::ZERO), LossModel::none())
    }

    /// The latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// The loss model.
    pub fn loss(&self) -> LossModel {
        self.loss
    }

    /// Attempts one transmission: `Some(delay)` on success, `None` when the
    /// packet is lost.
    pub fn transmit<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<SimDuration> {
        if self.loss.drops(rng) {
            None
        } else {
            Some(self.latency.sample(rng))
        }
    }
}

/// Per-country network profiles with the loss rates the paper measured
/// (§V: Iran 11%, China almost 4%, elsewhere around 1%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CountryProfile {
    /// 11% packet loss.
    Iran,
    /// ≈4% packet loss.
    China,
    /// ≈1% packet loss, the typical case.
    Typical,
    /// Lossless control case.
    Lossless,
}

impl CountryProfile {
    /// The loss rate the paper reports for this profile.
    pub fn loss_rate(self) -> f64 {
        match self {
            CountryProfile::Iran => 0.11,
            CountryProfile::China => 0.04,
            CountryProfile::Typical => 0.01,
            CountryProfile::Lossless => 0.0,
        }
    }

    /// A WAN link with this profile's loss rate.
    pub fn wan_link(self) -> Link {
        Link::new(
            LatencyModel::typical_wan(),
            LossModel::with_rate(self.loss_rate()),
        )
    }

    /// All profiles, for sweeps.
    pub fn all() -> [CountryProfile; 4] {
        [
            CountryProfile::Lossless,
            CountryProfile::Typical,
            CountryProfile::China,
            CountryProfile::Iran,
        ]
    }
}

impl std::fmt::Display for CountryProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CountryProfile::Iran => write!(f, "iran (11% loss)"),
            CountryProfile::China => write!(f, "china (4% loss)"),
            CountryProfile::Typical => write!(f, "typical (1% loss)"),
            CountryProfile::Lossless => write!(f, "lossless"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn constant_latency_is_exact() {
        let m = LatencyModel::Constant(SimDuration::from_millis(25));
        let mut rng = DetRng::seed(0);
        for _ in 0..8 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(25));
        }
    }

    #[test]
    fn uniform_latency_within_bounds() {
        let m = LatencyModel::Uniform {
            low: SimDuration::from_millis(5),
            high: SimDuration::from_millis(10),
        };
        let mut rng = DetRng::seed(1);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(5));
            assert!(d <= SimDuration::from_millis(10));
        }
    }

    #[test]
    fn lognormal_median_approximately_holds() {
        let m = LatencyModel::LogNormal {
            median: SimDuration::from_millis(20),
            sigma: 0.3,
        };
        let mut rng = DetRng::seed(2);
        let mut samples: Vec<u64> = (0..4001).map(|_| m.sample(&mut rng).as_micros()).collect();
        samples.sort_unstable();
        let med = samples[samples.len() / 2] as f64;
        assert!((med - 20_000.0).abs() < 2_000.0, "median {med}");
    }

    #[test]
    fn lognormal_is_positive_and_bounded() {
        let m = LatencyModel::LogNormal {
            median: SimDuration::from_millis(20),
            sigma: 2.0,
        };
        let mut rng = DetRng::seed(3);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d.as_micros() >= 1);
            assert!(d <= SimDuration::from_secs(60));
        }
    }

    #[test]
    fn loss_rate_statistics() {
        let loss = LossModel::with_rate(0.11);
        let mut rng = DetRng::seed(4);
        let n = 100_000;
        let dropped = (0..n).filter(|_| loss.drops(&mut rng)).count();
        let observed = dropped as f64 / n as f64;
        assert!((observed - 0.11).abs() < 0.01, "observed {observed}");
    }

    #[test]
    fn zero_loss_never_drops() {
        let mut rng = DetRng::seed(5);
        for _ in 0..1000 {
            assert!(!LossModel::none().drops(&mut rng));
        }
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn invalid_loss_rate_panics() {
        LossModel::with_rate(1.5);
    }

    #[test]
    fn ideal_link_is_free_and_reliable() {
        let mut rng = DetRng::seed(6);
        assert_eq!(Link::ideal().transmit(&mut rng), Some(SimDuration::ZERO));
    }

    #[test]
    fn country_profiles_match_paper() {
        assert_eq!(CountryProfile::Iran.loss_rate(), 0.11);
        assert_eq!(CountryProfile::China.loss_rate(), 0.04);
        assert_eq!(CountryProfile::Typical.loss_rate(), 0.01);
        assert_eq!(CountryProfile::Lossless.loss_rate(), 0.0);
    }

    #[test]
    fn lossy_link_sometimes_drops() {
        let link = CountryProfile::Iran.wan_link();
        let mut rng = DetRng::seed(7);
        let drops = (0..1000)
            .filter(|_| link.transmit(&mut rng).is_none())
            .count();
        assert!(drops > 50, "expected ~110 drops, got {drops}");
        assert!(drops < 200, "expected ~110 drops, got {drops}");
    }

    #[test]
    fn gilbert_elliott_stationary_loss_matches() {
        for (loss, burst) in [(0.11, 2.0), (0.25, 4.0), (0.40, 3.0)] {
            let mut ge = GilbertElliott::bursty(loss, burst);
            let mut rng = DetRng::seed(11);
            let n = 200_000;
            let dropped = (0..n).filter(|_| ge.drops(&mut rng)).count();
            let observed = dropped as f64 / n as f64;
            assert!(
                (observed - loss).abs() < 0.02,
                "loss {loss} burst {burst}: observed {observed}"
            );
        }
    }

    #[test]
    fn gilbert_elliott_losses_come_in_bursts() {
        // Mean run length of consecutive drops must track mean_burst, and
        // be clearly longer than the ≈1/(1−p) runs of uniform loss.
        let mut ge = GilbertElliott::bursty(0.25, 5.0);
        let mut rng = DetRng::seed(12);
        let mut runs = Vec::new();
        let mut current = 0u64;
        for _ in 0..200_000 {
            if ge.drops(&mut rng) {
                current += 1;
            } else if current > 0 {
                runs.push(current);
                current = 0;
            }
        }
        let mean = runs.iter().sum::<u64>() as f64 / runs.len() as f64;
        assert!((mean - 5.0).abs() < 0.5, "mean burst {mean}, want ≈5");
    }

    #[test]
    fn gilbert_elliott_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut ge = GilbertElliott::bursty(0.3, 4.0);
            let mut rng = DetRng::seed(seed);
            (0..512).map(|_| ge.drops(&mut rng)).collect::<Vec<bool>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn gilbert_elliott_zero_loss_never_drops() {
        let mut ge = GilbertElliott::bursty(0.0, 4.0);
        let mut rng = DetRng::seed(13);
        assert!((0..10_000).all(|_| !ge.drops(&mut rng)));
        assert_eq!(ge.mean_loss(), 0.0);
    }

    #[test]
    #[should_panic(expected = "mean_burst")]
    fn gilbert_elliott_rejects_sub_packet_bursts() {
        GilbertElliott::bursty(0.2, 0.5);
    }

    #[test]
    fn median_accessor_matches_model() {
        assert_eq!(
            LatencyModel::Constant(SimDuration::from_millis(9)).median(),
            SimDuration::from_millis(9)
        );
        assert_eq!(
            LatencyModel::Uniform {
                low: SimDuration::from_millis(4),
                high: SimDuration::from_millis(6)
            }
            .median(),
            SimDuration::from_millis(5)
        );
    }
}
