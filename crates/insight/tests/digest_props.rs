//! Property tests binding the streaming digest to the exact CDF.
//!
//! The digest trades ≤`2^-SUB_BITS` relative error for lock-free
//! streaming; these properties pin that trade exactly: on any random
//! sample set, every digest percentile lands in the *same bucket* as
//! the exact `cde_analysis::Cdf` percentile (both use nearest-rank
//! `⌈p·n/100⌉`, so the digest's answer is the exact answer rounded up
//! to its bucket's edge), and merging digests is indistinguishable
//! from digesting the concatenated stream.

use cde_analysis::stats::Cdf;
use cde_insight::digest::{DigestSnapshot, RttDigest, SUB_BITS};
use proptest::prelude::*;

/// RTT-shaped samples: µs values spanning sub-bucket-exact territory
/// (< 32 µs) through multi-second tails.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..32,               // exact buckets
            32u64..2_000,           // LAN / loopback RTTs
            2_000u64..200_000,      // WAN RTTs
            200_000u64..30_000_000, // pathological tails
        ],
        1..300,
    )
}

fn digest_of(samples: &[u64]) -> DigestSnapshot {
    let d = RttDigest::new();
    for &s in samples {
        d.record(s);
    }
    d.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Digest and exact CDF agree within one bucket's relative error
    /// at every percentile — in fact the digest returns the upper edge
    /// of the exact sample's bucket.
    #[test]
    fn digest_percentiles_match_cdf_within_one_bucket(
        samples in samples(),
        p_mille in 0u64..=1000,
    ) {
        let cdf = Cdf::from_samples(samples.iter().copied());
        let snap = digest_of(&samples);
        prop_assert_eq!(snap.count(), samples.len() as u64);
        for p in [p_mille as f64 / 10.0, 0.0, 1.0, 50.0, 99.0, 100.0] {
            let exact = cdf.percentile(p);
            let approx = snap.percentile(p).expect("non-empty");
            // Same bucket ⇒ approx ≥ exact and within the bucket's
            // width: relative error ≤ 2^-SUB_BITS (+1 µs integer slack).
            prop_assert!(approx >= exact, "p{}: {} < exact {}", p, approx, exact);
            let bound = exact / (1 << SUB_BITS) + 1;
            prop_assert!(
                approx - exact <= bound,
                "p{}: digest {} vs exact {} (allowed +{})",
                p, approx, exact, bound
            );
        }
    }

    /// Merging two digests equals digesting the concatenated streams,
    /// bucket for bucket — the property that makes per-target digests
    /// roll up into campaign and platform views losslessly.
    #[test]
    fn merge_is_concatenation(a in samples(), b in samples()) {
        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(digest_of(&a).merged(&digest_of(&b)), digest_of(&concat));
    }

    /// Min/max/sum/mean survive digestion exactly (they are tracked
    /// beside the buckets, not reconstructed from them).
    #[test]
    fn moments_are_exact(samples in samples()) {
        let snap = digest_of(&samples);
        prop_assert_eq!(snap.min_us(), samples.iter().copied().min());
        prop_assert_eq!(snap.max_us(), samples.iter().copied().max());
        prop_assert_eq!(snap.sum_us(), samples.iter().sum::<u64>());
    }
}
