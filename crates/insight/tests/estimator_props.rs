//! Property tests pinning the RFC 6298 estimator's invariants.
//!
//! Three guarantees the adaptive-RTO machinery leans on:
//!
//! 1. **Bounded**: whatever the observation sequence, the RTO stays
//!    inside `[min_rto, max_rto]` — the engine's grace timeouts and the
//!    serve daemon's orphan accounting assume a bounded worst case.
//! 2. **Monotone backoff**: consecutive timeouts never *shrink* the RTO,
//!    so a dying target cannot trick the engine into retransmitting
//!    faster and faster.
//! 3. **Convergence**: on a stationary RTT stream the smoothed RTT lands
//!    on the stream's center within RFC 6298's `α = 1/8` geometric decay
//!    tolerance, and the RTO settles at `SRTT + max(G, 4·RTTVAR)`
//!    (clamped) rather than wandering.

use cde_insight::{EstimatorSnapshot, RttConfig, RttEstimator, GRANULARITY_US};
use proptest::prelude::*;
use std::time::Duration;

/// A single estimator input.
#[derive(Debug, Clone, Copy)]
enum Event {
    Rtt(u64),
    Timeout,
    Ambiguous,
}

fn events() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec(
        prop_oneof![
            // Arms repeat in lieu of weights (the vendored proptest's
            // Union draws uniformly): RTT samples dominate the mix.
            (50u64..2_000_000).prop_map(Event::Rtt),
            (50u64..2_000_000).prop_map(Event::Rtt),
            (50u64..2_000_000).prop_map(Event::Rtt),
            (50u64..2_000_000).prop_map(Event::Rtt),
            Just(Event::Timeout),
            Just(Event::Timeout),
            Just(Event::Ambiguous),
        ],
        0..200,
    )
}

fn configs() -> impl Strategy<Value = RttConfig> {
    (
        1u64..200,      // min_rto ms
        500u64..20_000, // max_rto ms
        1u64..1_000,    // initial_rto ms
        0u64..1_000,    // band ms
        1u64..30_000,   // penalty ms
        1u32..6,        // max_timeout_count
    )
        .prop_map(|(min, max, initial, band, penalty, count)| RttConfig {
            min_rto: Duration::from_millis(min),
            max_rto: Duration::from_millis(min.max(max)),
            initial_rto: Duration::from_millis(initial),
            band: Duration::from_millis(band),
            penalty: Duration::from_millis(penalty),
            max_timeout_count: count,
        })
}

fn apply(e: &mut RttEstimator, ev: Event) {
    match ev {
        Event::Rtt(us) => e.observe_rtt(us),
        Event::Timeout => e.observe_timeout(),
        Event::Ambiguous => e.observe_delivery_ambiguous(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Invariant 1: the RTO (and the exploration deadline, when one
    /// exists) never leaves `[min_rto, max_rto]`, after every single
    /// observation in any sequence under any configuration.
    #[test]
    fn rto_stays_within_bounds(config in configs(), seq in events()) {
        let mut e = RttEstimator::new(config);
        let lo = config.min_rto.as_micros() as u64;
        let hi = config.max_rto.as_micros() as u64;
        let (lo, hi) = (lo.max(1), hi.max(lo.max(1)));
        prop_assert!((lo..=hi).contains(&e.rto_us()), "initial {}", e.rto_us());
        for ev in seq {
            apply(&mut e, ev);
            prop_assert!(
                (lo..=hi).contains(&e.rto_us()),
                "{ev:?} pushed rto to {} outside [{lo}, {hi}]", e.rto_us()
            );
            if let Some(band) = e.explore_rto_us() {
                prop_assert!((lo..=hi).contains(&band), "band {band} escaped");
                prop_assert!(band < e.rto_us(), "band must undercut the rto");
            }
        }
    }

    /// Invariant 2: within any run of consecutive timeouts the RTO is
    /// non-decreasing, wherever in the sequence the run happens.
    #[test]
    fn consecutive_timeouts_back_off_monotonically(
        config in configs(),
        prefix in events(),
        run in 1usize..12,
    ) {
        let mut e = RttEstimator::new(config);
        for ev in prefix {
            apply(&mut e, ev);
        }
        let mut last = e.rto_us();
        for step in 0..run {
            e.observe_timeout();
            prop_assert!(
                e.rto_us() >= last,
                "timeout {step} shrank the rto: {} -> {}", last, e.rto_us()
            );
            last = e.rto_us();
        }
    }

    /// Invariant 3: a stationary stream (constant center ± small jitter)
    /// converges. After `k` samples the initial transient has decayed by
    /// `(7/8)^(k-1)`; with 64 samples that term is < 0.1% of the center,
    /// so the jitter amplitude dominates the tolerance.
    #[test]
    fn stationary_stream_converges_within_rfc_tolerance(
        center in 2_000u64..500_000,
        jitter_mille in 0u64..100, // jitter amplitude, ‰ of center
        seed in 0u64..1_000,
    ) {
        let mut e = RttEstimator::new(RttConfig::default());
        let amp = center * jitter_mille / 1_000;
        // Deterministic pseudo-jitter: alternating offsets within ±amp.
        let mut x = seed;
        for _ in 0..64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let off = if amp == 0 { 0 } else { x % (2 * amp + 1) };
            e.observe_rtt(center - amp + off);
        }
        let tol = amp + center / 500 + GRANULARITY_US;
        prop_assert!(
            e.srtt_us().abs_diff(center) <= tol,
            "srtt {} vs center {center} (tol {tol})", e.srtt_us()
        );
        // The settled RTO is the §2.3 formula, clamped — no drift above.
        let formula = e.srtt_us() + GRANULARITY_US.max(4 * e.rttvar_us());
        prop_assert_eq!(e.rto_us(), RttConfig::default().clamp_us(formula));
        // And rttvar tracks the jitter scale, not the center.
        prop_assert!(
            e.rttvar_us() <= 2 * amp + GRANULARITY_US,
            "rttvar {} vs amp {amp}", e.rttvar_us()
        );
    }

    /// Checkpoint fidelity: snapshot → fields → parse → restore is the
    /// identity on the estimator's learned state.
    #[test]
    fn snapshot_fields_round_trip(config in configs(), seq in events()) {
        let mut e = RttEstimator::new(config);
        for ev in seq {
            apply(&mut e, ev);
        }
        let fields = e.snapshot().snapshot_fields();
        let parsed = EstimatorSnapshot::from_snapshot_fields(&fields)
            .expect("self-written fields parse");
        prop_assert_eq!(parsed, e.snapshot(), "fields {}", fields);
        let restored = RttEstimator::from_snapshot(&parsed, config);
        prop_assert_eq!(restored, e);
    }
}
