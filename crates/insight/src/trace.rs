//! Offline analysis of telemetry JSONL traces.
//!
//! [`analyze`] reconstructs campaign spans and per-probe lifecycles
//! from the flat event stream `cde-telemetry` exports, then derives
//! the artifacts the `cde-analyze` binary renders: per-campaign
//! waterfalls, RTT percentile tables, health scorecards, and the
//! cached/uncached mode split that reproduces the live timing side
//! channel from the recorded trace alone.
//!
//! Probe lifecycle events are emitted by the engine with `campaign: 0`
//! (the engine does not know which span a probe serves); the analyzer
//! re-attributes them by timestamp to the innermost campaign span open
//! at that instant — exact for the sequential campaigns the toolkit
//! runs, and conservative (events stay unattributed) outside any span.
//!
//! The parser is deliberately line-oriented field extraction, not a
//! JSON parser: the workspace is offline and vendors no JSON
//! dependency, and the exporter writes one flat object per line with
//! `"key": value` spacing (pinned by `cde-telemetry`'s own tests).

use crate::bimodal::{split_modes, ModeSplit};
use crate::scorecard::Scorecard;
use cde_analysis::stats::Cdf;
use cde_telemetry::json;
use std::fmt::Write as _;

/// Extracts the number after `"key": ` on `line`, if present.
pub(crate) fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = line.find(&needle)? + needle.len();
    let tail = &line[at..];
    let end = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

/// Extracts the string after `"key": "` on `line`, if present.
pub(crate) fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\": \"");
    let at = line.find(&needle)? + needle.len();
    let tail = &line[at..];
    Some(&tail[..tail.find('"')?])
}

/// Extracts the boolean after `"key": ` on `line`, if present.
fn field_bool(line: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\": ");
    let at = line.find(&needle)? + needle.len();
    let tail = &line[at..];
    if tail.starts_with("true") {
        Some(true)
    } else if tail.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Everything the analyzer reconstructs for one campaign span.
#[derive(Debug, Clone, Default)]
pub struct CampaignTrace {
    /// Span id from the trace (0 for the synthetic "outside any span"
    /// bucket).
    pub id: u64,
    /// Campaign name from `campaign_begin`.
    pub name: String,
    /// Span open timestamp, µs since the hub epoch.
    pub begin_us: u64,
    /// Span close timestamp; `None` when the trace ends mid-span.
    pub end_us: Option<u64>,
    /// Planned units from `campaign_begin`.
    pub planned: u64,
    /// Units completed, from `campaign_end`.
    pub completed: u64,
    /// Units answered, from `campaign_end`.
    pub answered: u64,
    /// Units timed out, from `campaign_end`.
    pub timeouts: u64,
    /// `campaign_note` annotations, in stream order.
    pub notes: Vec<(String, u64)>,
    /// Probe attempts sent while this span was innermost.
    pub sent: u64,
    /// Retransmissions scheduled.
    pub retried: u64,
    /// Replies matched.
    pub matched: u64,
    /// Probes that exhausted every attempt.
    pub timed_out: u64,
    /// Replies rejected by correlation (stray/spoofed/duplicate).
    pub replies_dropped: u64,
    /// Telemetry events shed by the ring while this span was open.
    pub events_shed: u64,
    /// Clean RTT samples (µs): matched on the first attempt.
    pub rtt_us: Vec<u64>,
    /// Retransmit-ambiguous RTT samples (µs), kept separate so the
    /// timing channel can ignore them.
    pub ambiguous_us: Vec<u64>,
    /// Match timestamps (µs since hub epoch), for the waterfall.
    pub match_at_us: Vec<u64>,
}

impl CampaignTrace {
    /// Whether the span closed and matched at least one reply.
    pub fn completed_ok(&self) -> bool {
        self.end_us.is_some() && self.matched > 0
    }

    /// Health scorecard for this campaign.
    pub fn scorecard(&self) -> Scorecard {
        let all: Vec<u64> = self
            .rtt_us
            .iter()
            .chain(&self.ambiguous_us)
            .copied()
            .collect();
        let cdf = (!all.is_empty()).then(|| Cdf::from_samples(all.iter().copied()));
        Scorecard {
            label: if self.name.is_empty() {
                "(outside spans)".to_string()
            } else {
                self.name.clone()
            },
            sent: self.sent,
            answered: self.matched,
            retries: self.retried,
            timeouts: self.timed_out,
            replies_dropped: self.replies_dropped,
            events_shed: self.events_shed,
            rtt_samples: all.len() as u64,
            ambiguous: self.ambiguous_us.len() as u64,
            p50_us: cdf.as_ref().map_or(0, |c| c.percentile(50.0)),
            p99_us: cdf.as_ref().map_or(0, |c| c.percentile(99.0)),
        }
    }

    /// Cached/uncached mode split over the *clean* RTT samples —
    /// retransmit-ambiguous samples are excluded, exactly as the live
    /// calibrator excludes them.
    pub fn mode_split(&self) -> Option<ModeSplit> {
        split_modes(&self.rtt_us)
    }

    /// `(percentile, value_us)` rows over the clean samples.
    pub fn percentile_table(&self) -> Vec<(f64, u64)> {
        if self.rtt_us.is_empty() {
            return Vec::new();
        }
        let cdf = Cdf::from_samples(self.rtt_us.iter().copied());
        [25.0, 50.0, 75.0, 90.0, 99.0, 100.0]
            .iter()
            .map(|&p| (p, cdf.percentile(p)))
            .collect()
    }

    /// A one-line match-arrival waterfall: `width` time columns from
    /// span begin to span end, shaded by match count.
    pub fn waterfall(&self, width: usize) -> String {
        const RAMP: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
        let width = width.max(1);
        let end = self.end_us.unwrap_or_else(|| {
            self.match_at_us
                .iter()
                .copied()
                .max()
                .unwrap_or(self.begin_us)
        });
        let span = (end.saturating_sub(self.begin_us)).max(1);
        let mut cols = vec![0u64; width];
        for &at in &self.match_at_us {
            let off = at.saturating_sub(self.begin_us).min(span - 1);
            cols[(off as u128 * width as u128 / span as u128) as usize] += 1;
        }
        let peak = cols.iter().copied().max().unwrap_or(0).max(1);
        cols.iter()
            .map(|&n| {
                RAMP[(n as usize * (RAMP.len() - 1))
                    .div_ceil(peak as usize)
                    .min(RAMP.len() - 1)]
            })
            .collect()
    }
}

/// The full reconstruction of one telemetry trace.
#[derive(Debug, Clone, Default)]
pub struct TraceAnalysis {
    /// Campaign spans in open order.
    pub campaigns: Vec<CampaignTrace>,
    /// Probe activity outside any open span.
    pub orphan: CampaignTrace,
    /// Total lines in the trace.
    pub lines: u64,
    /// Lines that were not recognized events (blank, truncated, alien).
    pub unparsed: u64,
}

impl TraceAnalysis {
    /// Whether at least one campaign closed with clean RTT samples —
    /// the `cde-analyze --check` criterion.
    pub fn check(&self) -> bool {
        self.campaigns
            .iter()
            .any(|c| c.completed_ok() && !c.rtt_us.is_empty())
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} lines ({} skipped as malformed), {} campaign span(s)",
            self.lines,
            self.unparsed,
            self.campaigns.len()
        );
        let _ = writeln!(out, "{}", Scorecard::header());
        for c in &self.campaigns {
            let _ = writeln!(out, "{}", c.scorecard().render_row());
        }
        if self.orphan.sent + self.orphan.matched > 0 {
            let _ = writeln!(out, "{}", self.orphan.scorecard().render_row());
        }
        for c in &self.campaigns {
            let dur_ms = c
                .end_us
                .map(|e| (e.saturating_sub(c.begin_us)) as f64 / 1e3);
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "campaign {} {:?}: planned {}, completed {}, answered {}, timeouts {}{}",
                c.id,
                c.name,
                c.planned,
                c.completed,
                c.answered,
                c.timeouts,
                match dur_ms {
                    Some(ms) => format!(" ({ms:.1} ms)"),
                    None => " (still open)".to_string(),
                }
            );
            for (key, value) in &c.notes {
                let _ = writeln!(out, "  note {key} = {value}");
            }
            if !c.match_at_us.is_empty() {
                let _ = writeln!(out, "  waterfall |{}|", c.waterfall(48));
            }
            for (p, v) in c.percentile_table() {
                let _ = writeln!(out, "  p{p:<5} {v:>9} us");
            }
            if let Some(split) = c.mode_split() {
                let _ = writeln!(
                    out,
                    "  modes: cached {} @ ~{:.0} us | uncached {} @ ~{:.0} us \
                     (threshold {} us, separation {:.2}{})",
                    split.lower.count,
                    split.lower.mean_us,
                    split.upper.count,
                    split.upper.mean_us,
                    split.threshold_us,
                    split.separation,
                    if split.clearly_bimodal() {
                        ", bimodal"
                    } else {
                        ""
                    }
                );
            }
        }
        out
    }

    /// Machine-readable report: one flat JSON object per campaign under
    /// a `"campaigns"` array (line-oriented, greppable, parseable by
    /// the same field extraction this module uses).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"lines\": {}, \"lines_skipped\": {}, \"check\": {},\n  \"campaigns\": [\n",
            self.lines,
            self.unparsed,
            self.check()
        );
        for (i, c) in self.campaigns.iter().enumerate() {
            out.push_str("    {\"id\": ");
            let _ = write!(out, "{}", c.id);
            out.push_str(", \"name\": ");
            json::write_str(&mut out, &c.name);
            let _ = write!(
                out,
                ", \"completed_ok\": {}, \"planned\": {}, \"completed\": {}, \
                 \"answered\": {}, \"timeouts\": {}, \"scorecard\": ",
                c.completed_ok(),
                c.planned,
                c.completed,
                c.answered,
                c.timeouts
            );
            c.scorecard().write_json(&mut out);
            match c.mode_split() {
                Some(split) => {
                    let _ = write!(
                        out,
                        ", \"modes\": {{\"threshold_us\": {}, \"cached\": {}, \
                         \"uncached\": {}, \"separation\": ",
                        split.threshold_us, split.lower.count, split.upper.count
                    );
                    json::write_f64(&mut out, split.separation);
                    out.push_str("}}");
                }
                None => out.push_str(", \"modes\": null}"),
            }
            out.push_str(if i + 1 < self.campaigns.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Reconstructs campaigns and probe lifecycles from a JSONL trace.
pub fn analyze(jsonl: &str) -> TraceAnalysis {
    let mut analysis = TraceAnalysis::default();
    // Spans indexed by position in `analysis.campaigns`; `open` is the
    // stack of currently-open span positions (innermost last).
    let mut open: Vec<usize> = Vec::new();
    let mut by_id: Vec<(u64, usize)> = Vec::new();

    for line in jsonl.lines() {
        analysis.lines += 1;
        let (Some(kind), Some(at_us)) = (field_str(line, "kind"), field_u64(line, "at_us")) else {
            analysis.unparsed += u64::from(!line.trim().is_empty());
            continue;
        };
        let campaign_id = field_u64(line, "campaign").unwrap_or(0);
        match kind {
            "campaign_begin" => {
                let trace = CampaignTrace {
                    id: campaign_id,
                    name: field_str(line, "name").unwrap_or("").to_string(),
                    begin_us: at_us,
                    planned: field_u64(line, "planned").unwrap_or(0),
                    ..CampaignTrace::default()
                };
                let pos = analysis.campaigns.len();
                analysis.campaigns.push(trace);
                open.push(pos);
                by_id.push((campaign_id, pos));
            }
            "campaign_note" => {
                if let Some(&(_, pos)) = by_id.iter().rev().find(|(id, _)| *id == campaign_id) {
                    analysis.campaigns[pos].notes.push((
                        field_str(line, "key").unwrap_or("").to_string(),
                        field_u64(line, "value").unwrap_or(0),
                    ));
                }
            }
            "campaign_progress" => {}
            "campaign_end" => {
                if let Some(&(_, pos)) = by_id.iter().rev().find(|(id, _)| *id == campaign_id) {
                    let c = &mut analysis.campaigns[pos];
                    c.end_us = Some(at_us);
                    c.completed = field_u64(line, "completed").unwrap_or(0);
                    c.answered = field_u64(line, "answered").unwrap_or(0);
                    c.timeouts = field_u64(line, "timeouts").unwrap_or(0);
                    open.retain(|&p| p != pos);
                }
            }
            probe_kind => {
                // Engine-level events: attribute to the innermost open
                // span (they are emitted with campaign 0).
                let target = match open.last() {
                    Some(&pos) => &mut analysis.campaigns[pos],
                    None => &mut analysis.orphan,
                };
                match probe_kind {
                    "probe_planned" => {}
                    "probe_sent" => target.sent += 1,
                    "probe_retried" => {
                        target.retried += 1;
                        target.sent += 1;
                    }
                    "probe_matched" => {
                        target.matched += 1;
                        target.match_at_us.push(at_us);
                        let rtt = field_u64(line, "rtt_us").unwrap_or(0);
                        // Traces predating the flag have no field: treat
                        // their samples as clean, as they were then.
                        if field_bool(line, "retransmit_ambiguous").unwrap_or(false) {
                            target.ambiguous_us.push(rtt);
                        } else {
                            target.rtt_us.push(rtt);
                        }
                    }
                    "probe_timed_out" => target.timed_out += 1,
                    "reply_dropped" => target.replies_dropped += 1,
                    "events_dropped" => target.events_shed += field_u64(line, "count").unwrap_or(0),
                    _ => analysis.unparsed += 1,
                }
            }
        }
    }
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic trace: one enumeration campaign with a clean bimodal
    /// RTT population, one ambiguous sample, and some engine noise
    /// outside the span.
    fn trace() -> String {
        let mut t = String::new();
        let mut push = |line: &str| {
            t.push_str(line);
            t.push('\n');
        };
        push(r#"{"at_us": 50, "campaign": 0, "kind": "probe_sent", "token": 90, "attempt": 0}"#);
        push(
            r#"{"at_us": 100, "campaign": 1, "kind": "campaign_begin", "name": "enumerate_via_timing", "planned": 40}"#,
        );
        for i in 0..30u64 {
            let at = 200 + i * 10;
            push(&format!(
                r#"{{"at_us": {at}, "campaign": 0, "kind": "probe_sent", "token": {i}, "attempt": 0}}"#
            ));
            push(&format!(
                concat!(
                    r#"{{"at_us": {}, "campaign": 0, "kind": "probe_matched", "token": {}, "#,
                    r#""attempt": 0, "rtt_us": {}, "retransmit_ambiguous": false}}"#
                ),
                at + 400,
                i,
                400 + i * 3,
            ));
        }
        for i in 30..40u64 {
            let at = 600 + i * 10;
            push(&format!(
                r#"{{"at_us": {at}, "campaign": 0, "kind": "probe_sent", "token": {i}, "attempt": 0}}"#
            ));
            push(&format!(
                concat!(
                    r#"{{"at_us": {}, "campaign": 0, "kind": "probe_matched", "token": {}, "#,
                    r#""attempt": 0, "rtt_us": {}, "retransmit_ambiguous": false}}"#
                ),
                at + 40_000,
                i,
                40_000 + i * 17,
            ));
        }
        push(
            r#"{"at_us": 41000, "campaign": 0, "kind": "probe_retried", "token": 39, "attempt": 1}"#,
        );
        push(
            r#"{"at_us": 41500, "campaign": 0, "kind": "probe_matched", "token": 39, "attempt": 1, "rtt_us": 500, "retransmit_ambiguous": true}"#,
        );
        push(r#"{"at_us": 41600, "campaign": 0, "kind": "reply_dropped", "reason": "stray"}"#);
        push(
            r#"{"at_us": 41700, "campaign": 1, "kind": "campaign_note", "key": "slow_responses", "value": 10}"#,
        );
        push(
            r#"{"at_us": 42000, "campaign": 1, "kind": "campaign_end", "completed": 40, "answered": 41, "timeouts": 0}"#,
        );
        push(
            r#"{"at_us": 43000, "campaign": 0, "kind": "probe_timed_out", "token": 91, "attempts": 3}"#,
        );
        t
    }

    #[test]
    fn reconstructs_campaign_and_attributes_probes_by_time() {
        let a = analyze(&trace());
        assert_eq!(a.campaigns.len(), 1);
        let c = &a.campaigns[0];
        assert_eq!(c.name, "enumerate_via_timing");
        assert_eq!(c.planned, 40);
        assert_eq!(c.completed, 40);
        assert!(c.completed_ok());
        assert_eq!(c.sent, 41); // 40 firsts + 1 retry, inside the span
        assert_eq!(c.retried, 1);
        assert_eq!(c.matched, 41);
        assert_eq!(c.rtt_us.len(), 40);
        assert_eq!(c.ambiguous_us, vec![500]);
        assert_eq!(c.replies_dropped, 1);
        assert_eq!(c.notes, vec![("slow_responses".to_string(), 10)]);
        // Outside the span: the early send and the late timeout.
        assert_eq!(a.orphan.sent, 1);
        assert_eq!(a.orphan.timed_out, 1);
        assert!(a.check());
    }

    #[test]
    fn mode_split_excludes_ambiguous_and_finds_the_caches() {
        let a = analyze(&trace());
        let split = a.campaigns[0].mode_split().expect("bimodal");
        assert_eq!(split.lower.count, 30, "cached mode");
        assert_eq!(split.upper.count, 10, "uncached mode = cache count");
        assert!(split.clearly_bimodal());
    }

    #[test]
    fn renders_text_and_json() {
        let a = analyze(&trace());
        let text = a.render_text();
        assert!(text.contains("enumerate_via_timing"));
        assert!(text.contains("waterfall |"));
        assert!(text.contains("modes: cached 30"));
        let json = a.render_json();
        assert!(json.contains("\"check\": true"));
        assert!(json.contains("\"uncached\": 10"));
        // The JSON report is parseable by the same field extraction.
        let line = json
            .lines()
            .find(|l| l.contains("enumerate_via_timing"))
            .unwrap();
        assert_eq!(field_u64(line, "cached"), Some(30));
        assert_eq!(field_str(line, "name"), Some("enumerate_via_timing"));
    }

    #[test]
    fn unparsed_lines_are_counted_not_fatal() {
        let a = analyze("not json\n\n{\"at_us\": 5, \"campaign\": 0, \"kind\": \"probe_sent\", \"token\": 1, \"attempt\": 0}\n");
        assert_eq!(a.lines, 3);
        assert_eq!(a.unparsed, 1);
        assert_eq!(a.orphan.sent, 1);
        assert!(!a.check());
        assert!(a.render_text().contains("(1 skipped as malformed)"));
        assert!(a.render_json().contains("\"lines_skipped\": 1"));
    }

    #[test]
    fn traces_without_the_ambiguity_flag_stay_clean() {
        let line = "{\"at_us\": 9, \"campaign\": 0, \"kind\": \"probe_matched\", \"token\": 1, \"attempt\": 0, \"rtt_us\": 123}\n";
        let a = analyze(line);
        assert_eq!(a.orphan.rtt_us, vec![123]);
        assert!(a.orphan.ambiguous_us.is_empty());
    }

    #[test]
    fn waterfall_is_fixed_width_and_shaded() {
        let a = analyze(&trace());
        let w = a.campaigns[0].waterfall(48);
        assert_eq!(w.chars().count(), 48);
        assert!(w.chars().any(|c| c != ' '));
    }
}
