//! Cached/uncached bimodality detection for RTT distributions.
//!
//! The paper's indirect-egress channel (§IV-B3) rests on one physical
//! fact: a cache hit is answered in internal-hop time while a miss pays
//! a full upstream round trip, so the RTT distribution of a probe burst
//! against a caching platform is *bimodal* and the upper mode's
//! population counts the caches. This module finds that split without
//! any prior threshold: Otsu's method — pick the cut maximizing
//! between-class variance — run in `log2` space, where the two latency
//! modes are near-symmetric and the method is scale-free (the same
//! detector works at 400 µs vs 40 ms on loopback and at 5 ms vs 120 ms
//! across an ocean).

use crate::digest::DigestSnapshot;

/// Summary of one latency mode (one side of the split).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeStats {
    /// Samples (or digest weight) in this mode.
    pub count: u64,
    /// Weighted mean, microseconds.
    pub mean_us: f64,
    /// Smallest value in the mode, microseconds.
    pub min_us: u64,
    /// Largest value in the mode, microseconds.
    pub max_us: u64,
}

/// A two-mode split of an RTT distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeSplit {
    /// The cut: values `<= threshold_us` are the lower (cached) mode.
    pub threshold_us: u64,
    /// The fast mode — cache hits, under the paper's model.
    pub lower: ModeStats,
    /// The slow mode — upstream round trips (cache misses).
    pub upper: ModeStats,
    /// Between-class variance over total variance, in `[0, 1]`: how
    /// much of the distribution's spread the split explains. Two clean
    /// modes score near 1; a unimodal cloud scores low.
    pub separation: f64,
}

impl ModeSplit {
    /// Whether the split is decisive enough to read as two real modes.
    /// Unimodal shapes cap out well below this: the best cut of a
    /// uniform cloud explains 0.75 of its variance, of a Gaussian
    /// ≈0.64 — two genuinely separated latency modes push past 0.9.
    pub fn clearly_bimodal(&self) -> bool {
        self.separation >= 0.85 && self.lower.count > 0 && self.upper.count > 0
    }
}

fn log_us(us: u64) -> f64 {
    ((us + 1) as f64).log2()
}

fn mode_stats(points: &[(u64, u64)]) -> ModeStats {
    let count: u64 = points.iter().map(|&(_, w)| w).sum();
    let sum: f64 = points.iter().map(|&(v, w)| v as f64 * w as f64).sum();
    ModeStats {
        count,
        mean_us: if count > 0 { sum / count as f64 } else { 0.0 },
        min_us: points.first().map_or(0, |&(v, _)| v),
        max_us: points.last().map_or(0, |&(v, _)| v),
    }
}

/// Otsu's split over weighted `(value_us, weight)` points, which must be
/// sorted ascending by value with positive weights. Returns `None` when
/// there are fewer than two distinct values or no variance to explain.
pub fn split_weighted(points: &[(u64, u64)]) -> Option<ModeSplit> {
    if points.len() < 2 {
        return None;
    }
    debug_assert!(points.windows(2).all(|w| w[0].0 < w[1].0));
    let total_w: f64 = points.iter().map(|&(_, w)| w as f64).sum();
    let total_wt: f64 = points.iter().map(|&(v, w)| w as f64 * log_us(v)).sum();
    let total_wt2: f64 = points
        .iter()
        .map(|&(v, w)| w as f64 * log_us(v) * log_us(v))
        .sum();
    let mean = total_wt / total_w;
    let variance = total_wt2 / total_w - mean * mean;
    if variance <= f64::EPSILON {
        return None;
    }

    // Sweep every cut between adjacent distinct values, maximizing the
    // between-class variance w0·w1·(µ0−µ1)² (normalized weights).
    let (mut best_between, mut best_cut) = (-1.0f64, 0usize);
    let (mut w0, mut wt0) = (0.0f64, 0.0f64);
    for (cut, &(v, w)) in points.iter().enumerate().take(points.len() - 1) {
        w0 += w as f64;
        wt0 += w as f64 * log_us(v);
        let w1 = total_w - w0;
        let (mu0, mu1) = (wt0 / w0, (total_wt - wt0) / w1);
        let between = (w0 / total_w) * (w1 / total_w) * (mu0 - mu1) * (mu0 - mu1);
        if between > best_between {
            best_between = between;
            best_cut = cut;
        }
    }

    Some(ModeSplit {
        threshold_us: points[best_cut].0,
        lower: mode_stats(&points[..=best_cut]),
        upper: mode_stats(&points[best_cut + 1..]),
        separation: (best_between / variance).clamp(0.0, 1.0),
    })
}

/// Otsu's split over raw samples (microseconds, any order).
pub fn split_modes(samples: &[u64]) -> Option<ModeSplit> {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let mut points: Vec<(u64, u64)> = Vec::new();
    for v in sorted {
        match points.last_mut() {
            Some((last, w)) if *last == v => *w += 1,
            _ => points.push((v, 1)),
        }
    }
    split_weighted(&points)
}

/// Otsu's split over a streaming digest, using each occupied bucket's
/// midpoint as its representative value. Mode populations are exact
/// (bucket counts); mode means inherit the digest's ≤3.1% quantization.
pub fn split_digest(snapshot: &DigestSnapshot) -> Option<ModeSplit> {
    let points: Vec<(u64, u64)> = snapshot
        .occupied()
        .map(|(lo, hi, n)| (lo + (hi - lo) / 2, n))
        .collect();
    split_weighted(&points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::RttDigest;

    #[test]
    fn splits_two_clean_modes_exactly() {
        // 60 cache hits near 400 µs, 8 misses near 40 ms.
        let mut samples: Vec<u64> = (0..60).map(|i| 380 + i * 2).collect();
        samples.extend((0..8).map(|i| 39_000 + i * 500));
        let split = split_modes(&samples).expect("bimodal");
        assert_eq!(split.lower.count, 60);
        assert_eq!(split.upper.count, 8);
        assert!(split.threshold_us >= 498 && split.threshold_us < 39_000);
        assert!(split.separation > 0.9, "separation {}", split.separation);
        assert!(split.clearly_bimodal());
        assert!(split.lower.mean_us < 600.0 && split.upper.mean_us > 38_000.0);
    }

    #[test]
    fn unimodal_cloud_scores_low() {
        // One tight mode: any cut explains almost none of the variance.
        let samples: Vec<u64> = (0..100).map(|i| 1000 + (i * 7) % 90).collect();
        let split = split_modes(&samples).expect("has variance");
        assert!(!split.clearly_bimodal(), "separation {}", split.separation);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(split_modes(&[]).is_none());
        assert!(split_modes(&[5]).is_none());
        assert!(split_modes(&[7, 7, 7, 7]).is_none(), "zero variance");
    }

    #[test]
    fn digest_split_matches_sample_split() {
        let mut samples: Vec<u64> = (0..50).map(|i| 300 + i).collect();
        samples.extend((0..10).map(|i| 50_000 + i * 100));
        let digest = RttDigest::new();
        for &s in &samples {
            digest.record(s);
        }
        let from_samples = split_modes(&samples).unwrap();
        let from_digest = split_digest(&digest.snapshot()).unwrap();
        assert_eq!(from_digest.lower.count, from_samples.lower.count);
        assert_eq!(from_digest.upper.count, from_samples.upper.count);
        assert!((from_digest.separation - from_samples.separation).abs() < 0.05);
    }
}
