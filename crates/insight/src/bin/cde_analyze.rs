//! `cde-analyze` — offline analysis of telemetry JSONL traces.
//!
//! ```text
//! cde-analyze <trace.jsonl> [--json] [--check] [--health] [--forensics]
//! ```
//!
//! Reads the JSONL stream a campaign wrote via `--telemetry-jsonl` (or
//! `TelemetryHub::drain_jsonl`) and reports per-campaign waterfalls,
//! RTT percentile tables, health scorecards and the cached/uncached
//! mode split. `--json` emits the machine-readable report instead;
//! `--check` additionally fails (exit 1) unless at least one campaign
//! completed with clean RTT samples *and* no trace line was skipped as
//! malformed — the CI smoke criterion.
//! `--health` replays the trace through the `cde-pulse` SLO engine and
//! prints the verdict timeline the live `/v1/health` endpoint would
//! have served (instead of the standard report).
//! `--forensics` treats the input as a flight-recorder dump instead of
//! a telemetry trace: it joins probe lifecycle records with wire
//! observations and prints the per-ingress fate table (query-lost vs
//! reply-lost vs matched-late-as-stray); with `--check` it fails
//! unless the dump has its versioned header, zero skipped lines, and
//! ≥95% of unanswered probes classified.
//! Exit code 2 means the trace could not be read.

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cde-analyze <trace.jsonl> [--json] [--check] [--health] [--forensics]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut json = false;
    let mut check = false;
    let mut health = false;
    let mut forensics = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--check" => check = true,
            "--health" => health = true,
            "--forensics" => forensics = true,
            "--help" | "-h" => return usage(),
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("cde-analyze: unexpected argument {other:?}");
                return usage();
            }
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let trace = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("cde-analyze: cannot read {path}: {err}");
            return ExitCode::from(2);
        }
    };

    if health {
        let replay = cde_insight::replay_health(&trace, &cde_pulse::SloSpec::default(), 1_000);
        print!("{}", replay.render_text());
        return ExitCode::SUCCESS;
    }

    if forensics {
        let report = cde_insight::analyze_forensics(&trace);
        if json {
            print!("{}", report.render_json());
        } else {
            print!("{}", report.render_text());
        }
        if check {
            eprintln!(
                "forensics-check: {} probe(s), {} unanswered, {}/{} classified, {} line(s) skipped",
                report.totals.probes,
                report.totals.unanswered,
                report.classified(),
                report.totals.unanswered,
                report.lines_skipped
            );
            if !report.check() {
                eprintln!(
                    "forensics-check: FAIL — header missing, lines skipped, or coverage < 95%"
                );
                return ExitCode::from(1);
            }
        }
        return ExitCode::SUCCESS;
    }

    let analysis = cde_insight::analyze(&trace);
    if json {
        print!("{}", analysis.render_json());
    } else {
        print!("{}", analysis.render_text());
    }
    if check {
        let completed = analysis
            .campaigns
            .iter()
            .filter(|c| c.completed_ok())
            .count();
        let samples: usize = analysis.campaigns.iter().map(|c| c.rtt_us.len()).sum();
        eprintln!(
            "analyze-check: {} campaign(s), {completed} completed, {samples} clean rtt sample(s), \
             {} line(s) skipped",
            analysis.campaigns.len(),
            analysis.unparsed
        );
        if !analysis.check() {
            eprintln!("analyze-check: FAIL — no completed campaign with clean RTT samples");
            return ExitCode::from(1);
        }
        if analysis.unparsed > 0 {
            eprintln!(
                "analyze-check: FAIL — {} malformed line(s) skipped",
                analysis.unparsed
            );
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
