//! `cde-analyze` — offline analysis of telemetry JSONL traces.
//!
//! ```text
//! cde-analyze <trace.jsonl> [--json] [--check] [--health]
//! ```
//!
//! Reads the JSONL stream a campaign wrote via `--telemetry-jsonl` (or
//! `TelemetryHub::drain_jsonl`) and reports per-campaign waterfalls,
//! RTT percentile tables, health scorecards and the cached/uncached
//! mode split. `--json` emits the machine-readable report instead;
//! `--check` additionally fails (exit 1) unless at least one campaign
//! completed with clean RTT samples — the CI smoke criterion.
//! `--health` replays the trace through the `cde-pulse` SLO engine and
//! prints the verdict timeline the live `/v1/health` endpoint would
//! have served (instead of the standard report).
//! Exit code 2 means the trace could not be read.

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cde-analyze <trace.jsonl> [--json] [--check] [--health]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut json = false;
    let mut check = false;
    let mut health = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--check" => check = true,
            "--health" => health = true,
            "--help" | "-h" => return usage(),
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("cde-analyze: unexpected argument {other:?}");
                return usage();
            }
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let trace = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("cde-analyze: cannot read {path}: {err}");
            return ExitCode::from(2);
        }
    };

    if health {
        let replay = cde_insight::replay_health(&trace, &cde_pulse::SloSpec::default(), 1_000);
        print!("{}", replay.render_text());
        return ExitCode::SUCCESS;
    }

    let analysis = cde_insight::analyze(&trace);
    if json {
        print!("{}", analysis.render_json());
    } else {
        print!("{}", analysis.render_text());
    }
    if check {
        let completed = analysis
            .campaigns
            .iter()
            .filter(|c| c.completed_ok())
            .count();
        let samples: usize = analysis.campaigns.iter().map(|c| c.rtt_us.len()).sum();
        eprintln!(
            "analyze-check: {} campaign(s), {completed} completed, {samples} clean rtt sample(s)",
            analysis.campaigns.len()
        );
        if !analysis.check() {
            eprintln!("analyze-check: FAIL — no completed campaign with clean RTT samples");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
