//! Per-ingress (and per-campaign) health scorecards.
//!
//! A scorecard condenses one probing surface's health into the few
//! numbers an operator actually triages on — loss, retry rate, RTT
//! p50/p99, shed counts — plus a coarse letter grade. Scorecards are
//! plain data: the reactor path builds them from live digests and
//! counters, the offline analyzer from a telemetry trace, and both
//! render identically.

use crate::digest::DigestSnapshot;
use cde_telemetry::json;
use std::fmt::Write as _;

/// One row of operational health for a probing surface (an ingress, a
/// campaign, or a whole run).
#[derive(Debug, Clone, PartialEq)]
pub struct Scorecard {
    /// What the row describes (ingress address or campaign name).
    pub label: String,
    /// Probe attempts sent on the wire.
    pub sent: u64,
    /// Probes that got a matched answer.
    pub answered: u64,
    /// Retransmissions among `sent`.
    pub retries: u64,
    /// Probes that exhausted every attempt.
    pub timeouts: u64,
    /// Well-formed replies rejected by correlation (stray/spoofed/dup).
    pub replies_dropped: u64,
    /// Telemetry events shed by the ring (observability loss, not
    /// probe loss).
    pub events_shed: u64,
    /// RTT samples backing the percentiles.
    pub rtt_samples: u64,
    /// Samples flagged retransmit-ambiguous (included in percentiles,
    /// excluded from timing-channel calibration).
    pub ambiguous: u64,
    /// Median RTT, microseconds (0 when no samples).
    pub p50_us: u64,
    /// 99th-percentile RTT, microseconds (0 when no samples).
    pub p99_us: u64,
}

impl Scorecard {
    /// Builds a scorecard whose RTT columns come from a digest snapshot.
    pub fn from_digest(label: impl Into<String>, snap: &DigestSnapshot) -> Scorecard {
        Scorecard {
            label: label.into(),
            sent: 0,
            answered: snap.count(),
            retries: 0,
            timeouts: 0,
            replies_dropped: 0,
            events_shed: 0,
            rtt_samples: snap.count(),
            ambiguous: snap.ambiguous(),
            p50_us: snap.percentile(50.0).unwrap_or(0),
            p99_us: snap.percentile(99.0).unwrap_or(0),
        }
    }

    /// Fraction of probes that died without an answer.
    pub fn loss_rate(&self) -> f64 {
        let done = self.answered + self.timeouts;
        if done == 0 {
            0.0
        } else {
            self.timeouts as f64 / done as f64
        }
    }

    /// Retransmissions per attempt sent.
    pub fn retry_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.retries as f64 / self.sent as f64
        }
    }

    /// Coarse triage grade: `A` clean, `B` noisy, `C` degraded, `D`
    /// unreliable (thresholds on loss and retry rate).
    pub fn grade(&self) -> char {
        let (loss, retry) = (self.loss_rate(), self.retry_rate());
        if loss < 0.01 && retry < 0.05 {
            'A'
        } else if loss < 0.05 && retry < 0.20 {
            'B'
        } else if loss < 0.20 {
            'C'
        } else {
            'D'
        }
    }

    /// The header line matching [`render_row`](Self::render_row).
    pub fn header() -> &'static str {
        "  grade  surface               sent  answered  loss%  retry%    p50_us    p99_us  shed"
    }

    /// One aligned text row.
    pub fn render_row(&self) -> String {
        format!(
            "  {}      {:<20} {:>5} {:>9}  {:>5.1}  {:>6.1} {:>9} {:>9} {:>5}",
            self.grade(),
            self.label,
            self.sent,
            self.answered,
            self.loss_rate() * 100.0,
            self.retry_rate() * 100.0,
            self.p50_us,
            self.p99_us,
            self.replies_dropped + self.events_shed,
        )
    }

    /// Appends this scorecard as one flat JSON object (no newline).
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"label\": ");
        json::write_str(out, &self.label);
        let _ = write!(
            out,
            ", \"grade\": \"{}\", \"sent\": {}, \"answered\": {}, \"retries\": {}, \
             \"timeouts\": {}, \"replies_dropped\": {}, \"events_shed\": {}, \
             \"rtt_samples\": {}, \"ambiguous\": {}, \"p50_us\": {}, \"p99_us\": {}, \
             \"loss_rate\": ",
            self.grade(),
            self.sent,
            self.answered,
            self.retries,
            self.timeouts,
            self.replies_dropped,
            self.events_shed,
            self.rtt_samples,
            self.ambiguous,
            self.p50_us,
            self.p99_us,
        );
        json::write_f64(out, self.loss_rate());
        out.push_str(", \"retry_rate\": ");
        json::write_f64(out, self.retry_rate());
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::RttDigest;

    fn card() -> Scorecard {
        Scorecard {
            label: "192.0.2.1".into(),
            sent: 110,
            answered: 98,
            retries: 10,
            timeouts: 2,
            replies_dropped: 1,
            events_shed: 0,
            rtt_samples: 98,
            ambiguous: 3,
            p50_us: 420,
            p99_us: 39_000,
        }
    }

    #[test]
    fn rates_and_grade() {
        let c = card();
        assert!((c.loss_rate() - 0.02).abs() < 1e-9);
        assert!((c.retry_rate() - 10.0 / 110.0).abs() < 1e-9);
        assert_eq!(c.grade(), 'B');
        let clean = Scorecard {
            retries: 0,
            timeouts: 0,
            ..card()
        };
        assert_eq!(clean.grade(), 'A');
    }

    #[test]
    fn empty_surface_divides_by_nothing() {
        let c = Scorecard {
            sent: 0,
            answered: 0,
            retries: 0,
            timeouts: 0,
            rtt_samples: 0,
            ..card()
        };
        assert_eq!(c.loss_rate(), 0.0);
        assert_eq!(c.retry_rate(), 0.0);
    }

    #[test]
    fn from_digest_fills_percentiles() {
        let d = RttDigest::new();
        for us in [100u64, 200, 300, 400, 50_000] {
            d.record(us);
        }
        d.record_ambiguous(250);
        let c = Scorecard::from_digest("all", &d.snapshot());
        assert_eq!(c.rtt_samples, 6);
        assert_eq!(c.ambiguous, 1);
        assert!(c.p50_us >= 250 && c.p99_us >= 50_000);
    }

    #[test]
    fn json_row_is_flat() {
        let mut out = String::new();
        card().write_json(&mut out);
        assert!(out.starts_with("{\"label\": \"192.0.2.1\""));
        assert!(out.contains("\"grade\": \"B\""));
        assert!(out.ends_with('}'));
        assert!(!out.contains('\n'));
    }
}
