//! RFC 6298 round-trip-time estimation (Jacobson–Karels), per target.
//!
//! The reactor's retry deadlines were historically a static
//! [`RetryPolicy`]-style schedule: every probe toward every ingress waited
//! the same worst-case timeout before retransmitting. This module is the
//! estimator that replaces those fixed durations with *learned* ones —
//! the same SRTT/RTTVAR/RTO recurrence TCP uses (RFC 6298) and Unbound
//! ships for its upstream servers (see `infra_rtt` / SNIPPETS.md
//! snippet 2): smoothed RTT with a mean-deviation term, exponential
//! backoff on timeout, a penalty once a target looks dead, and an
//! exploration band so an inflated RTO can recover after the path heals.
//!
//! The estimator is *pure state* — integer microseconds, no clocks, no
//! atomics — so it can be property-tested exhaustively and serialized
//! into checkpoint files verbatim. The engine wraps it in per-ingress
//! atomic cells (`cde-engine`'s `RtoTable`) for the lock-free hot path.
//!
//! Karn's rule is the caller's contract: only feed [`observe_rtt`]
//! samples from probes answered on their *first* attempt. A reply that
//! arrives after a retransmission is ambiguous (it may answer either
//! attempt); report it via [`observe_delivery_ambiguous`] instead, which
//! clears the backoff state without polluting SRTT.
//!
//! [`observe_rtt`]: RttEstimator::observe_rtt
//! [`observe_delivery_ambiguous`]: RttEstimator::observe_delivery_ambiguous
//! [`RetryPolicy`]: https://docs.rs/cde-engine

use std::time::Duration;

/// RFC 6298's clock-granularity term `G`, in microseconds. The engine's
/// timer wheel ticks at 1 ms, so a tighter variance floor would promise
/// precision the deadlines cannot deliver.
pub const GRANULARITY_US: u64 = 1_000;

/// Bounds and tuning for an [`RttEstimator`].
///
/// Defaults follow Unbound's server-selection constants where they make
/// sense for a measurement campaign: a 50 ms RTO floor
/// (`RTT_MIN_TIMEOUT`), a 376 ms unknown-target initial RTO
/// (`UNKNOWN_SERVER_NICENESS`), a 400 ms exploration band (`RTT_BAND`)
/// and a timeout penalty once a target stops answering entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttConfig {
    /// Hard floor for the RTO: never retransmit faster than this.
    pub min_rto: Duration,
    /// Hard ceiling for the RTO (backoff and penalty clamp here).
    pub max_rto: Duration,
    /// RTO assumed for a target with no samples yet.
    pub initial_rto: Duration,
    /// Exploration band: once the backed-off RTO exceeds `srtt + band`,
    /// the owner may occasionally probe with the tighter `srtt + band`
    /// deadline to discover that the path has recovered.
    pub band: Duration,
    /// RTO floor applied after [`RttConfig::max_timeout_count`]
    /// consecutive timeouts — the target looks dead, stop hammering it.
    pub penalty: Duration,
    /// Consecutive timeouts before the penalty floor engages.
    pub max_timeout_count: u32,
}

impl Default for RttConfig {
    fn default() -> RttConfig {
        RttConfig {
            min_rto: Duration::from_millis(50),
            max_rto: Duration::from_secs(10),
            initial_rto: Duration::from_millis(376),
            band: Duration::from_millis(400),
            penalty: Duration::from_secs(10),
            max_timeout_count: 3,
        }
    }
}

impl RttConfig {
    fn min_us(&self) -> u64 {
        duration_us(self.min_rto).max(1)
    }

    fn max_us(&self) -> u64 {
        duration_us(self.max_rto).max(self.min_us())
    }

    /// Clamps a candidate RTO into `[min_rto, max_rto]` (microseconds).
    pub fn clamp_us(&self, rto_us: u64) -> u64 {
        rto_us.clamp(self.min_us(), self.max_us())
    }
}

fn duration_us(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// One target's Jacobson–Karels state: smoothed RTT, mean deviation and
/// the derived retransmission timeout, all in integer microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttEstimator {
    config: RttConfig,
    /// Smoothed RTT (`α = 1/8`); 0 until the first sample.
    srtt_us: u64,
    /// Smoothed mean deviation (`β = 1/4`).
    rttvar_us: u64,
    /// Current retransmission timeout.
    rto_us: u64,
    /// Consecutive timeouts since the last delivery.
    timeout_count: u32,
    /// Unambiguous RTT samples absorbed.
    samples: u64,
    /// Timeouts absorbed (lifetime, not consecutive).
    timeouts: u64,
}

impl RttEstimator {
    /// A fresh estimator at the config's initial RTO.
    pub fn new(config: RttConfig) -> RttEstimator {
        RttEstimator {
            config,
            srtt_us: 0,
            rttvar_us: 0,
            rto_us: config.clamp_us(duration_us(config.initial_rto)),
            timeout_count: 0,
            samples: 0,
            timeouts: 0,
        }
    }

    /// Absorbs one unambiguous RTT sample (first-attempt reply only —
    /// Karn's rule) and re-derives the RTO.
    pub fn observe_rtt(&mut self, rtt_us: u64) {
        self.samples += 1;
        self.timeout_count = 0;
        if self.samples == 1 {
            // RFC 6298 §2.2: SRTT ← R, RTTVAR ← R/2.
            self.srtt_us = rtt_us;
            self.rttvar_us = rtt_us / 2;
        } else {
            // §2.3: RTTVAR ← 3/4·RTTVAR + 1/4·|SRTT − R|,
            //       SRTT ← 7/8·SRTT + 1/8·R.
            let dev = self.srtt_us.abs_diff(rtt_us);
            self.rttvar_us = (3 * self.rttvar_us + dev) / 4;
            self.srtt_us = (7 * self.srtt_us + rtt_us) / 8;
        }
        self.rto_us = self.config.clamp_us(self.fresh_rto_us());
    }

    /// Registers a retransmission deadline expiry: exponential backoff
    /// (§5.5), plus the dead-target penalty floor once
    /// [`RttConfig::max_timeout_count`] consecutive timeouts accumulate.
    pub fn observe_timeout(&mut self) {
        self.timeouts += 1;
        self.timeout_count = self.timeout_count.saturating_add(1);
        let mut next = self.rto_us.saturating_mul(2);
        if self.timeout_count >= self.config.max_timeout_count {
            next = next.max(duration_us(self.config.penalty));
        }
        self.rto_us = self.config.clamp_us(next);
    }

    /// A delivery whose RTT is retransmit-ambiguous: the target is alive,
    /// so the backoff state clears and the RTO re-derives from the last
    /// trusted SRTT/RTTVAR — but the sample itself is discarded (Karn).
    pub fn observe_delivery_ambiguous(&mut self) {
        self.timeout_count = 0;
        self.rto_us = self.config.clamp_us(if self.samples > 0 {
            self.fresh_rto_us()
        } else {
            duration_us(self.config.initial_rto)
        });
    }

    /// `SRTT + max(G, 4·RTTVAR)` — the §2.3 RTO before clamping.
    fn fresh_rto_us(&self) -> u64 {
        self.srtt_us
            .saturating_add(GRANULARITY_US.max(4 * self.rttvar_us))
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> Duration {
        Duration::from_micros(self.rto_us)
    }

    /// Current RTO in microseconds.
    pub fn rto_us(&self) -> u64 {
        self.rto_us
    }

    /// Smoothed RTT in microseconds (0 until the first sample).
    pub fn srtt_us(&self) -> u64 {
        self.srtt_us
    }

    /// Smoothed mean deviation in microseconds.
    pub fn rttvar_us(&self) -> u64 {
        self.rttvar_us
    }

    /// Consecutive timeouts since the last delivery.
    pub fn timeout_count(&self) -> u32 {
        self.timeout_count
    }

    /// Unambiguous samples absorbed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Lifetime timeouts absorbed.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// The estimator's bounds and tuning.
    pub fn config(&self) -> RttConfig {
        self.config
    }

    /// The exploration deadline, when one applies: once backoff has
    /// pushed the RTO beyond `srtt + band`, a caller may deliberately
    /// schedule the occasional probe with this tighter deadline to test
    /// whether the path recovered. `None` while the RTO is already
    /// honest (or no sample exists to anchor the band).
    pub fn explore_rto_us(&self) -> Option<u64> {
        if self.samples == 0 {
            return None;
        }
        let banded = self
            .config
            .clamp_us(self.srtt_us.saturating_add(duration_us(self.config.band)));
        (self.rto_us > banded).then_some(banded)
    }

    /// Freezes the learned state for checkpointing.
    pub fn snapshot(&self) -> EstimatorSnapshot {
        EstimatorSnapshot {
            srtt_us: self.srtt_us,
            rttvar_us: self.rttvar_us,
            rto_us: self.rto_us,
            timeout_count: self.timeout_count,
            samples: self.samples,
            timeouts: self.timeouts,
        }
    }

    /// Rehydrates an estimator from a checkpointed snapshot; the RTO is
    /// re-clamped against `config` in case the bounds changed between
    /// runs.
    pub fn from_snapshot(snap: &EstimatorSnapshot, config: RttConfig) -> RttEstimator {
        RttEstimator {
            config,
            srtt_us: snap.srtt_us,
            rttvar_us: snap.rttvar_us,
            rto_us: config.clamp_us(snap.rto_us.max(1)),
            timeout_count: snap.timeout_count,
            samples: snap.samples,
            timeouts: snap.timeouts,
        }
    }
}

impl Default for RttEstimator {
    fn default() -> RttEstimator {
        RttEstimator::new(RttConfig::default())
    }
}

/// A frozen [`RttEstimator`] — what checkpoints persist and what the
/// engine's per-ingress table exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EstimatorSnapshot {
    /// Smoothed RTT, microseconds.
    pub srtt_us: u64,
    /// Smoothed mean deviation, microseconds.
    pub rttvar_us: u64,
    /// Current RTO, microseconds.
    pub rto_us: u64,
    /// Consecutive timeouts since the last delivery.
    pub timeout_count: u32,
    /// Unambiguous samples absorbed.
    pub samples: u64,
    /// Lifetime timeouts absorbed.
    pub timeouts: u64,
}

impl EstimatorSnapshot {
    /// Serializes as `key=value` fields on one line (no prefix), in the
    /// same style as `ProbePlan::snapshot_line`; round-trips through
    /// [`EstimatorSnapshot::from_snapshot_fields`].
    pub fn snapshot_fields(&self) -> String {
        format!(
            "srtt_us={} rttvar_us={} rto_us={} timeout_count={} samples={} timeouts={}",
            self.srtt_us,
            self.rttvar_us,
            self.rto_us,
            self.timeout_count,
            self.samples,
            self.timeouts
        )
    }

    /// Parses fields written by [`EstimatorSnapshot::snapshot_fields`].
    /// Unknown keys are ignored for forward compatibility; `None` on
    /// malformed input.
    pub fn from_snapshot_fields(fields: &str) -> Option<EstimatorSnapshot> {
        let mut snap = EstimatorSnapshot::default();
        let mut seen_rto = false;
        for field in fields.split_whitespace() {
            let (key, value) = field.split_once('=')?;
            match key {
                "srtt_us" => snap.srtt_us = value.parse().ok()?,
                "rttvar_us" => snap.rttvar_us = value.parse().ok()?,
                "rto_us" => {
                    snap.rto_us = value.parse().ok()?;
                    seen_rto = true;
                }
                "timeout_count" => snap.timeout_count = value.parse().ok()?,
                "samples" => snap.samples = value.parse().ok()?,
                "timeouts" => snap.timeouts = value.parse().ok()?,
                _ => {}
            }
        }
        seen_rto.then_some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes_per_rfc() {
        let mut e = RttEstimator::default();
        assert_eq!(e.rto(), Duration::from_millis(376), "initial niceness");
        e.observe_rtt(100_000);
        assert_eq!(e.srtt_us(), 100_000);
        assert_eq!(e.rttvar_us(), 50_000);
        // RTO = SRTT + max(G, 4·RTTVAR) = 100ms + 200ms.
        assert_eq!(e.rto_us(), 300_000);
    }

    #[test]
    fn steady_stream_tightens_the_rto_to_the_floor() {
        let mut e = RttEstimator::default();
        for _ in 0..64 {
            e.observe_rtt(800);
        }
        assert_eq!(e.srtt_us(), 800);
        // Variance decays toward zero; the G term and the floor rule.
        assert!(e.rttvar_us() < 200, "rttvar {}", e.rttvar_us());
        assert_eq!(e.rto(), Duration::from_millis(50), "clamped at min_rto");
    }

    #[test]
    fn timeouts_back_off_and_penalize() {
        let mut e = RttEstimator::default();
        e.observe_rtt(100_000); // rto = 300ms
        let mut last = e.rto_us();
        for n in 1..=6u32 {
            e.observe_timeout();
            assert!(e.rto_us() >= last, "backoff must be monotone (step {n})");
            last = e.rto_us();
        }
        // Three consecutive timeouts engage the penalty floor.
        assert_eq!(e.rto(), e.config().max_rto.min(e.config().penalty));
        assert_eq!(e.timeout_count(), 6);
        // The next delivery clears the backoff and re-derives from SRTT.
        e.observe_rtt(100_000);
        assert_eq!(e.timeout_count(), 0);
        assert!(e.rto() < Duration::from_secs(1), "rto {:?}", e.rto());
    }

    #[test]
    fn ambiguous_delivery_resets_backoff_without_sampling() {
        let mut e = RttEstimator::default();
        e.observe_rtt(10_000);
        let samples = e.samples();
        e.observe_timeout();
        e.observe_timeout();
        let backed_off = e.rto_us();
        e.observe_delivery_ambiguous();
        assert_eq!(e.samples(), samples, "Karn: no sample absorbed");
        assert_eq!(e.timeout_count(), 0);
        assert!(e.rto_us() < backed_off);
    }

    #[test]
    fn exploration_band_engages_only_after_backoff() {
        let mut e = RttEstimator::default();
        assert_eq!(e.explore_rto_us(), None, "no sample, no band");
        e.observe_rtt(30_000);
        assert_eq!(e.explore_rto_us(), None, "honest rto needs no band");
        for _ in 0..4 {
            e.observe_timeout();
        }
        let banded = e.explore_rto_us().expect("backed-off rto explores");
        assert_eq!(banded, 30_000 + 400_000);
        assert!(banded < e.rto_us());
    }

    #[test]
    fn snapshot_round_trips_through_fields() {
        let mut e = RttEstimator::default();
        for us in [5_000, 9_000, 7_500] {
            e.observe_rtt(us);
        }
        e.observe_timeout();
        let snap = e.snapshot();
        let fields = snap.snapshot_fields();
        let parsed = EstimatorSnapshot::from_snapshot_fields(&fields).expect("parse");
        assert_eq!(parsed, snap, "fields {fields}");
        let restored = RttEstimator::from_snapshot(&parsed, e.config());
        assert_eq!(restored, e);
        // Malformed and empty inputs are rejected.
        assert!(EstimatorSnapshot::from_snapshot_fields("").is_none());
        assert!(EstimatorSnapshot::from_snapshot_fields("srtt_us=x rto_us=1").is_none());
        assert!(
            EstimatorSnapshot::from_snapshot_fields("srtt_us=5").is_none(),
            "rto required"
        );
        // Unknown keys are tolerated.
        assert!(EstimatorSnapshot::from_snapshot_fields("rto_us=9 future=1").is_some());
    }

    #[test]
    fn restore_reclamps_against_new_bounds() {
        let snap = EstimatorSnapshot {
            rto_us: 60_000_000,
            ..EstimatorSnapshot::default()
        };
        let e = RttEstimator::from_snapshot(&snap, RttConfig::default());
        assert_eq!(e.rto(), RttConfig::default().max_rto);
    }
}
