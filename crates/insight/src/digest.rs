//! Streaming RTT digests: lock-free, log-bucketed (HDR-style)
//! histograms with bounded relative error, mergeable across threads
//! and runs.
//!
//! A [`RttDigest`] is a fixed array of [`BUCKETS`] atomic counters.
//! Values below [`SUB`] microseconds get one bucket each (exact); from
//! there every power-of-two octave is split into [`SUB`] linear
//! sub-buckets, so any recorded value is off from its bucket's
//! representative by at most `2^-SUB_BITS` (≈3.1%) of itself. Recording
//! is a handful of relaxed atomic adds — no locks, no allocation — which
//! is what lets the reactor record every matched probe's RTT inside its
//! event loop without disturbing the zero-alloc hot path.
//!
//! Digests are *mergeable*: bucket-wise addition of two snapshots is
//! exactly the digest of the concatenated sample streams, so per-target
//! digests roll up into per-campaign or per-platform views after the
//! fact ([`DigestSnapshot::merged`]).

use cde_telemetry::{Collector, Metric};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantization
/// error at `2^-SUB_BITS` ≈ 3.1%.
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per octave (`2^SUB_BITS`).
pub const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count: values `0..SUB` µs exact, then one group of
/// [`SUB`] sub-buckets per octave up to [`MAX_EXP`].
pub const BUCKETS: usize = 1024;

/// Largest represented exponent: values at or above `2^(MAX_EXP + 1)`
/// µs (≈ 19 hours — far beyond any DNS RTT) clamp into the top bucket.
pub const MAX_EXP: u64 = (BUCKETS as u64 / SUB) + SUB_BITS as u64 - 2;

/// Bucket index for a value in microseconds.
fn index_for(us: u64) -> usize {
    if us < SUB {
        return us as usize;
    }
    let e = 63 - u64::from(us.leading_zeros());
    if e > MAX_EXP {
        return BUCKETS - 1;
    }
    let sub = (us >> (e - u64::from(SUB_BITS))) - SUB;
    ((e - u64::from(SUB_BITS) + 1) * SUB + sub) as usize
}

/// Inclusive `(lower, upper)` bounds in microseconds of bucket `idx`.
fn bounds(idx: usize) -> (u64, u64) {
    if idx < SUB as usize {
        return (idx as u64, idx as u64);
    }
    let group = idx as u64 / SUB;
    let e = group + u64::from(SUB_BITS) - 1;
    let sub = idx as u64 % SUB;
    let width = 1u64 << (e - u64::from(SUB_BITS));
    let lower = (SUB + sub) * width;
    (lower, lower + width - 1)
}

/// A lock-free streaming histogram of round-trip times in microseconds.
///
/// `record` is wait-free (relaxed atomic adds); `snapshot` can run
/// concurrently from any thread and yields a self-contained, mergeable
/// [`DigestSnapshot`].
#[derive(Debug)]
pub struct RttDigest {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_us: AtomicU64,
    min_us: AtomicU64,
    max_us: AtomicU64,
    ambiguous: AtomicU64,
}

impl RttDigest {
    /// An empty digest.
    pub fn new() -> RttDigest {
        RttDigest {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            min_us: AtomicU64::new(u64::MAX),
            max_us: AtomicU64::new(0),
            ambiguous: AtomicU64::new(0),
        }
    }

    /// Records one RTT sample (microseconds).
    pub fn record(&self, us: u64) {
        self.buckets[index_for(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.min_us.fetch_min(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Records a sample whose attribution is uncertain — a reply matched
    /// after a retransmit, where the RTT measured from the last send may
    /// actually belong to an earlier attempt. The sample still lands in
    /// the histogram (it is a real wire observation) but the ambiguous
    /// counter lets consumers — the timing-channel calibrator above all —
    /// judge how much of the distribution to trust.
    pub fn record_ambiguous(&self, us: u64) {
        self.record(us);
        self.ambiguous.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the digest.
    pub fn snapshot(&self) -> DigestSnapshot {
        DigestSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            min_us: self.min_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            ambiguous: self.ambiguous.load(Ordering::Relaxed),
        }
    }
}

impl Default for RttDigest {
    fn default() -> Self {
        RttDigest::new()
    }
}

/// A frozen copy of an [`RttDigest`]: percentile math, merging and
/// exporter plumbing all operate on snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
    ambiguous: u64,
}

impl DigestSnapshot {
    /// An empty snapshot (the identity for [`merged`](Self::merged)).
    pub fn empty() -> DigestSnapshot {
        DigestSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
            ambiguous: 0,
        }
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples flagged retransmit-ambiguous (see
    /// [`RttDigest::record_ambiguous`]).
    pub fn ambiguous(&self) -> u64 {
        self.ambiguous
    }

    /// Sum of all samples, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Smallest sample (exact, not quantized), if any.
    pub fn min_us(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_us)
    }

    /// Largest sample (exact, not quantized), if any.
    pub fn max_us(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_us)
    }

    /// Mean RTT in microseconds, if any samples were recorded.
    pub fn mean_us(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_us as f64 / self.count as f64)
    }

    /// The `p`-th percentile (`p` in `[0, 100]`) as the upper edge of
    /// the bucket holding the rank-`⌈p·n/100⌉` sample — i.e. the same
    /// sample `cde_analysis::Cdf::percentile` would return, rounded up
    /// to its bucket boundary (≤3.1% relative error). `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.count == 0 {
            return None;
        }
        let rank = ((p * self.count as f64) / 100.0).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return Some(bounds(idx).1);
            }
        }
        Some(bounds(BUCKETS - 1).1)
    }

    /// Bucket-wise sum of two snapshots — exactly the digest of the two
    /// concatenated sample streams.
    pub fn merged(&self, other: &DigestSnapshot) -> DigestSnapshot {
        DigestSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
            count: self.count + other.count,
            sum_us: self.sum_us + other.sum_us,
            min_us: self.min_us.min(other.min_us),
            max_us: self.max_us.max(other.max_us),
            ambiguous: self.ambiguous + other.ambiguous,
        }
    }

    /// Non-empty buckets as `(lower_us, upper_us, count)` triples, in
    /// ascending order.
    pub fn occupied(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| {
                let (lo, hi) = bounds(idx);
                (lo, hi, n)
            })
    }

    /// Cumulative `(le_seconds, count)` pairs on a coarse power-of-two
    /// grid (`2^5 .. 2^25` µs, i.e. 32 µs .. ~33 s) for Prometheus
    /// histogram export; samples beyond the grid land in the implicit
    /// `+Inf` bucket.
    pub fn cumulative_seconds(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(21);
        for k in SUB_BITS as u64..=25 {
            let edge = 1u64 << k;
            let mut cum = 0u64;
            for (idx, &n) in self.buckets.iter().enumerate() {
                if bounds(idx).1 < edge {
                    cum += n;
                }
            }
            out.push((edge as f64 / 1e6, cum));
        }
        out
    }
}

/// Per-target digests, pre-built before the hot path starts so that
/// recording at match time is a single read-only map lookup plus
/// relaxed atomic adds — no locking, no insertion, no allocation.
#[derive(Debug)]
pub struct RttDigestSet {
    per_ingress: HashMap<Ipv4Addr, Arc<RttDigest>>,
}

impl RttDigestSet {
    /// Builds one digest per target ingress, up front.
    pub fn for_targets(targets: impl IntoIterator<Item = Ipv4Addr>) -> RttDigestSet {
        RttDigestSet {
            per_ingress: targets
                .into_iter()
                .map(|ip| (ip, Arc::new(RttDigest::new())))
                .collect(),
        }
    }

    /// Records one RTT sample against `ingress`. Samples for unknown
    /// ingresses (none, in practice: the set is built from the same
    /// target map the engine routes by) are dropped.
    pub fn record(&self, ingress: Ipv4Addr, us: u64, ambiguous: bool) {
        if let Some(d) = self.per_ingress.get(&ingress) {
            if ambiguous {
                d.record_ambiguous(us);
            } else {
                d.record(us);
            }
        }
    }

    /// The digest for one ingress, if tracked.
    pub fn digest(&self, ingress: Ipv4Addr) -> Option<&Arc<RttDigest>> {
        self.per_ingress.get(&ingress)
    }

    /// All tracked ingresses (unordered).
    pub fn ingresses(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.per_ingress.keys().copied()
    }

    /// Snapshots every per-ingress digest.
    pub fn snapshots(&self) -> Vec<(Ipv4Addr, DigestSnapshot)> {
        let mut out: Vec<_> = self
            .per_ingress
            .iter()
            .map(|(ip, d)| (*ip, d.snapshot()))
            .collect();
        out.sort_by_key(|(ip, _)| *ip);
        out
    }

    /// The platform-wide view: every per-ingress snapshot merged.
    pub fn merged(&self) -> DigestSnapshot {
        self.snapshots()
            .iter()
            .fold(DigestSnapshot::empty(), |acc, (_, s)| acc.merged(s))
    }
}

impl Collector for RttDigestSet {
    fn collect(&self, out: &mut Vec<Metric>) {
        for (ip, snap) in self.snapshots() {
            out.push(
                Metric::histogram(
                    "cde_insight_rtt_seconds",
                    "Per-target probe round-trip time from the reactor's streaming digest",
                    snap.cumulative_seconds(),
                    snap.sum_us() as f64 / 1e6,
                    snap.count(),
                )
                .with_label("ingress", ip.to_string()),
            );
            out.push(
                Metric::counter(
                    "cde_insight_rtt_ambiguous_total",
                    "RTT samples matched after a retransmit (attribution uncertain)",
                    snap.ambiguous(),
                )
                .with_label("ingress", ip.to_string()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB {
            assert_eq!(index_for(v), v as usize);
            assert_eq!(bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn every_value_lands_inside_its_bucket_bounds() {
        let probes = (0..60)
            .flat_map(|e: u32| {
                let base = 1u64 << e;
                [base.saturating_sub(1), base, base + 1, base + base / 3]
            })
            .chain([0, 7, 100, 12_345, 1_000_000, u64::MAX]);
        for v in probes {
            let idx = index_for(v);
            assert!(idx < BUCKETS, "{v} -> {idx}");
            let (lo, hi) = bounds(idx);
            if index_for(v) == BUCKETS - 1 && v > hi {
                continue; // clamped into the top bucket
            }
            assert!(lo <= v && v <= hi, "{v} not in [{lo}, {hi}] (idx {idx})");
            // Relative quantization error is bounded by 2^-SUB_BITS.
            assert!(hi - lo <= lo.max(1) / SUB + 1, "bucket too wide at {v}");
        }
    }

    #[test]
    fn bucket_bounds_tile_the_axis() {
        for idx in 0..BUCKETS - 1 {
            let (_, hi) = bounds(idx);
            let (lo_next, _) = bounds(idx + 1);
            assert_eq!(hi + 1, lo_next, "gap or overlap after bucket {idx}");
        }
    }

    #[test]
    fn percentiles_hit_bucket_upper_edges() {
        let d = RttDigest::new();
        for us in 1..=1000u64 {
            d.record(us);
        }
        let s = d.snapshot();
        assert_eq!(s.count(), 1000);
        // p50 sample is 500; its bucket [496, 511] upper edge is 511.
        let p50 = s.percentile(50.0).unwrap();
        assert_eq!(p50, bounds(index_for(500)).1);
        assert!((500..=516).contains(&p50), "p50 {p50}");
        assert_eq!(s.percentile(0.0), Some(bounds(index_for(1)).1));
        assert_eq!(s.percentile(100.0), Some(bounds(index_for(1000)).1));
        assert_eq!(s.min_us(), Some(1));
        assert_eq!(s.max_us(), Some(1000));
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = RttDigest::new();
        let b = RttDigest::new();
        let both = RttDigest::new();
        for v in [3u64, 40, 41, 999, 70_000] {
            a.record(v);
            both.record(v);
        }
        for v in [5u64, 40, 2_000_000] {
            b.record_ambiguous(v);
            both.record_ambiguous(v);
        }
        assert_eq!(a.snapshot().merged(&b.snapshot()), both.snapshot());
        assert_eq!(
            DigestSnapshot::empty().merged(&a.snapshot()),
            a.snapshot(),
            "empty is the merge identity"
        );
    }

    #[test]
    fn digest_set_routes_by_ingress() {
        let a = Ipv4Addr::new(192, 0, 2, 1);
        let b = Ipv4Addr::new(192, 0, 2, 2);
        let set = RttDigestSet::for_targets([a, b]);
        set.record(a, 100, false);
        set.record(a, 200, true);
        set.record(b, 50_000, false);
        set.record(Ipv4Addr::new(10, 0, 0, 1), 1, false); // untracked: dropped
        assert_eq!(set.digest(a).unwrap().count(), 2);
        assert_eq!(set.digest(a).unwrap().snapshot().ambiguous(), 1);
        assert_eq!(set.digest(b).unwrap().count(), 1);
        let merged = set.merged();
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum_us(), 50_300);
    }

    #[test]
    fn cumulative_grid_is_monotonic_and_bounded() {
        let d = RttDigest::new();
        for v in [1u64, 31, 32, 100, 5_000, 1 << 26] {
            d.record(v);
        }
        let cum = d.snapshot().cumulative_seconds();
        assert_eq!(cum.len(), 21);
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 <= w[1].1);
        }
        // The 2^26 µs sample is beyond the grid: only +Inf would hold it.
        assert_eq!(cum.last().unwrap().1, 5);
    }
}
