//! Sampled phase timers for the reactor's hot path.
//!
//! Timing every `Instant::now()` pair around every phase of every loop
//! iteration would cost more than the phases themselves; instead the
//! profiler stamps only every `sample_every`-th call per phase. The
//! unsampled path is one relaxed `fetch_add` and a modulo — cheap
//! enough to leave on in production — and because sampling is
//! systematic (not random) the per-phase mean converges on the true
//! mean for the steady-state loops the reactor runs.

use cde_telemetry::{Collector, Metric};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The six instrumented phases of one reactor loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Timer-wheel advance: cascading, shedding dead entries, expiring
    /// retransmit deadlines.
    Timers,
    /// Encoding (or patching) probe datagrams into pooled buffers.
    Encode,
    /// The `sendmmsg` batch syscall.
    SendBatch,
    /// The `recvmmsg` batch syscall.
    RecvBatch,
    /// Zero-copy wire parsing of received datagrams.
    Decode,
    /// Correlation-table lookup and anti-spoofing validation.
    Correlate,
}

/// All phases, in loop order.
pub const PHASES: [Phase; 6] = [
    Phase::Timers,
    Phase::Encode,
    Phase::SendBatch,
    Phase::RecvBatch,
    Phase::Decode,
    Phase::Correlate,
];

impl Phase {
    /// Stable label used in metrics and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Timers => "timers",
            Phase::Encode => "encode",
            Phase::SendBatch => "send_batch",
            Phase::RecvBatch => "recv_batch",
            Phase::Decode => "decode",
            Phase::Correlate => "correlate",
        }
    }
}

#[derive(Debug, Default)]
struct PhaseState {
    calls: AtomicU64,
    sampled: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// Aggregate timings for one phase, from [`PhaseProfiler::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStats {
    /// Which phase.
    pub phase: Phase,
    /// Total calls, sampled or not.
    pub calls: u64,
    /// Calls that were actually timed.
    pub sampled: u64,
    /// Summed duration of the sampled calls, nanoseconds.
    pub sum_ns: u64,
    /// Longest sampled call, nanoseconds.
    pub max_ns: u64,
}

impl PhaseStats {
    /// Mean duration of the sampled calls, if any.
    pub fn mean(&self) -> Option<Duration> {
        (self.sampled > 0).then(|| Duration::from_nanos(self.sum_ns / self.sampled))
    }
}

/// Sampled wall-clock timers for the reactor's hot-path phases.
#[derive(Debug)]
pub struct PhaseProfiler {
    sample_every: u64,
    states: [PhaseState; 6],
}

impl PhaseProfiler {
    /// A profiler timing one in `sample_every` calls per phase
    /// (`sample_every` is clamped to at least 1 = time everything).
    pub fn new(sample_every: u32) -> PhaseProfiler {
        PhaseProfiler {
            sample_every: u64::from(sample_every.max(1)),
            states: Default::default(),
        }
    }

    /// How many calls share one timed sample.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Marks a phase entry; returns a start stamp only on sampled calls.
    /// Pass the result to [`end`](Self::end) — `None` round-trips for
    /// free.
    #[inline]
    #[allow(clippy::manual_is_multiple_of)] // u64::is_multiple_of needs 1.87, MSRV is 1.81
    pub fn begin(&self, phase: Phase) -> Option<Instant> {
        let n = self.states[phase as usize]
            .calls
            .fetch_add(1, Ordering::Relaxed);
        (n % self.sample_every == 0).then(Instant::now)
    }

    /// Closes a phase opened by [`begin`](Self::begin).
    #[inline]
    pub fn end(&self, phase: Phase, started: Option<Instant>) {
        if let Some(t0) = started {
            self.record(phase, t0.elapsed());
        }
    }

    /// Records one timed observation directly (the sampled path of
    /// [`end`](Self::end); public so tests and goldens can inject
    /// deterministic durations).
    pub fn record(&self, phase: Phase, took: Duration) {
        let s = &self.states[phase as usize];
        let ns = took.as_nanos().min(u64::MAX as u128) as u64;
        s.sampled.fetch_add(1, Ordering::Relaxed);
        s.sum_ns.fetch_add(ns, Ordering::Relaxed);
        s.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Current per-phase aggregates, in loop order.
    pub fn snapshot(&self) -> Vec<PhaseStats> {
        PHASES
            .iter()
            .map(|&phase| {
                let s = &self.states[phase as usize];
                PhaseStats {
                    phase,
                    calls: s.calls.load(Ordering::Relaxed),
                    sampled: s.sampled.load(Ordering::Relaxed),
                    sum_ns: s.sum_ns.load(Ordering::Relaxed),
                    max_ns: s.max_ns.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

impl Collector for PhaseProfiler {
    fn collect(&self, out: &mut Vec<Metric>) {
        for stats in self.snapshot() {
            let label = stats.phase.as_str();
            out.push(
                Metric::counter(
                    "cde_insight_phase_calls_total",
                    "Hot-path phase entries (sampled or not)",
                    stats.calls,
                )
                .with_label("phase", label),
            );
            out.push(
                Metric::counter(
                    "cde_insight_phase_sampled_total",
                    "Hot-path phase entries that were wall-clock timed",
                    stats.sampled,
                )
                .with_label("phase", label),
            );
            out.push(
                Metric::counter(
                    "cde_insight_phase_us_total",
                    "Summed duration of the timed phase entries, microseconds",
                    stats.sum_ns / 1_000,
                )
                .with_label("phase", label),
            );
            out.push(
                Metric::gauge(
                    "cde_insight_phase_max_seconds",
                    "Longest timed entry seen for this phase",
                    stats.max_ns as f64 / 1e9,
                )
                .with_label("phase", label),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_one_in_n() {
        let p = PhaseProfiler::new(4);
        let mut sampled = 0;
        for _ in 0..16 {
            let t = p.begin(Phase::Decode);
            sampled += usize::from(t.is_some());
            p.end(Phase::Decode, t);
        }
        assert_eq!(sampled, 4);
        let snap = p.snapshot();
        let decode = snap.iter().find(|s| s.phase == Phase::Decode).unwrap();
        assert_eq!((decode.calls, decode.sampled), (16, 4));
        // Untouched phases stay zeroed.
        let encode = snap.iter().find(|s| s.phase == Phase::Encode).unwrap();
        assert_eq!((encode.calls, encode.sampled), (0, 0));
    }

    #[test]
    fn record_accumulates_sum_and_max() {
        let p = PhaseProfiler::new(1);
        p.record(Phase::SendBatch, Duration::from_micros(10));
        p.record(Phase::SendBatch, Duration::from_micros(30));
        let snap = p.snapshot();
        let sb = snap.iter().find(|s| s.phase == Phase::SendBatch).unwrap();
        assert_eq!(sb.sum_ns, 40_000);
        assert_eq!(sb.max_ns, 30_000);
        assert_eq!(sb.mean(), Some(Duration::from_micros(20)));
    }

    #[test]
    fn zero_sample_rate_clamps_to_one() {
        let p = PhaseProfiler::new(0);
        assert!(p.begin(Phase::Encode).is_some());
        assert!(p.begin(Phase::Encode).is_some());
    }
}
