//! Loss forensics: reconcile a flight-recorder dump into per-probe
//! fates (`cde-analyze --forensics`).
//!
//! The paper's enumeration math reads `ω < q` two opposite ways: a
//! probe whose *query* died never touched the authority (the cache
//! stayed cold — the coupon was never drawn), while a probe whose
//! *reply* died warmed the cache invisibly (the coupon was drawn but
//! never observed). Aggregate loss counters cannot tell the two apart;
//! this module can, by joining the engine's probe lifecycle records
//! with the fault-layer wire observations the same flight rings carry:
//!
//! * A `query_dropped` wire record with a probe's token proves the
//!   query died outbound → **query-lost** (cold cache).
//! * A `reply_dropped` wire record (joined by token, or by query id
//!   when the drop could not be correlated) proves the serving chain
//!   answered → **reply-lost** (warm cache).
//! * A `stray_reply` whose query id matches a timed-out probe's last
//!   attempt proves the answer arrived *after* the deadline →
//!   **matched-late-as-stray** (warm, and nearly observed).
//!
//! Token joins are exact; query-id joins are 16-bit and therefore
//! heuristic — they rank below token joins and a stray must postdate
//! the probe's last send to count. Reply evidence outranks query
//! evidence: if any attempt's query reached the serving chain the
//! cache is warm, no matter how many earlier attempts died outbound.

use crate::trace::{field_str, field_u64};
use cde_telemetry::json;
use std::fmt::Write as _;

/// One parsed `flight_record` line.
#[derive(Debug, Clone)]
pub struct DumpRecord {
    /// Probe token; `None` for uncorrelated wire observations.
    pub token: Option<u64>,
    /// Target ingress (probe records) or reply source (wire records).
    pub ingress: String,
    /// Shard that wrote the record.
    pub shard: u64,
    /// Send attempts made when the record was written.
    pub attempts: u64,
    /// Disposition name as dumped (`answered`, `timed_out`, ...).
    pub disposition: String,
    /// Timestamps (µs since the recorder epoch; 0 = never happened).
    pub recorded_at_us: u64,
    /// When the last attempt hit the wire.
    pub sent_at_us: u64,
    /// When a matching reply correlated.
    pub matched_at_us: u64,
    /// When the final deadline gave up.
    pub expired_at_us: u64,
    /// Deadline armed for the last attempt, µs.
    pub rto_us: u64,
    /// Datagram size on the wire, bytes.
    pub wire_size: u64,
    /// DNS query id of the last attempt.
    pub qid: u64,
}

/// A parsed flight dump: header + records, with exact skip accounting.
#[derive(Debug, Clone, Default)]
pub struct FlightDump {
    /// `flight_version` from the header (0 when the header is missing).
    pub version: u64,
    /// Shard rings merged into the dump.
    pub shards: u64,
    /// Slots per shard ring.
    pub capacity_per_shard: u64,
    /// Records ever written across shards.
    pub written: u64,
    /// Records overwritten unread (drop-oldest sheds) — probes older
    /// than the rings can ever be explained, and the header says
    /// exactly how many.
    pub shed: u64,
    /// Whether a `flight_header` line was present.
    pub has_header: bool,
    /// Total lines in the artifact.
    pub lines: u64,
    /// Non-empty lines that were not a parseable header or record.
    pub lines_skipped: u64,
    /// Every parsed record, in dump order.
    pub records: Vec<DumpRecord>,
}

/// Parses the versioned JSONL artifact `FlightRecorder::render_jsonl`
/// emits. Malformed lines are counted in
/// [`lines_skipped`](FlightDump::lines_skipped), never silently eaten.
pub fn parse_dump(jsonl: &str) -> FlightDump {
    let mut dump = FlightDump::default();
    for line in jsonl.lines() {
        dump.lines += 1;
        match field_str(line, "kind") {
            Some("flight_header") => {
                dump.has_header = true;
                dump.version = field_u64(line, "flight_version").unwrap_or(0);
                dump.shards = field_u64(line, "shards").unwrap_or(0);
                dump.capacity_per_shard = field_u64(line, "capacity_per_shard").unwrap_or(0);
                dump.written = field_u64(line, "written").unwrap_or(0);
                dump.shed = field_u64(line, "shed").unwrap_or(0);
            }
            Some("flight_record") => {
                let (Some(ingress), Some(disposition), Some(recorded_at_us)) = (
                    field_str(line, "ingress"),
                    field_str(line, "disposition"),
                    field_u64(line, "recorded_at_us"),
                ) else {
                    dump.lines_skipped += 1;
                    continue;
                };
                dump.records.push(DumpRecord {
                    token: field_u64(line, "token"),
                    ingress: ingress.to_string(),
                    shard: field_u64(line, "shard").unwrap_or(0),
                    attempts: field_u64(line, "attempts").unwrap_or(0),
                    disposition: disposition.to_string(),
                    recorded_at_us,
                    sent_at_us: field_u64(line, "sent_at_us").unwrap_or(0),
                    matched_at_us: field_u64(line, "matched_at_us").unwrap_or(0),
                    expired_at_us: field_u64(line, "expired_at_us").unwrap_or(0),
                    rto_us: field_u64(line, "rto_us").unwrap_or(0),
                    wire_size: field_u64(line, "wire_size").unwrap_or(0),
                    qid: field_u64(line, "qid").unwrap_or(0),
                });
            }
            _ => dump.lines_skipped += u64::from(!line.trim().is_empty()),
        }
    }
    dump
}

/// Per-ingress probe fates. `unanswered` counts timed-out probes; the
/// three loss classes partition however many of them the wire
/// observations could explain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FateRow {
    /// Target ingress the probes were aimed at.
    pub ingress: String,
    /// Probe lifecycle records (wire observations not included).
    pub probes: u64,
    /// Matched a reply with a useful rcode.
    pub answered: u64,
    /// Matched a reply carrying REFUSED.
    pub refused: u64,
    /// Exhausted every attempt with no matching reply.
    pub unanswered: u64,
    /// Unanswered, and the query provably died outbound (cold cache).
    pub query_lost: u64,
    /// Unanswered, and a reply provably died inbound (warm cache).
    pub reply_lost: u64,
    /// Unanswered, but the answer arrived after the deadline and
    /// landed as a stray (warm cache, nearly observed).
    pub late_stray: u64,
    /// Never sent: no socket route to the ingress.
    pub unroutable: u64,
    /// Unanswered with no wire evidence either way.
    pub unknown: u64,
}

impl FateRow {
    fn absorb(&mut self, other: &FateRow) {
        self.probes += other.probes;
        self.answered += other.answered;
        self.refused += other.refused;
        self.unanswered += other.unanswered;
        self.query_lost += other.query_lost;
        self.reply_lost += other.reply_lost;
        self.late_stray += other.late_stray;
        self.unroutable += other.unroutable;
        self.unknown += other.unknown;
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"ingress\": ");
        json::write_str(out, &self.ingress);
        let _ = write!(
            out,
            ", \"probes\": {}, \"answered\": {}, \"refused\": {}, \
             \"unanswered\": {}, \"query_lost\": {}, \"reply_lost\": {}, \
             \"late_stray\": {}, \"unroutable\": {}, \"unknown\": {}}}",
            self.probes,
            self.answered,
            self.refused,
            self.unanswered,
            self.query_lost,
            self.reply_lost,
            self.late_stray,
            self.unroutable,
            self.unknown,
        );
    }
}

/// The reconciled forensics report.
#[derive(Debug, Clone, Default)]
pub struct Forensics {
    /// The parsed dump header and skip accounting.
    pub dump_version: u64,
    /// Shard rings merged into the dump.
    pub shards: u64,
    /// Records ever written.
    pub written: u64,
    /// Records shed unread — unexplainable by construction.
    pub shed: u64,
    /// Whether the artifact carried its versioned header.
    pub has_header: bool,
    /// Malformed lines skipped during parsing.
    pub lines_skipped: u64,
    /// Per-ingress fate rows, sorted by ingress.
    pub rows: Vec<FateRow>,
    /// Sum over every row.
    pub totals: FateRow,
    /// `stray_reply` wire observations in the dump.
    pub strays: u64,
    /// `query_dropped` wire observations in the dump.
    pub wire_query_drops: u64,
    /// `reply_dropped` wire observations in the dump.
    pub wire_reply_drops: u64,
}

impl Forensics {
    /// Unanswered probes the wire evidence explained.
    pub fn classified(&self) -> u64 {
        self.totals.query_lost + self.totals.reply_lost + self.totals.late_stray
    }

    /// Fraction of unanswered probes explained (1.0 when none timed
    /// out) — the e2e acceptance criterion gates this at ≥ 0.95.
    pub fn coverage(&self) -> f64 {
        if self.totals.unanswered == 0 {
            return 1.0;
        }
        self.classified() as f64 / self.totals.unanswered as f64
    }

    /// The `--forensics --check` criterion: a versioned header, no
    /// skipped lines, and ≥95% of unanswered probes explained.
    pub fn check(&self) -> bool {
        self.has_header && self.lines_skipped == 0 && self.coverage() >= 0.95
    }

    /// Human-readable fate table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight dump: version {}, {} shard(s), {} written, {} shed, {} line(s) skipped",
            self.dump_version, self.shards, self.written, self.shed, self.lines_skipped
        );
        let _ = writeln!(
            out,
            "wire observations: {} query_dropped, {} reply_dropped, {} stray",
            self.wire_query_drops, self.wire_reply_drops, self.strays
        );
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>9} {:>8} {:>11} {:>11} {:>11} {:>11} {:>11} {:>8}",
            "ingress",
            "probes",
            "answered",
            "refused",
            "unanswered",
            "query_lost",
            "reply_lost",
            "late_stray",
            "unroutable",
            "unknown"
        );
        for row in self.rows.iter().chain(std::iter::once(&self.totals)) {
            let _ = writeln!(
                out,
                "{:<16} {:>7} {:>9} {:>8} {:>11} {:>11} {:>11} {:>11} {:>11} {:>8}",
                if row.ingress.is_empty() {
                    "TOTAL"
                } else {
                    &row.ingress
                },
                row.probes,
                row.answered,
                row.refused,
                row.unanswered,
                row.query_lost,
                row.reply_lost,
                row.late_stray,
                row.unroutable,
                row.unknown
            );
        }
        let _ = writeln!(
            out,
            "unanswered coverage: {}/{} classified ({:.1}%)",
            self.classified(),
            self.totals.unanswered,
            self.coverage() * 100.0
        );
        out
    }

    /// Machine-readable report (line-oriented, parseable by the same
    /// field extraction the analyzer uses).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"flight_version\": {}, \"shards\": {}, \"written\": {}, \"shed\": {}, \
             \"lines_skipped\": {},\n  \"query_lost\": {}, \"reply_lost\": {}, \
             \"late_stray\": {}, \"unknown\": {}, \"coverage\": ",
            self.dump_version,
            self.shards,
            self.written,
            self.shed,
            self.lines_skipped,
            self.totals.query_lost,
            self.totals.reply_lost,
            self.totals.late_stray,
            self.totals.unknown,
        );
        json::write_f64(&mut out, self.coverage());
        let _ = write!(out, ", \"check\": {},\n  \"rows\": [\n", self.check());
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    ");
            row.write_json(&mut out);
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"totals\": ");
        self.totals.write_json(&mut out);
        out.push_str("\n}\n");
        out
    }
}

/// Joins probe lifecycle records with wire observations and classifies
/// every unanswered probe. See the module docs for the evidence
/// ranking.
pub fn reconcile(dump: &FlightDump) -> Forensics {
    let mut forensics = Forensics {
        dump_version: dump.version,
        shards: dump.shards,
        written: dump.written,
        shed: dump.shed,
        has_header: dump.has_header,
        lines_skipped: dump.lines_skipped,
        ..Forensics::default()
    };

    // Index the wire observations.
    let mut query_drop_tokens: Vec<u64> = Vec::new();
    let mut reply_drop_tokens: Vec<u64> = Vec::new();
    let mut reply_drop_qids: Vec<u64> = Vec::new();
    let mut stray_qids: Vec<(u64, u64)> = Vec::new(); // (qid, recorded_at_us)
    for rec in &dump.records {
        match rec.disposition.as_str() {
            "query_dropped" => {
                forensics.wire_query_drops += 1;
                if let Some(token) = rec.token {
                    query_drop_tokens.push(token);
                }
            }
            "reply_dropped" => {
                forensics.wire_reply_drops += 1;
                match rec.token {
                    Some(token) => reply_drop_tokens.push(token),
                    None => reply_drop_qids.push(rec.qid),
                }
            }
            "stray_reply" => {
                forensics.strays += 1;
                stray_qids.push((rec.qid, rec.recorded_at_us));
            }
            _ => {}
        }
    }

    let mut rows: Vec<FateRow> = Vec::new();
    for rec in &dump.records {
        let fate = match rec.disposition.as_str() {
            "answered" => |row: &mut FateRow| row.answered += 1,
            "refused" => |row: &mut FateRow| row.refused += 1,
            "unroutable" => |row: &mut FateRow| row.unroutable += 1,
            "timed_out" => {
                let token = rec.token.unwrap_or(u64::MAX);
                // Evidence ranking: exact token joins first, reply
                // evidence over query evidence, heuristic qid joins
                // last.
                if reply_drop_tokens.contains(&token) {
                    |row: &mut FateRow| row.reply_lost += 1
                } else if stray_qids
                    .iter()
                    .any(|&(qid, at)| qid == rec.qid && at >= rec.sent_at_us)
                {
                    |row: &mut FateRow| row.late_stray += 1
                } else if reply_drop_qids.contains(&rec.qid) {
                    |row: &mut FateRow| row.reply_lost += 1
                } else if query_drop_tokens.contains(&token) {
                    |row: &mut FateRow| row.query_lost += 1
                } else {
                    |row: &mut FateRow| row.unknown += 1
                }
            }
            _ => continue, // wire observations are not probes
        };
        let row = match rows.iter_mut().find(|r| r.ingress == rec.ingress) {
            Some(row) => row,
            None => {
                rows.push(FateRow {
                    ingress: rec.ingress.clone(),
                    ..FateRow::default()
                });
                rows.last_mut().expect("just pushed")
            }
        };
        row.probes += 1;
        if rec.disposition == "timed_out" {
            row.unanswered += 1;
        }
        fate(row);
    }
    rows.sort_by(|a, b| a.ingress.cmp(&b.ingress));
    for row in &rows {
        forensics.totals.absorb(row);
    }
    forensics.rows = rows;
    forensics
}

/// Parse + reconcile in one call — what `cde-analyze --forensics` runs.
pub fn analyze_forensics(jsonl: &str) -> Forensics {
    reconcile(&parse_dump(jsonl))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(written: u64, shed: u64) -> String {
        format!(
            "{{\"kind\": \"flight_header\", \"flight_version\": 1, \"shards\": 1, \
             \"capacity_per_shard\": 64, \"written\": {written}, \"shed\": {shed}, \
             \"records\": {written}}}"
        )
    }

    fn probe(token: u64, disposition: &str, qid: u64) -> String {
        format!(
            "{{\"kind\": \"flight_record\", \"token\": {token}, \"ingress\": \"192.0.2.1\", \
             \"shard\": 0, \"attempts\": 1, \"disposition\": \"{disposition}\", \
             \"recorded_at_us\": 900, \"sent_at_us\": 100, \"matched_at_us\": 0, \
             \"expired_at_us\": 900, \"rto_us\": 150000, \"wire_size\": 33, \"qid\": {qid}}}"
        )
    }

    fn wire(token: Option<u64>, disposition: &str, qid: u64, at: u64) -> String {
        let token = token.map_or("null".to_string(), |t| t.to_string());
        format!(
            "{{\"kind\": \"flight_record\", \"token\": {token}, \"ingress\": \"127.0.0.1\", \
             \"shard\": 0, \"attempts\": 1, \"disposition\": \"{disposition}\", \
             \"recorded_at_us\": {at}, \"sent_at_us\": 0, \"matched_at_us\": 0, \
             \"expired_at_us\": 0, \"rto_us\": 0, \"wire_size\": 33, \"qid\": {qid}}}"
        )
    }

    #[test]
    fn parses_header_records_and_counts_malformed_lines() {
        let text = format!(
            "{}\n{}\ngarbage\n\n{}\n",
            header(2, 0),
            probe(1, "answered", 41),
            "{\"kind\": \"flight_record\", \"token\": 9}" // no disposition
        );
        let dump = parse_dump(&text);
        assert!(dump.has_header);
        assert_eq!(dump.version, 1);
        assert_eq!(dump.written, 2);
        assert_eq!(dump.records.len(), 1);
        assert_eq!(dump.lines, 5);
        assert_eq!(dump.lines_skipped, 2, "garbage + truncated record");
        assert_eq!(dump.records[0].token, Some(1));
    }

    #[test]
    fn null_token_parses_as_uncorrelated() {
        let dump = parse_dump(&format!("{}\n", wire(None, "stray_reply", 7, 950)));
        assert_eq!(dump.records[0].token, None);
    }

    #[test]
    fn classifies_by_evidence_ranking() {
        let text = [
            header(8, 0),
            probe(1, "answered", 10),
            probe(2, "timed_out", 20), // query_dropped by token
            wire(Some(2), "query_dropped", 20, 150),
            probe(3, "timed_out", 30), // reply_dropped by token
            wire(Some(3), "reply_dropped", 30, 400),
            probe(4, "timed_out", 40), // stray with same qid, late
            wire(None, "stray_reply", 40, 950),
            probe(5, "timed_out", 50), // nothing: unknown
            probe(6, "refused", 60),
            // Token 7: query dropped *and* reply dropped — warm wins.
            probe(7, "timed_out", 70),
            wire(Some(7), "query_dropped", 70, 100),
            wire(Some(7), "reply_dropped", 71, 600),
        ]
        .join("\n");
        let f = analyze_forensics(&text);
        assert_eq!(f.totals.probes, 7);
        assert_eq!(f.totals.answered, 1);
        assert_eq!(f.totals.refused, 1);
        assert_eq!(f.totals.unanswered, 5);
        assert_eq!(f.totals.query_lost, 1);
        assert_eq!(f.totals.reply_lost, 2, "token joins, incl. warm-wins");
        assert_eq!(f.totals.late_stray, 1);
        assert_eq!(f.totals.unknown, 1);
        assert_eq!(f.classified(), 4);
        assert!((f.coverage() - 0.8).abs() < 1e-9);
        assert!(!f.check(), "80% coverage is below the 95% bar");
        assert_eq!(f.wire_query_drops, 2);
        assert_eq!(f.wire_reply_drops, 2);
        assert_eq!(f.strays, 1);
    }

    #[test]
    fn full_coverage_passes_check_and_renders() {
        let text = [
            header(4, 0),
            probe(1, "answered", 10),
            probe(2, "timed_out", 20),
            wire(Some(2), "query_dropped", 20, 150),
            probe(3, "timed_out", 30),
            wire(Some(3), "reply_dropped", 30, 400),
        ]
        .join("\n");
        let f = analyze_forensics(&text);
        assert!(f.check());
        let rendered = f.render_text();
        assert!(rendered.contains("192.0.2.1"));
        assert!(rendered.contains("TOTAL"));
        assert!(rendered.contains("coverage: 2/2 classified (100.0%)"));
        let js = f.render_json();
        assert!(js.contains("\"check\": true"));
        assert!(js.contains("\"query_lost\": 1"));
        let row_line = js.lines().find(|l| l.contains("192.0.2.1")).unwrap();
        assert_eq!(field_u64(row_line, "reply_lost"), Some(1));
    }

    #[test]
    fn skipped_lines_fail_check() {
        let text = format!("{}\nnot json\n{}\n", header(1, 0), probe(1, "answered", 5));
        let f = analyze_forensics(&text);
        assert_eq!(f.lines_skipped, 1);
        assert!(!f.check());
    }

    #[test]
    fn missing_header_fails_check() {
        let f = analyze_forensics(&format!("{}\n", probe(1, "answered", 5)));
        assert!(!f.has_header);
        assert!(!f.check());
    }

    #[test]
    fn early_stray_does_not_count_as_late_match() {
        // A stray recorded *before* the probe's last send shares a qid
        // by collision, not causation.
        let text = [
            header(2, 0),
            probe(2, "timed_out", 20),
            wire(None, "stray_reply", 20, 50), // probe sent at 100
        ]
        .join("\n");
        let f = analyze_forensics(&text);
        assert_eq!(f.totals.late_stray, 0);
        assert_eq!(f.totals.unknown, 1);
    }
}
