//! **cde-insight** — latency intelligence for the measurement stack.
//!
//! The paper's indirect-egress channel (§IV-B3) turns response *latency*
//! into a cache counter: hits answer in internal-hop time, misses pay an
//! upstream round trip, and the slow mode's population is the number of
//! caches. This crate is the latency layer that makes that channel — and
//! the engine's own performance — inspectable:
//!
//! * [`digest`] — [`RttDigest`]: lock-free, log-bucketed (HDR-style)
//!   streaming histograms with ≤3.1% relative error, mergeable across
//!   threads and runs; [`RttDigestSet`] keys them by target ingress and
//!   exports Prometheus histogram series through `cde-telemetry`'s
//!   `MetricsRegistry`.
//! * [`phase`] — [`PhaseProfiler`]: sampled wall-clock timers for the
//!   reactor's hot-path phases (encode / send-batch / recv-batch /
//!   decode / correlate), cheap enough to leave on without disturbing
//!   the zero-alloc invariant or the bench numbers.
//! * [`estimator`] — [`RttEstimator`]: RFC 6298 Jacobson–Karels
//!   SRTT/RTTVAR/RTO per target with timeout backoff, a dead-target
//!   penalty and an exploration band (Unbound's server-selection
//!   constants); pure integer state the engine wraps in atomic
//!   per-ingress cells and checkpoints serialize verbatim.
//! * [`bimodal`] — Otsu's method in log space: splits an RTT
//!   distribution into cached/uncached modes with a separation score.
//! * [`scorecard`] — per-ingress / per-campaign health rows (loss,
//!   retry rate, p50/p99, shed counts) with a triage grade.
//! * [`trace`] — the offline analyzer behind the `cde-analyze` binary:
//!   reconstructs campaigns from telemetry JSONL and emits waterfalls,
//!   percentile tables, scorecards and the offline cached/uncached
//!   split (text + JSON).
//! * [`health`] — replays a trace through the `cde-pulse` SLO engine
//!   (`cde-analyze --health`): the verdict timeline the live
//!   `/v1/health` endpoint would have served.
//! * [`forensics`] — the loss-forensics reconciler behind
//!   `cde-analyze --forensics`: joins a flight-recorder dump's probe
//!   lifecycle records with its fault-layer wire observations and
//!   classifies every unanswered probe (query-lost vs reply-lost vs
//!   matched-late-as-stray) into a per-ingress fate table — the
//!   per-probe version of the paper's cold-vs-warm cache distinction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bimodal;
pub mod digest;
pub mod estimator;
pub mod forensics;
pub mod health;
pub mod phase;
pub mod scorecard;
pub mod trace;

pub use bimodal::{split_digest, split_modes, ModeSplit, ModeStats};
pub use digest::{DigestSnapshot, RttDigest, RttDigestSet, BUCKETS, SUB_BITS};
pub use estimator::{EstimatorSnapshot, RttConfig, RttEstimator, GRANULARITY_US};
pub use forensics::{analyze_forensics, FateRow, FlightDump, Forensics};
pub use health::{replay_health, HealthReplay, ReplayPoint};
pub use phase::{Phase, PhaseProfiler, PhaseStats, PHASES};
pub use scorecard::Scorecard;
pub use trace::{analyze, CampaignTrace, TraceAnalysis};
