//! Offline health replay: runs the `cde-pulse` SLO engine over a
//! telemetry JSONL trace, as `GET /v1/health` would have judged the run
//! live.
//!
//! The replay folds probe lifecycle events into cumulative
//! [`CounterSample`]s at a fixed bucket cadence and evaluates the
//! multi-window burn rates at every bucket, producing a verdict
//! timeline: when the run degraded, why, and whether it recovered. The
//! same [`SloSpec`] defaults the daemon uses apply, so an offline trace
//! and the live endpoint agree on what "unhealthy" means.

use crate::trace::{field_str, field_u64};
use cde_pulse::{evaluate, CounterSample, HealthStatus, HealthVerdict, SloSpec};

/// One point on the replayed verdict timeline.
#[derive(Debug)]
pub struct ReplayPoint {
    /// Bucket timestamp, milliseconds from the first event.
    pub at_ms: u64,
    /// The verdict the live endpoint would have served at this instant.
    pub verdict: HealthVerdict,
}

/// The full offline health replay of one trace.
#[derive(Debug, Default)]
pub struct HealthReplay {
    /// Cumulative counter samples, one per elapsed bucket.
    pub samples: Vec<CounterSample>,
    /// Verdicts evaluated at each sample after the first.
    pub timeline: Vec<ReplayPoint>,
}

impl HealthReplay {
    /// The worst status the run ever hit.
    pub fn worst(&self) -> HealthStatus {
        self.timeline
            .iter()
            .map(|p| p.verdict.status)
            .max()
            .unwrap_or(HealthStatus::Ok)
    }

    /// The final verdict — did the run recover?
    pub fn last(&self) -> Option<&ReplayPoint> {
        self.timeline.last()
    }

    /// Renders the timeline as an operator-readable report: one line per
    /// status change plus the worst/final summary.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "health replay: {} sample(s), {} verdict(s)",
            self.samples.len(),
            self.timeline.len()
        );
        let mut previous = None;
        for point in &self.timeline {
            if previous == Some(point.verdict.status) {
                continue;
            }
            previous = Some(point.verdict.status);
            let causes: Vec<String> = point.verdict.causes.iter().map(|c| c.detail()).collect();
            let _ = writeln!(
                out,
                "  t={:>6.1}s  {:<8}  {}",
                point.at_ms as f64 / 1000.0,
                point.verdict.status.as_str(),
                if causes.is_empty() {
                    "-".to_owned()
                } else {
                    causes.join("; ")
                }
            );
        }
        let _ = writeln!(
            out,
            "worst: {}  final: {}",
            self.worst().as_str(),
            self.last()
                .map(|p| p.verdict.status.as_str())
                .unwrap_or("ok")
        );
        out
    }
}

/// Replays `jsonl` through the SLO engine with `bucket_ms` sampling.
///
/// Counter mapping, mirroring the live daemon's sampler: `sent` counts
/// every attempt (`probe_sent` + `probe_retried`), `received` counts
/// `probe_matched`, `strays` counts `reply_dropped`, `shed` sums
/// `events_dropped`, `emitted` counts parsed events, and `in_flight` is
/// probes started minus probes decided — so a burst of not-yet-decided
/// probes does not read as loss.
pub fn replay_health(jsonl: &str, spec: &SloSpec, bucket_ms: u64) -> HealthReplay {
    let bucket_ms = bucket_ms.max(1);
    let mut replay = HealthReplay::default();
    let mut current = CounterSample::default();
    let mut probes_started = 0u64;
    let mut probes_decided = 0u64;
    let mut origin_us: Option<u64> = None;
    let mut next_bucket_ms = bucket_ms;

    for line in jsonl.lines() {
        let (Some(kind), Some(at_us)) = (field_str(line, "kind"), field_u64(line, "at_us")) else {
            continue;
        };
        let at_ms = (at_us - *origin_us.get_or_insert(at_us)) / 1_000;
        while at_ms >= next_bucket_ms {
            current.at_ms = next_bucket_ms;
            current.in_flight = probes_started.saturating_sub(probes_decided);
            replay.samples.push(current);
            next_bucket_ms += bucket_ms;
        }
        current.emitted += 1;
        match kind {
            "probe_sent" => {
                current.sent += 1;
                probes_started += 1;
            }
            "probe_retried" => {
                current.sent += 1;
                current.retries += 1;
            }
            "probe_matched" => {
                current.received += 1;
                probes_decided += 1;
            }
            "probe_timed_out" => {
                current.timeouts += 1;
                probes_decided += 1;
            }
            "reply_dropped" => current.strays += 1,
            "events_dropped" => current.shed += field_u64(line, "count").unwrap_or(0),
            _ => {}
        }
    }
    if origin_us.is_some() {
        current.at_ms = next_bucket_ms;
        current.in_flight = probes_started.saturating_sub(probes_decided);
        replay.samples.push(current);
    }

    for end in 1..replay.samples.len() {
        let window = &replay.samples[..=end];
        replay.timeline.push(ReplayPoint {
            at_ms: window[end].at_ms,
            verdict: evaluate(window, spec, None),
        });
    }
    replay
}

#[cfg(test)]
mod tests {
    use super::*;

    // token counts probes, not iterations, and u64::is_multiple_of
    // needs 1.87 (MSRV is 1.81).
    #[allow(clippy::explicit_counter_loop, clippy::manual_is_multiple_of)]
    fn lossy_trace(loss_every: u64) -> String {
        use std::fmt::Write;
        let mut t = String::new();
        // 100 probes/s for 30s; every `loss_every`-th probe times out
        // after a retry, the rest answer in 500us.
        let mut token = 0u64;
        for ms in (0..30_000u64).step_by(10) {
            let at = ms * 1_000;
            let _ = writeln!(
                t,
                "{{\"at_us\": {at}, \"campaign\": 0, \"kind\": \"probe_sent\", \"token\": {token}, \"attempt\": 0}}"
            );
            if loss_every > 0 && token % loss_every == 0 {
                let _ = writeln!(
                    t,
                    "{{\"at_us\": {}, \"campaign\": 0, \"kind\": \"probe_retried\", \"token\": {token}, \"attempt\": 1}}",
                    at + 150_000
                );
                let _ = writeln!(
                    t,
                    "{{\"at_us\": {}, \"campaign\": 0, \"kind\": \"probe_timed_out\", \"token\": {token}, \"attempts\": 2}}",
                    at + 300_000
                );
            } else {
                let _ = writeln!(
                    t,
                    "{{\"at_us\": {}, \"campaign\": 0, \"kind\": \"probe_matched\", \"token\": {token}, \"attempt\": 0, \"rtt_us\": 500}}",
                    at + 500
                );
            }
            token += 1;
        }
        t
    }

    #[test]
    fn clean_trace_replays_ok() {
        let replay = replay_health(&lossy_trace(0), &SloSpec::default(), 1_000);
        assert!(replay.samples.len() >= 29, "{}", replay.samples.len());
        assert_eq!(replay.worst(), HealthStatus::Ok);
        assert!(replay.render_text().contains("worst: ok"));
    }

    #[test]
    fn heavy_loss_replays_degraded_with_loss_cause() {
        // Every 3rd probe lost (plus its retry): ~50% attempt loss.
        let replay = replay_health(&lossy_trace(3), &SloSpec::default(), 1_000);
        assert_eq!(replay.worst(), HealthStatus::Critical);
        let worst = replay
            .timeline
            .iter()
            .find(|p| p.verdict.status == HealthStatus::Critical)
            .expect("critical point");
        assert!(
            worst
                .verdict
                .causes
                .iter()
                .any(|c| c.detail().contains("loss")),
            "{:?}",
            worst.verdict.causes
        );
        assert!(replay.render_text().contains("critical"));
    }

    #[test]
    fn empty_trace_is_ok() {
        let replay = replay_health("", &SloSpec::default(), 1_000);
        assert!(replay.samples.is_empty());
        assert_eq!(replay.worst(), HealthStatus::Ok);
    }
}
