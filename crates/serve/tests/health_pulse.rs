//! End-to-end exercise of the self-diagnosis surface: a campaign run
//! under heavy bursty loss must drive `GET /v1/health` to a degraded
//! verdict whose cause names the loss, while the same campaign on a
//! clean fault plan keeps the daemon at `ok`. Also covers the per-shard
//! view and the pulse families in the Prometheus scrape.

use cde_engine::RateConfig;
use cde_serve::{Daemon, DaemonConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect control plane");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: cde-serve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn field(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = body.find(&needle)? + needle.len();
    let rest = body[at..].trim_start().strip_prefix(':')?.trim_start();
    if let Some(quoted) = rest.strip_prefix('"') {
        Some(quoted[..quoted.find('"')?].to_owned())
    } else {
        let end = rest
            .find(|c: char| c == ',' || c == '}' || c == ']' || c.is_whitespace())
            .unwrap_or(rest.len());
        Some(rest[..end].to_owned())
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cde-pulse-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(tag: &str, chaos: Option<(f64, f64)>) -> (Daemon, SocketAddr) {
    let daemon = Daemon::start(DaemonConfig {
        checkpoint_dir: fresh_dir(tag),
        caches: 4,
        seed: 90210,
        chaos,
        rate: RateConfig {
            per_second: 600.0,
            burst: 8.0,
        },
        ..DaemonConfig::default()
    })
    .unwrap();
    let addr = daemon.addr();
    (daemon, addr)
}

fn submit_campaign(addr: SocketAddr, farm_size: usize) -> String {
    let body = format!(
        "{{\"tenant\": \"probe\", \"label\": \"pulse\", \"caches_hint\": 4, \
         \"farm_size\": {farm_size}, \"redundancy\": 1, \"window\": 32, \"checkpoint_every\": 0}}"
    );
    let (status, body) = http(addr, "POST", "/v1/campaigns", &body);
    assert_eq!(status, 200, "{body}");
    field(&body, "id").expect("campaign id")
}

/// The acceptance scenario: ≥25% bursty loss on the query path drives
/// `/v1/health` to warn/critical with a loss-attributed cause, and the
/// HTTP status degrades with the verdict (503 on critical).
#[test]
fn bursty_loss_degrades_health_with_a_loss_cause() {
    let (daemon, addr) = start("chaos", Some((0.30, 4.0)));
    let server = std::thread::spawn(move || daemon.run());

    // Before any traffic the daemon reports ok (windows inactive).
    let (status, body) = http(addr, "GET", "/v1/health", "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(field(&body, "status").as_deref(), Some("ok"), "{body}");

    let id = submit_campaign(addr, 4000);

    // Degradation must surface while the lossy campaign runs.
    let deadline = Instant::now() + Duration::from_secs(60);
    let (status, body) = loop {
        let (status, body) = http(addr, "GET", "/v1/health", "");
        let verdict = field(&body, "status").unwrap_or_default();
        if verdict == "warn" || verdict == "critical" {
            break (status, body);
        }
        assert!(
            Instant::now() < deadline,
            "health never degraded under 30% bursty loss; last: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        body.contains("loss_budget_burn") && body.contains("loss"),
        "degraded verdict must attribute the loss: {body}"
    );
    if field(&body, "status").as_deref() == Some("critical") {
        assert_eq!(status, 503, "critical must be non-200: {body}");
    } else {
        assert_eq!(status, 200, "{body}");
    }

    // The per-shard view serves alongside.
    let (status, shards) = http(addr, "GET", "/v1/health/shards", "");
    assert_eq!(status, 200, "{shards}");
    assert!(shards.contains("\"duty_cycle\""), "{shards}");

    // The scrape carries the pulse families.
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("cde_pulse_health_status"),
        "pulse families missing from the scrape"
    );
    assert!(metrics.contains("cde_pulse_timeout_ratio{window=\"10s\"}"));

    let (status, _) = http(addr, "POST", &format!("/v1/campaigns/{id}/cancel"), "");
    assert_eq!(status, 200);
    let (status, _) = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    server.join().expect("daemon thread").expect("drain");
}

/// The control scenario: the identical campaign over a clean fault plan
/// never pages — health stays `ok` from first probe to completion.
#[test]
fn clean_world_stays_ok() {
    let (daemon, addr) = start("clean", None);
    let server = std::thread::spawn(move || daemon.run());

    let id = submit_campaign(addr, 600);

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = http(addr, "GET", "/v1/health", "");
        assert_eq!(status, 200, "clean world must never go critical: {body}");
        assert_ne!(
            field(&body, "status").as_deref(),
            Some("critical"),
            "{body}"
        );
        let (_, campaign) = http(addr, "GET", &format!("/v1/campaigns/{id}"), "");
        if field(&campaign, "state").as_deref() == Some("done") {
            break;
        }
        assert!(Instant::now() < deadline, "campaign never finished");
        std::thread::sleep(Duration::from_millis(50));
    }

    // Quiescent after a fully-answered run: the verdict settles at ok.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = http(addr, "GET", "/v1/health", "");
        if status == 200 && field(&body, "status").as_deref() == Some("ok") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "clean campaign must settle at ok: {body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    let (status, _) = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    server.join().expect("daemon thread").expect("drain");
}
