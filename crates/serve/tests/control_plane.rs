//! End-to-end exercise of the HTTP control plane against a full
//! [`cde_serve::Daemon`]: tenant registration, campaign submission,
//! status polling, checkpointing, cancellation, the Prometheus scrape,
//! and weighted fairness between two concurrent tenants.

use cde_engine::RateConfig;
use cde_serve::{Daemon, DaemonConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A deliberately primitive HTTP/1.1 client: one request, one
/// connection — exactly what the control plane serves. Returns status,
/// raw head (status line + headers) and body.
fn http_raw(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect control plane");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: cde-serve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_owned(), b.to_owned()))
        .unwrap_or_default();
    (status, head, body)
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = http_raw(addr, method, path, body);
    (status, body)
}

/// Pulls `"key": "value"` or `"key": value` out of a flat JSON body.
fn field(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = body.find(&needle)? + needle.len();
    let rest = body[at..].trim_start().strip_prefix(':')?.trim_start();
    if let Some(quoted) = rest.strip_prefix('"') {
        Some(quoted[..quoted.find('"')?].to_owned())
    } else {
        let end = rest
            .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
            .unwrap_or(rest.len());
        Some(rest[..end].to_owned())
    }
}

/// Reads one labelled sample out of a Prometheus exposition.
fn sample(metrics: &str, name: &str, tenant: &str) -> Option<f64> {
    let prefix = format!("{name}{{tenant=\"{tenant}\"}}");
    metrics.lines().find_map(|line| {
        line.strip_prefix(&prefix)
            .and_then(|rest| rest.trim().parse().ok())
    })
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cde-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn poll_until<T>(timeout: Duration, mut probe: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(value) = probe() {
            return value;
        }
        assert!(Instant::now() < deadline, "poll deadline exceeded");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn control_plane_drives_weighted_tenants_end_to_end() {
    let daemon = Daemon::start(DaemonConfig {
        checkpoint_dir: fresh_dir("ctl"),
        caches: 4,
        seed: 1717,
        rate: RateConfig {
            per_second: 200.0,
            burst: 4.0,
        },
        ..DaemonConfig::default()
    })
    .unwrap();
    let addr = daemon.addr();
    let server = std::thread::spawn(move || daemon.run());

    // Liveness and error surfaces first.
    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "{\"ok\": true}"));
    let (status, _) = http(addr, "GET", "/v1/campaigns/c-999", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/v1/nope", "");
    assert_eq!(status, 404);

    // A wrong method on a real resource is 405 with an Allow header —
    // not a misleading 404 and not a header-less 405.
    let (status, head, _) = http_raw(addr, "DELETE", "/v1/campaigns", "");
    assert_eq!(status, 405);
    assert!(head.contains("Allow: GET, POST"), "{head}");
    let (status, head, _) = http_raw(addr, "PUT", "/healthz", "");
    assert_eq!(status, 405);
    assert!(head.contains("Allow: GET"), "{head}");
    let (status, head, _) = http_raw(addr, "GET", "/v1/shutdown", "");
    assert_eq!(status, 405, "GET on a POST route must not shut down");
    assert!(head.contains("Allow: POST"), "{head}");
    let (status, _, _) = http_raw(addr, "DELETE", "/v1/nope", "");
    assert_eq!(status, 404, "unknown paths stay 404 for any method");
    let (status, body) = http(
        addr,
        "POST",
        "/v1/campaigns",
        "{\"tenant\": \"bad tenant\"}",
    );
    assert_eq!(status, 400, "hostile names must bounce: {body}");

    // Two tenants sharing the 200/s budget 1:3.
    let (status, _) = http(
        addr,
        "POST",
        "/v1/tenants",
        "{\"name\": \"alice\", \"weight\": 1}",
    );
    assert_eq!(status, 200);
    let (status, _) = http(
        addr,
        "POST",
        "/v1/tenants",
        "{\"name\": \"bob\", \"weight\": 3}",
    );
    assert_eq!(status, 200);

    // Identical concurrent campaigns; only the weights differ.
    let submit = |tenant: &str| -> String {
        let body = format!(
            "{{\"tenant\": \"{tenant}\", \"label\": \"fair\", \"caches_hint\": 4, \
             \"farm_size\": 120, \"redundancy\": 1, \"window\": 16, \"checkpoint_every\": 0}}"
        );
        let (status, body) = http(addr, "POST", "/v1/campaigns", &body);
        assert_eq!(status, 200, "{body}");
        field(&body, "id").expect("campaign id")
    };
    let alice_id = submit("alice");
    let bob_id = submit("bob");

    // Fairness is a mid-run property (both tenants converge to equal
    // totals once bob finishes): sample the scrape while bob is deep in
    // his run and alice is paced behind him, and check the 1:3 split.
    let (alice_probes, bob_probes) = poll_until(Duration::from_secs(30), || {
        let (status, metrics) = http(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        let alice = sample(&metrics, "cde_serve_tenant_probes_total", "alice")?;
        let bob = sample(&metrics, "cde_serve_tenant_probes_total", "bob")?;
        (90.0..=119.0).contains(&bob).then_some((alice, bob))
    });
    let ratio = bob_probes / alice_probes.max(1.0);
    assert!(
        (2.4..=3.6).contains(&ratio),
        "1:3 weights must show in the scrape within 20%: alice={alice_probes} bob={bob_probes} ratio={ratio:.2}"
    );

    // Both campaigns run to completion with the exact planted count.
    for id in [&alice_id, &bob_id] {
        let body = poll_until(Duration::from_secs(60), || {
            let (status, body) = http(addr, "GET", &format!("/v1/campaigns/{id}"), "");
            assert_eq!(status, 200);
            (field(&body, "state").as_deref() == Some("done")).then_some(body)
        });
        assert_eq!(field(&body, "completed").as_deref(), Some("120"), "{body}");
        assert_eq!(
            field(&body, "fully_accounted").as_deref(),
            Some("true"),
            "{body}"
        );
        assert_eq!(field(&body, "estimated").as_deref(), Some("4"), "{body}");
    }

    // Checkpoint on demand, then cancel a third campaign mid-flight.
    let (status, body) = http(
        addr,
        "POST",
        &format!("/v1/campaigns/{alice_id}/checkpoint"),
        "",
    );
    assert_eq!(status, 200, "{body}");
    let ckpt = field(&body, "checkpoint_path").expect("checkpoint path");
    assert!(std::path::Path::new(&ckpt).exists(), "{ckpt}");

    let (status, body) = http(
        addr,
        "POST",
        "/v1/campaigns",
        "{\"tenant\": \"alice\", \"label\": \"doomed\", \"farm_size\": 5000, \"redundancy\": 1}",
    );
    assert_eq!(status, 200, "{body}");
    let doomed = field(&body, "id").unwrap();
    let (status, _) = http(addr, "POST", &format!("/v1/campaigns/{doomed}/cancel"), "");
    assert_eq!(status, 200);
    let body = poll_until(Duration::from_secs(30), || {
        let (_, body) = http(addr, "GET", &format!("/v1/campaigns/{doomed}"), "");
        (field(&body, "state").as_deref() == Some("cancelled")).then_some(body)
    });
    let ckpt = field(&body, "checkpoint_path").expect("cancelled campaigns leave a snapshot");
    assert!(std::path::Path::new(&ckpt).exists(), "{ckpt}");

    // The list view knows all three campaigns.
    let (status, listing) = http(addr, "GET", "/v1/campaigns", "");
    assert_eq!(status, 200);
    for id in [&alice_id, &bob_id, &doomed] {
        assert!(listing.contains(&format!("\"id\": \"{id}\"")), "{listing}");
    }

    // Graceful shutdown over HTTP: the daemon drains and exits cleanly.
    let (status, _) = http(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    server
        .join()
        .expect("daemon thread")
        .expect("graceful shutdown must drain the reactor");
}
