//! The headline chaos acceptance for cde-serve: `kill -9` a campaign
//! mid-flight under Gilbert–Elliott bursty loss, resume it from the
//! last checkpoint in a fresh manager, and recover the exact planted
//! cache count with every probe accounted for.
//!
//! The kill is in-process (the worker abandons the campaign with no
//! checkpoint and no final events, and the reactor is torn down
//! abruptly), which models the syscall-level kill faithfully at the
//! layer that matters: snapshots on disk stay exactly as the last
//! checkpoint left them, and undrained observation evidence stays
//! queued on the resolver's channel. The script-level `kill -9` of the
//! real daemon binary rides in `scripts/serve_smoke.sh`.
//!
//! Seeds come from `CDE_CHAOS_SEED`; failures print the replay recipe.

use cde_core::CdeInfra;
use cde_engine::{
    AdaptiveRtoConfig, LiveTestbed, RateConfig, ReactorConfig, ResolverConfig, RetryPolicy,
};
use cde_faults::FaultPlan;
use cde_netsim::{seed_from_env, SeedGuard};
use cde_platform::{NameserverNet, PlatformBuilder, ResolutionPlatform, SelectorKind};
use cde_serve::{
    CampaignManager, CampaignSnapshot, CampaignSpec, CampaignState, ManagerConfig, World,
};
use cde_telemetry::TelemetryHub;
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
const CACHES: usize = 6;

fn build_world(seed: u64) -> (ResolutionPlatform, NameserverNet, CdeInfra) {
    let mut net = NameserverNet::new();
    let infra = CdeInfra::install(&mut net);
    let platform = PlatformBuilder::new(seed)
        .ingress(vec![INGRESS])
        .egress((1..=3).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
        .cluster(CACHES, SelectorKind::Random)
        .build();
    (platform, net, infra)
}

/// Bursty chaos on the query path with a retry policy that can outlast
/// a burst — the same shape the reactor chaos suite proves out. The
/// adaptive RTO table is on, so checkpoints must carry learned
/// estimator state across the kill.
fn chaos_config(seed: u64) -> ReactorConfig {
    ReactorConfig {
        faults: Some(FaultPlan::bursty(seed, 0.25, 3.0)),
        adaptive: Some(AdaptiveRtoConfig::default()),
        ..ReactorConfig::with_policy(
            RetryPolicy {
                attempts: 6,
                timeout: Duration::from_millis(150),
                backoff: 1.0,
                base_delay: Duration::from_millis(1),
                jitter: 0.0,
            },
            seed,
        )
    }
}

fn manager_config(dir: PathBuf) -> ManagerConfig {
    ManagerConfig {
        checkpoint_dir: dir,
        global_rate: RateConfig {
            per_second: 4000.0,
            burst: 8.0,
        },
        hub: TelemetryHub::new(cde_telemetry::DEFAULT_RING_CAPACITY),
        registry: None,
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cde-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn killed_campaign_resumes_to_the_exact_cache_count() {
    let seed = seed_from_env("CDE_CHAOS_SEED", 4242);
    let _guard = SeedGuard::new("CDE_CHAOS_SEED", seed);
    let dir = fresh_dir("kill-resume");
    let (platform, net, infra) = build_world(seed);
    let testbed = LiveTestbed::launch(platform, net, ResolverConfig::default()).unwrap();

    // First life: submit, checkpoint every 8 completions, then die.
    let transport = testbed.reactor_transport(chaos_config(seed)).unwrap();
    let manager = CampaignManager::new(
        World {
            transport,
            infra: infra.clone(),
        },
        manager_config(dir.clone()),
    );
    let id = manager
        .submit(CampaignSpec {
            tenant: "chaos".into(),
            label: "kill-resume".into(),
            caches_hint: CACHES as u64,
            loss_hint: 0.25,
            farm_size: 48,
            redundancy: 2,
            window: 8,
            checkpoint_every: 8,
            ..CampaignSpec::default()
        })
        .unwrap();
    let total = manager.status(&id).unwrap().total;
    assert_eq!(total, 96);

    // Let it get a third of the way (several checkpoints deep), then
    // kill it abruptly: no final checkpoint, no goodbye events, and the
    // reactor is torn down with probes still in flight.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = manager.status(&id).unwrap();
        if status.completed >= total / 3 {
            assert!(
                status.checkpoints > 0,
                "a third of the campaign must span at least one checkpoint"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "campaign made no progress under chaos (seed {seed}): {status:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    manager.kill();
    let killed = manager.status(&id).unwrap();
    assert_eq!(killed.state, CampaignState::Killed, "seed {seed}");
    assert!(
        killed.completed < total,
        "kill landed after completion; tighten the poll (seed {seed})"
    );
    drop(manager);

    // The snapshot on disk must carry the estimator state the first
    // life learned under chaos.
    let snapshots = CampaignSnapshot::load_dir(&dir).unwrap();
    assert_eq!(snapshots.len(), 1, "seed {seed}");
    let learned = snapshots[0]
        .rto
        .iter()
        .find(|(ip, _)| *ip == INGRESS)
        .map(|(_, s)| *s)
        .unwrap_or_else(|| panic!("checkpoint has no rto line for {INGRESS} (seed {seed})"));
    assert!(
        learned.samples > 0,
        "first life must have fed RTT samples (seed {seed}): {learned:?}"
    );

    // Second life: a fresh manager over the same testbed finds the
    // snapshot, regenerates the exact session names, and finishes the
    // undecided remainder.
    let transport = testbed.reactor_transport(chaos_config(seed)).unwrap();
    let manager = CampaignManager::new(
        World {
            transport,
            infra: infra.clone(),
        },
        manager_config(dir),
    );
    let resumed = manager.resume_all().unwrap();
    assert_eq!(resumed, vec![id.clone()], "seed {seed}");
    assert!(manager.join(&id));

    let status = manager.status(&id).unwrap();
    assert_eq!(status.state, CampaignState::Done, "seed {seed}");
    assert_eq!(status.completed, total, "seed {seed}");
    assert!(
        status.resumed_from > 0 && status.resumed_from < total,
        "resume must continue mid-campaign, got {} of {} (seed {seed})",
        status.resumed_from,
        total
    );
    assert!(
        status.fully_accounted,
        "every probe must be accounted for across the kill (seed {seed}): {status:?}"
    );
    let report = manager.report(&id).unwrap();
    assert!(report.fully_accounted(total as usize), "seed {seed}");
    assert_eq!(
        status.observed, CACHES as u64,
        "honey-fetch evidence must survive the kill exactly (seed {seed}): {status:?}"
    );
    assert_eq!(
        status.estimated, CACHES as u64,
        "the resumed campaign must recover the planted cache count (seed {seed}): {status:?}"
    );
    // The second life restored the learned estimator before probing, so
    // its live counters start at the checkpoint's values and only grow.
    let restored = manager
        .rto_snapshots()
        .into_iter()
        .find(|(ip, _)| *ip == INGRESS)
        .map(|(_, s)| s)
        .expect("adaptive reactor must expose the ingress estimator");
    assert!(
        restored.samples >= learned.samples,
        "resume must keep learned RTT state (seed {seed}): {restored:?} vs {learned:?}"
    );
}

#[test]
fn graceful_shutdown_pauses_and_resumes_cleanly() {
    let seed = seed_from_env("CDE_CHAOS_SEED", 9191);
    let _guard = SeedGuard::new("CDE_CHAOS_SEED", seed);
    let dir = fresh_dir("pause-resume");
    let (platform, net, infra) = build_world(seed);
    let testbed = LiveTestbed::launch(platform, net, ResolverConfig::default()).unwrap();

    let transport = testbed.reactor_transport(chaos_config(seed)).unwrap();
    let manager = CampaignManager::new(
        World {
            transport,
            infra: infra.clone(),
        },
        manager_config(dir.clone()),
    );
    // Slow enough (200 probes/s against 96 probes) that the shutdown
    // lands mid-campaign.
    manager
        .register_tenant(
            "steady",
            1.0,
            Some(RateConfig {
                per_second: 200.0,
                burst: 1.0,
            }),
        )
        .unwrap();
    let id = manager
        .submit(CampaignSpec {
            tenant: "steady".into(),
            label: "pause".into(),
            caches_hint: CACHES as u64,
            loss_hint: 0.25,
            farm_size: 48,
            redundancy: 2,
            window: 8,
            checkpoint_every: 16,
            ..CampaignSpec::default()
        })
        .unwrap();
    let total = manager.status(&id).unwrap().total;
    let deadline = Instant::now() + Duration::from_secs(30);
    while manager.status(&id).unwrap().completed < 10 {
        assert!(Instant::now() < deadline, "no progress (seed {seed})");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        manager.graceful_shutdown(Duration::from_secs(10)),
        "reactor must drain in-flight probes on graceful shutdown (seed {seed})"
    );
    let paused = manager.status(&id).unwrap();
    assert_eq!(paused.state, CampaignState::Paused, "seed {seed}");
    assert!(paused.completed < total, "seed {seed}");
    drop(manager);

    let transport = testbed.reactor_transport(chaos_config(seed)).unwrap();
    let manager = CampaignManager::new(
        World {
            transport,
            infra: infra.clone(),
        },
        manager_config(dir),
    );
    let resumed = manager.resume_all().unwrap();
    assert_eq!(resumed, vec![id.clone()], "seed {seed}");
    assert!(manager.join(&id));
    let status = manager.status(&id).unwrap();
    assert_eq!(status.state, CampaignState::Done, "seed {seed}");
    assert!(status.fully_accounted, "seed {seed}: {status:?}");
    assert_eq!(status.estimated, CACHES as u64, "seed {seed}: {status:?}");
}
