//! Focused acceptance for the adaptive-timing checkpoint state: learned
//! RTT estimators are restored verbatim on resume, and a campaign with
//! sequential stopping enabled ends at the exact count without spending
//! its full probe budget.

use cde_core::{CdeInfra, ProbePlan, SequentialPlanner};
use cde_engine::rto::EstimatorSnapshot;
use cde_engine::{AdaptiveRtoConfig, LiveTestbed, ReactorConfig, ResolverConfig, RetryPolicy};
use cde_platform::{NameserverNet, PlatformBuilder, ResolutionPlatform, SelectorKind};
use cde_serve::{
    CampaignManager, CampaignSnapshot, CampaignSpec, CampaignState, ManagerConfig,
    ProbeDisposition, World,
};
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::time::Duration;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
const CACHES: usize = 4;

fn build_world(seed: u64) -> (ResolutionPlatform, NameserverNet, CdeInfra) {
    let mut net = NameserverNet::new();
    let infra = CdeInfra::install(&mut net);
    let platform = PlatformBuilder::new(seed)
        .ingress(vec![INGRESS])
        .egress((1..=2).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
        .cluster(CACHES, SelectorKind::Random)
        .build();
    (platform, net, infra)
}

fn adaptive_config(seed: u64) -> ReactorConfig {
    ReactorConfig {
        adaptive: Some(AdaptiveRtoConfig::default()),
        ..ReactorConfig::with_policy(
            RetryPolicy {
                attempts: 4,
                timeout: Duration::from_millis(250),
                backoff: 1.5,
                base_delay: Duration::from_millis(1),
                jitter: 0.0,
            },
            seed,
        )
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cde-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Resuming a snapshot with a synthetic, unmistakably large estimator
/// record proves the restore path end to end: the live table's sample
/// counter can only have come from the snapshot — a fresh campaign's
/// handful of probes could never reach it.
#[test]
fn estimator_state_restores_from_snapshot() {
    const PLANTED_SAMPLES: u64 = 100_000;
    let dir = fresh_dir("rto-restore");
    let (platform, net, infra) = build_world(11);
    let testbed = LiveTestbed::launch(platform, net, ResolverConfig::default()).unwrap();
    let transport = testbed.reactor_transport(adaptive_config(11)).unwrap();
    let manager = CampaignManager::new(
        World {
            transport,
            infra: infra.clone(),
        },
        ManagerConfig::new(dir.clone()),
    );

    let mut outcomes = vec![ProbeDisposition::Pending; 8];
    outcomes[0] = ProbeDisposition::Answered;
    let snap = CampaignSnapshot {
        id: "c-1".into(),
        tenant: "restore".into(),
        weight: 1.0,
        label: "rto".into(),
        state: CampaignState::Paused,
        ingress: INGRESS,
        farm_size: 8,
        redundancy: 1,
        window: 4,
        checkpoint_every: 0,
        session_counter: 0,
        plan: ProbePlan::for_target(CACHES as u64, 0.0),
        observed: 1,
        seq: 1,
        outcomes,
        rto: vec![(
            INGRESS,
            EstimatorSnapshot {
                srtt_us: 20_000,
                rttvar_us: 5_000,
                rto_us: 60_000,
                timeout_count: 0,
                samples: PLANTED_SAMPLES,
                timeouts: 3,
            },
        )],
        planner: None,
    };
    snap.write_to(&dir).unwrap();

    let id = manager.resume(snap).unwrap();
    assert!(manager.join(&id));
    let status = manager.status(&id).unwrap();
    assert_eq!(status.state, CampaignState::Done);
    assert_eq!(status.completed, 8);

    let (_, live) = manager
        .rto_snapshots()
        .into_iter()
        .find(|(ip, _)| *ip == INGRESS)
        .expect("adaptive table must expose the ingress");
    assert!(
        live.samples >= PLANTED_SAMPLES,
        "restored sample counter must persist and only grow: {live:?}"
    );
}

/// With sequential stopping enabled, the campaign ends as soon as the
/// exact-count criterion holds: same count, far fewer probes, and the
/// planner's state (stopped) rides the terminal checkpoint.
#[test]
fn sequential_campaign_stops_early_at_the_exact_count() {
    let dir = fresh_dir("seq-stop");
    let (platform, net, infra) = build_world(23);
    let testbed = LiveTestbed::launch(platform, net, ResolverConfig::default()).unwrap();
    let transport = testbed.reactor_transport(adaptive_config(23)).unwrap();
    let manager = CampaignManager::new(
        World {
            transport,
            infra: infra.clone(),
        },
        ManagerConfig::new(dir.clone()),
    );
    let id = manager
        .submit(CampaignSpec {
            tenant: "seq".into(),
            label: "early-stop".into(),
            caches_hint: CACHES as u64,
            farm_size: 256,
            redundancy: 1,
            window: 8,
            checkpoint_every: 4,
            sequential_epsilon: 0.001,
            ..CampaignSpec::default()
        })
        .unwrap();
    assert!(manager.join(&id));

    let status = manager.status(&id).unwrap();
    assert_eq!(status.state, CampaignState::Done, "{status:?}");
    assert_eq!(status.observed, CACHES as u64, "{status:?}");
    assert_eq!(status.estimated, CACHES as u64, "{status:?}");
    assert!(
        status.completed < status.total,
        "sequential stopping must leave budget unspent: {status:?}"
    );
    assert!(status.fully_accounted, "{status:?}");

    let snapshots = CampaignSnapshot::load_dir(&dir).unwrap();
    assert_eq!(snapshots.len(), 1);
    let planner = snapshots[0]
        .planner
        .clone()
        .expect("terminal checkpoint must carry the planner");
    assert!(planner.should_stop(), "{planner:?}");
    assert_eq!(planner.observed(), CACHES as u64);

    // The stopping decision round-trips the wire format, so a resumed
    // process would make the same call.
    let line = planner.snapshot_line();
    assert_eq!(SequentialPlanner::from_snapshot_line(&line), Some(planner));
}
