//! Replay-identity property: kill a campaign after `k` completions,
//! resume it in a fresh manager, and the resumed hub's telemetry
//! stream — with timestamps stripped — is byte-identical to an
//! uninterrupted run's.
//!
//! The campaign span's event vocabulary is deterministic by design
//! (ordered per-probe notes over the decided prefix, fixed closing
//! notes), so the only thing allowed to differ is `at_us`, which
//! [`cde_telemetry::strip_at_us`] removes. The world is pinned to make
//! outcomes reproducible: one planted cache (every probe warms the
//! same cache, so the observed count is 1 regardless of how many extra
//! queries the resumed run re-probes), a serial window, a checkpoint
//! after every completion, and no injected faults.

use cde_core::CdeInfra;
use cde_engine::{LiveTestbed, RateConfig, ReactorConfig, ResolverConfig, RetryPolicy};
use cde_platform::{NameserverNet, PlatformBuilder, ResolutionPlatform, SelectorKind};
use cde_serve::{CampaignManager, CampaignSpec, CampaignState, ManagerConfig, World};
use cde_telemetry::{strip_at_us, TelemetryHub};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

fn build_world(seed: u64) -> (ResolutionPlatform, NameserverNet, CdeInfra) {
    let mut net = NameserverNet::new();
    let infra = CdeInfra::install(&mut net);
    let platform = PlatformBuilder::new(seed)
        .ingress(vec![INGRESS])
        .egress((1..=3).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
        .cluster(1, SelectorKind::Random)
        .build();
    (platform, net, infra)
}

fn quiet_config(seed: u64) -> ReactorConfig {
    ReactorConfig::with_policy(
        RetryPolicy {
            attempts: 4,
            timeout: Duration::from_millis(500),
            backoff: 1.0,
            base_delay: Duration::from_millis(1),
            jitter: 0.0,
        },
        seed,
    )
}

fn manager_config(dir: PathBuf, hub: Arc<TelemetryHub>) -> ManagerConfig {
    ManagerConfig {
        checkpoint_dir: dir,
        global_rate: RateConfig {
            per_second: 50_000.0,
            burst: 16.0,
        },
        hub,
        registry: None,
    }
}

fn spec(farm: usize, kill_after: Option<u64>) -> CampaignSpec {
    CampaignSpec {
        tenant: "prover".into(),
        label: "replay".into(),
        caches_hint: 1,
        farm_size: farm,
        redundancy: 1,
        window: 1,
        checkpoint_every: 1,
        kill_after,
        ..CampaignSpec::default()
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cde-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn drained(hub: &Arc<TelemetryHub>) -> String {
    let mut buf = Vec::new();
    hub.drain_jsonl(&mut buf).unwrap();
    strip_at_us(&String::from_utf8(buf).unwrap())
}

/// One campaign run end to end with no interruption; returns the
/// stripped telemetry stream of its (otherwise empty) hub.
fn uninterrupted_stream(farm: usize, seed: u64, tag: &str) -> String {
    let dir = fresh_dir(tag);
    let (platform, net, infra) = build_world(seed);
    let testbed = LiveTestbed::launch(platform, net, ResolverConfig::default()).unwrap();
    let transport = testbed.reactor_transport(quiet_config(seed)).unwrap();
    let hub = TelemetryHub::new(cde_telemetry::DEFAULT_RING_CAPACITY);
    let manager = CampaignManager::new(
        World { transport, infra },
        manager_config(dir, Arc::clone(&hub)),
    );
    let id = manager.submit(spec(farm, None)).unwrap();
    assert!(manager.join(&id));
    assert_eq!(manager.status(&id).unwrap().state, CampaignState::Done);
    drop(manager);
    drained(&hub)
}

/// The same campaign killed after `k` completions and resumed by a
/// fresh manager over the same testbed; returns the *resumed* hub's
/// stripped stream (the killed hub is discarded, as a dead process's
/// ring would be).
fn killed_and_resumed_stream(farm: usize, k: u64, seed: u64, tag: &str) -> String {
    let dir = fresh_dir(tag);
    let (platform, net, infra) = build_world(seed);
    let testbed = LiveTestbed::launch(platform, net, ResolverConfig::default()).unwrap();

    let transport = testbed.reactor_transport(quiet_config(seed)).unwrap();
    let hub_killed = TelemetryHub::new(cde_telemetry::DEFAULT_RING_CAPACITY);
    let manager = CampaignManager::new(
        World {
            transport,
            infra: infra.clone(),
        },
        manager_config(dir.clone(), hub_killed),
    );
    let id = manager.submit(spec(farm, Some(k))).unwrap();
    assert!(manager.join(&id));
    assert_eq!(manager.status(&id).unwrap().state, CampaignState::Killed);
    drop(manager);

    let transport = testbed.reactor_transport(quiet_config(seed)).unwrap();
    let hub = TelemetryHub::new(cde_telemetry::DEFAULT_RING_CAPACITY);
    let manager = CampaignManager::new(
        World { transport, infra },
        manager_config(dir, Arc::clone(&hub)),
    );
    let resumed = manager.resume_all().unwrap();
    assert_eq!(resumed, vec![id.clone()]);
    assert!(manager.join(&id));
    let status = manager.status(&id).unwrap();
    assert_eq!(status.state, CampaignState::Done);
    assert_eq!(status.resumed_from, k);
    drop(manager);
    drained(&hub)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn resumed_stream_is_byte_identical_to_uninterrupted(
        (farm, k) in (4usize..9, 0u64..64).prop_map(|(f, r)| (f, 1 + r % (f as u64 - 1))),
    ) {
        let seed = 1_000 + farm as u64 * 100 + k;
        let baseline = uninterrupted_stream(farm, seed, &format!("ckprop-a-{farm}-{k}"));
        let resumed = killed_and_resumed_stream(farm, k, seed, &format!("ckprop-b-{farm}-{k}"));
        prop_assert!(
            baseline.contains("\"kind\": \"campaign_tenant\""),
            "span stream must carry the tenant tag:\n{baseline}"
        );
        prop_assert!(
            baseline.lines().count() >= farm + 4,
            "expected begin + tenant + {farm} probe notes + finals:\n{baseline}"
        );
        prop_assert_eq!(
            &resumed,
            &baseline,
            "resumed stream diverged (farm {}, kill after {})",
            farm,
            k
        );
    }
}
