//! cde-serve: a multi-tenant campaign daemon over the shared reactor.
//!
//! The crate turns the one-shot campaign drivers of `cde-engine` into a
//! long-running service:
//!
//! - [`CampaignManager`] multiplexes many concurrent enumeration
//!   campaigns over one reactor, pacing each tenant with a weighted
//!   share of the global probe budget
//!   ([`cde_engine::WeightedRateLimiter`]).
//! - [`CampaignSnapshot`] gives every campaign a versioned on-disk
//!   checkpoint; a killed daemon resumes exactly where it stopped (the
//!   counting principle makes re-probing undecided indexes harmless —
//!   warm caches never re-fetch the honey record).
//! - [`ControlPlane`] is a dependency-free HTTP/1.1 server exposing
//!   submit/status/cancel/checkpoint plus Prometheus `/metrics`.
//! - [`Daemon`] wires a simulated testbed, the manager and the control
//!   plane into the `cde-serve` binary.
//!
//! See DESIGN.md §6g for the checkpoint-exactness argument and the
//! control-plane API table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod daemon;
pub mod http;
pub mod manager;
pub mod snapshot;
pub mod tenant;

pub use campaign::{valid_name, CampaignSpec, CampaignState, CampaignStatus, MAX_NAME_LEN};
pub use daemon::{Daemon, DaemonConfig};
pub use http::ControlPlane;
pub use manager::{CampaignManager, ManagerConfig, World};
pub use snapshot::{CampaignSnapshot, ProbeDisposition, MIN_SNAPSHOT_VERSION, SNAPSHOT_VERSION};
pub use tenant::{TenantRegistry, DEFAULT_WEIGHT};
