//! Versioned on-disk campaign snapshots.
//!
//! A snapshot is everything a fresh process needs to continue a
//! campaign *exactly*: the probe plan, the session-counter value the
//! session's names derive from, the per-probe outcome vector, and the
//! honey-fetch count drained so far. It deliberately does **not** store
//! any names or cache state — names regenerate deterministically from
//! the counter (see
//! [`CdeInfra::restore_session_counter`](cde_core::CdeInfra::restore_session_counter)),
//! and the counting principle makes re-probing undecided indexes safe:
//! a cache only fetches the honey record on its *first* miss, so probes
//! replayed after a crash can never inflate the observed count.
//!
//! The format is line-oriented `key=value` text with a magic+version
//! header, written atomically (temp file + rename) so a crash never
//! leaves a half-written snapshot behind. Unknown keys are ignored on
//! load, so newer writers stay readable by this parser.

use crate::campaign::CampaignState;
use cde_core::{ProbePlan, SequentialPlanner};
use cde_engine::rto::EstimatorSnapshot;
use std::fs;
use std::io::{self, Write};
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

/// Current snapshot format version. Bump on incompatible changes;
/// [`CampaignSnapshot::load`] rejects versions it does not understand.
///
/// v2 added the adaptive-timing state: per-ingress `rto` estimator
/// lines and the sequential planner's `seqplan` line. Both are absent
/// in v1 files, which still load (estimators start cold, the planner
/// stays disabled), so every pre-bump checkpoint remains resumable.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Oldest snapshot version [`CampaignSnapshot::decode`] still accepts.
pub const MIN_SNAPSHOT_VERSION: u32 = 1;

const MAGIC: &str = "cde-serve-checkpoint";

/// One probe index's fate, as recorded in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeDisposition {
    /// Not yet decided — a resumed campaign re-probes it.
    Pending,
    /// Completed with an answer.
    Answered,
    /// Exhausted every attempt without an answer.
    TimedOut,
}

impl ProbeDisposition {
    fn to_char(self) -> char {
        match self {
            ProbeDisposition::Pending => '.',
            ProbeDisposition::Answered => 'A',
            ProbeDisposition::TimedOut => 'T',
        }
    }

    fn from_char(c: char) -> Option<ProbeDisposition> {
        match c {
            '.' => Some(ProbeDisposition::Pending),
            'A' => Some(ProbeDisposition::Answered),
            'T' => Some(ProbeDisposition::TimedOut),
            _ => None,
        }
    }
}

/// A serializable point-in-time image of one campaign. See the module
/// docs for what is (and is not) stored.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSnapshot {
    /// Campaign id (`c-<n>`); also the snapshot's file stem.
    pub id: String,
    /// Owning tenant.
    pub tenant: String,
    /// Tenant fairness weight at snapshot time, so a cold resume can
    /// re-register the tenant before any control-plane call does.
    pub weight: f64,
    /// Human-facing campaign label.
    pub label: String,
    /// Campaign state at snapshot time. Only `Running` and `Paused`
    /// snapshots are resumable; `Done`/`Cancelled` are terminal records.
    pub state: CampaignState,
    /// Ingress address the campaign probes through.
    pub ingress: Ipv4Addr,
    /// Alias-farm size (distinct probe names).
    pub farm_size: usize,
    /// Carpet-bombing copies per farm name; total probes =
    /// `farm_size × redundancy`.
    pub redundancy: u64,
    /// Sliding-window size used for submission.
    pub window: usize,
    /// Auto-checkpoint cadence in completions (0 = on demand only).
    pub checkpoint_every: u64,
    /// `CdeInfra` session counter *before* the session opened; resume
    /// restores it and re-derives the exact session names.
    pub session_counter: u64,
    /// The probe plan the campaign was derived from.
    pub plan: ProbePlan,
    /// Honey fetches drained and counted up to this snapshot.
    pub observed: u64,
    /// Monotonic checkpoint sequence number for this campaign.
    pub seq: u64,
    /// Per-probe dispositions, indexed by probe number.
    pub outcomes: Vec<ProbeDisposition>,
    /// Learned per-ingress RTT estimator state at snapshot time, so a
    /// resumed campaign keeps its adaptive timeouts instead of paying
    /// the cold-start schedule again. Empty when the reactor runs the
    /// static policy (and in every v1 snapshot).
    pub rto: Vec<(Ipv4Addr, EstimatorSnapshot)>,
    /// Sequential stopping state, present only for campaigns submitted
    /// with early stopping enabled (and never in v1 snapshots).
    pub planner: Option<SequentialPlanner>,
}

impl CampaignSnapshot {
    /// The snapshot file name for campaign `id`.
    pub fn file_name(id: &str) -> String {
        format!("{id}.ckpt")
    }

    /// `true` when a fresh process may continue this campaign.
    pub fn resumable(&self) -> bool {
        matches!(self.state, CampaignState::Running | CampaignState::Paused)
    }

    /// Serializes to the versioned text format.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push_str(&format!(" v{SNAPSHOT_VERSION}\n"));
        out.push_str(&format!("id={}\n", self.id));
        out.push_str(&format!("tenant={}\n", self.tenant));
        out.push_str(&format!("weight={}\n", self.weight));
        out.push_str(&format!("label={}\n", self.label));
        out.push_str(&format!("state={}\n", self.state.as_str()));
        out.push_str(&format!("ingress={}\n", self.ingress));
        out.push_str(&format!("farm_size={}\n", self.farm_size));
        out.push_str(&format!("redundancy={}\n", self.redundancy));
        out.push_str(&format!("window={}\n", self.window));
        out.push_str(&format!("checkpoint_every={}\n", self.checkpoint_every));
        out.push_str(&format!("session_counter={}\n", self.session_counter));
        out.push_str(&format!("observed={}\n", self.observed));
        out.push_str(&format!("seq={}\n", self.seq));
        out.push_str(&self.plan.snapshot_line());
        out.push('\n');
        for (ingress, snap) in &self.rto {
            out.push_str(&format!("rto {ingress} {}\n", snap.snapshot_fields()));
        }
        if let Some(planner) = &self.planner {
            out.push_str(&planner.snapshot_line());
            out.push('\n');
        }
        out.push_str("outcomes=");
        for d in &self.outcomes {
            out.push(d.to_char());
        }
        out.push('\n');
        out
    }

    /// Parses the text format. Returns `InvalidData` on bad magic, an
    /// unsupported version, or missing/malformed fields.
    pub fn decode(text: &str) -> io::Result<CampaignSnapshot> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| bad("empty snapshot".into()))?;
        let version = header
            .strip_prefix(MAGIC)
            .and_then(|rest| rest.trim().strip_prefix('v'))
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| bad(format!("bad snapshot header: {header:?}")))?;
        if !(MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&version) {
            return Err(bad(format!(
                "snapshot version {version} unsupported \
                 (expected {MIN_SNAPSHOT_VERSION}..={SNAPSHOT_VERSION})"
            )));
        }
        let mut id = None;
        let mut tenant = None;
        let mut weight = None;
        let mut label = None;
        let mut state = None;
        let mut ingress = None;
        let mut farm_size = None;
        let mut redundancy = None;
        let mut window = None;
        let mut checkpoint_every = None;
        let mut session_counter = None;
        let mut observed = None;
        let mut seq = None;
        let mut plan = None;
        let mut outcomes = None;
        let mut rto = Vec::new();
        let mut planner = None;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if line.starts_with("plan ") {
                plan = Some(
                    ProbePlan::from_snapshot_line(line)
                        .ok_or_else(|| bad(format!("bad plan line: {line:?}")))?,
                );
                continue;
            }
            if let Some(rest) = line.strip_prefix("rto ") {
                let (ingress, fields) = rest
                    .split_once(' ')
                    .ok_or_else(|| bad(format!("bad rto line: {line:?}")))?;
                let ingress: Ipv4Addr = ingress
                    .parse()
                    .map_err(|_| bad(format!("bad rto ingress: {line:?}")))?;
                let snap = EstimatorSnapshot::from_snapshot_fields(fields)
                    .ok_or_else(|| bad(format!("bad rto fields: {line:?}")))?;
                rto.push((ingress, snap));
                continue;
            }
            if line.starts_with("seqplan ") {
                planner = Some(
                    SequentialPlanner::from_snapshot_line(line)
                        .ok_or_else(|| bad(format!("bad seqplan line: {line:?}")))?,
                );
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad(format!("bad snapshot line: {line:?}")))?;
            match key {
                "id" => id = Some(value.to_owned()),
                "tenant" => tenant = Some(value.to_owned()),
                "weight" => weight = Some(value.parse().map_err(|_| bad("bad weight".into()))?),
                "label" => label = Some(value.to_owned()),
                "state" => {
                    state = Some(
                        CampaignState::parse(value)
                            .ok_or_else(|| bad(format!("bad state: {value:?}")))?,
                    );
                }
                "ingress" => {
                    ingress = Some(value.parse().map_err(|_| bad("bad ingress".into()))?);
                }
                "farm_size" => {
                    farm_size = Some(value.parse().map_err(|_| bad("bad farm_size".into()))?);
                }
                "redundancy" => {
                    redundancy = Some(value.parse().map_err(|_| bad("bad redundancy".into()))?);
                }
                "window" => window = Some(value.parse().map_err(|_| bad("bad window".into()))?),
                "checkpoint_every" => {
                    checkpoint_every = Some(
                        value
                            .parse()
                            .map_err(|_| bad("bad checkpoint_every".into()))?,
                    );
                }
                "session_counter" => {
                    session_counter = Some(
                        value
                            .parse()
                            .map_err(|_| bad("bad session_counter".into()))?,
                    );
                }
                "observed" => {
                    observed = Some(value.parse().map_err(|_| bad("bad observed".into()))?);
                }
                "seq" => seq = Some(value.parse().map_err(|_| bad("bad seq".into()))?),
                "outcomes" => {
                    let parsed: Option<Vec<ProbeDisposition>> =
                        value.chars().map(ProbeDisposition::from_char).collect();
                    outcomes = Some(parsed.ok_or_else(|| bad("bad outcome character".into()))?);
                }
                // Forward compatibility: ignore keys from newer writers.
                _ => {}
            }
        }
        let missing = |field: &str| bad(format!("snapshot missing {field}"));
        Ok(CampaignSnapshot {
            id: id.ok_or_else(|| missing("id"))?,
            tenant: tenant.ok_or_else(|| missing("tenant"))?,
            weight: weight.ok_or_else(|| missing("weight"))?,
            label: label.ok_or_else(|| missing("label"))?,
            state: state.ok_or_else(|| missing("state"))?,
            ingress: ingress.ok_or_else(|| missing("ingress"))?,
            farm_size: farm_size.ok_or_else(|| missing("farm_size"))?,
            redundancy: redundancy.ok_or_else(|| missing("redundancy"))?,
            window: window.ok_or_else(|| missing("window"))?,
            checkpoint_every: checkpoint_every.ok_or_else(|| missing("checkpoint_every"))?,
            session_counter: session_counter.ok_or_else(|| missing("session_counter"))?,
            plan: plan.ok_or_else(|| missing("plan"))?,
            observed: observed.ok_or_else(|| missing("observed"))?,
            seq: seq.ok_or_else(|| missing("seq"))?,
            outcomes: outcomes.ok_or_else(|| missing("outcomes"))?,
            rto,
            planner,
        })
    }

    /// Writes the snapshot to `dir/<id>.ckpt` atomically: the full
    /// content lands in a temp file which is fsynced and renamed over
    /// the previous snapshot, so readers only ever see a complete image.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(Self::file_name(&self.id));
        let tmp = dir.join(format!("{}.ckpt.tmp", self.id));
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(self.encode().as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Loads a snapshot from `path`.
    pub fn load(path: &Path) -> io::Result<CampaignSnapshot> {
        CampaignSnapshot::decode(&fs::read_to_string(path)?)
    }

    /// Loads every `*.ckpt` snapshot under `dir`, sorted by id. Missing
    /// directories read as empty (nothing to resume).
    pub fn load_dir(dir: &Path) -> io::Result<Vec<CampaignSnapshot>> {
        let mut snapshots = Vec::new();
        let entries = match fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(snapshots),
            Err(err) => return Err(err),
        };
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("ckpt") {
                snapshots.push(CampaignSnapshot::load(&path)?);
            }
        }
        snapshots.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(snapshots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignSnapshot {
        CampaignSnapshot {
            id: "c-7".into(),
            tenant: "alice".into(),
            weight: 2.5,
            label: "nightly".into(),
            state: CampaignState::Running,
            ingress: Ipv4Addr::new(192, 0, 2, 1),
            farm_size: 5,
            redundancy: 3,
            window: 8,
            checkpoint_every: 4,
            session_counter: 11,
            plan: ProbePlan::for_bursty_target(6, 0.25, 3.0),
            observed: 4,
            seq: 2,
            outcomes: vec![
                ProbeDisposition::Answered,
                ProbeDisposition::Answered,
                ProbeDisposition::TimedOut,
                ProbeDisposition::Pending,
                ProbeDisposition::Answered,
            ],
            rto: vec![(
                Ipv4Addr::new(192, 0, 2, 1),
                EstimatorSnapshot {
                    srtt_us: 12_000,
                    rttvar_us: 3_000,
                    rto_us: 52_000,
                    timeout_count: 1,
                    samples: 9,
                    timeouts: 2,
                },
            )],
            planner: Some({
                let mut p = SequentialPlanner::new(0.001);
                p.record_delivered(3);
                p.record_delivered(0);
                p.record_lost(0);
                p
            }),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample();
        let decoded = CampaignSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let text = sample().encode().replacen("v2", "v999", 1);
        let err = CampaignSnapshot::decode(&text).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version 999"), "{err}");
    }

    #[test]
    fn v1_snapshots_still_load() {
        // A v1 file has no rto/seqplan lines: estimators start cold and
        // the planner stays disabled, but everything else round-trips.
        let mut old = sample();
        old.rto.clear();
        old.planner = None;
        let text = old.encode().replacen("v2", "v1", 1);
        let decoded = CampaignSnapshot::decode(&text).unwrap();
        assert_eq!(decoded, old);
        assert!(decoded.rto.is_empty());
        assert!(decoded.planner.is_none());
    }

    #[test]
    fn malformed_adaptive_lines_are_rejected() {
        let good = sample().encode();
        for (from, to) in [
            ("rto 192.0.2.1 ", "rto not-an-ip "),
            ("srtt_us=12000", "srtt_us=banana"),
            ("seqplan epsilon=0.001", "seqplan epsilon=7.0"),
        ] {
            let text = good.replacen(from, to, 1);
            assert_ne!(text, good, "pattern {from:?} must appear in encode()");
            assert!(CampaignSnapshot::decode(&text).is_err(), "{from} -> {to}");
        }
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let full = sample().encode();
        let cut = &full[..full.len() / 2];
        assert!(CampaignSnapshot::decode(cut).is_err());
        assert!(CampaignSnapshot::decode("").is_err());
        assert!(CampaignSnapshot::decode("not-a-snapshot v1\n").is_err());
    }

    #[test]
    fn write_is_atomic_and_listable() {
        let dir = std::env::temp_dir().join(format!("cde-serve-snap-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let snap = sample();
        let path = snap.write_to(&dir).unwrap();
        assert_eq!(path, dir.join("c-7.ckpt"));
        assert!(!dir.join("c-7.ckpt.tmp").exists(), "temp file renamed away");
        // Overwrite with a later image; load sees only the newest.
        let mut later = snap.clone();
        later.seq = 3;
        later.outcomes[3] = ProbeDisposition::Answered;
        later.write_to(&dir).unwrap();
        let listed = CampaignSnapshot::load_dir(&dir).unwrap();
        assert_eq!(listed, vec![later]);
        // A directory that never existed is just "nothing to resume".
        assert!(CampaignSnapshot::load_dir(&dir.join("absent"))
            .unwrap()
            .is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
