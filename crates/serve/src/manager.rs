//! The campaign manager: many concurrent campaigns multiplexed over one
//! shared reactor, with weighted per-tenant pacing and checkpoint/resume.
//!
//! # Ownership
//!
//! The manager owns the [`World`] — the reactor-backed transport plus
//! the [`CdeInfra`] name authority — behind one mutex. Campaign workers
//! never touch the world on their hot path: they submit probes through
//! a cloned [`ReactorHandle`] and receive completions on their own
//! channel. The world lock is taken only to open sessions (submission /
//! resume) and to drain observation evidence at checkpoint time.
//!
//! # Checkpoint exactness
//!
//! Serving-side observations (honey fetches seen by the nameserver) are
//! drained from the resolver's shared channel **only** inside
//! [`CampaignManager::checkpoint_campaign`]: drain → count → write temp
//! file → atomic rename. Between checkpoints the events stay queued on
//! the resolver's bounded channel, which survives the death of this
//! process's transport — a resumed manager's fresh transport drains the
//! pre-kill remainder. Combined with the counting principle (warm
//! caches never re-fetch the honey record, so re-probing undecided
//! indexes cannot inflate the count), `snapshot.observed + count(new
//! net)` is exact across kill/resume. The only loss window is a crash
//! *between* the drain and the rename, which is a handful of
//! microseconds of file IO; see DESIGN.md §6g.

use crate::campaign::{valid_name, CampaignSpec, CampaignState, CampaignStatus};
use crate::snapshot::{CampaignSnapshot, ProbeDisposition};
use crate::tenant::TenantRegistry;
use cde_analysis::estimators::estimate_cache_count;
use cde_core::{CdeInfra, ProbePlan, SequentialPlanner, Session};
use cde_dns::{Rcode, RecordType};
use cde_engine::rto::EstimatorSnapshot;
use cde_engine::scheduler::{CampaignReport, Probe, ProbeOutcome};
use cde_engine::{
    EngineMetrics, FlightRecorder, RateConfig, ReactorHandle, ReactorTransport, RtoTable,
    TenantRate, Transport, TransportReply, WeightedRateLimiter,
};
use cde_pulse::ExemplarReservoir;
use cde_telemetry::{CampaignSpan, MetricsRegistry, TelemetryHub};
use crossbeam::channel::{unbounded, RecvTimeoutError};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::fs;
use std::io;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Flag-check granularity for pacing sleeps and completion waits, so
/// cancel/pause/kill requests take effect promptly.
const POLL: Duration = Duration::from_millis(25);

/// The measurement world a manager drives: one reactor-backed transport
/// (owning the canonical net) plus the name authority deriving session
/// names over it.
#[derive(Debug)]
pub struct World {
    /// Live transport over the deployment (testbed or real resolvers).
    pub transport: ReactorTransport,
    /// The CDE zone authority handle.
    pub infra: CdeInfra,
}

/// Construction knobs for a [`CampaignManager`].
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Directory campaign snapshots are written to.
    pub checkpoint_dir: PathBuf,
    /// Global probe budget shared (weighted) between tenants.
    pub global_rate: RateConfig,
    /// Hub campaign spans are emitted into.
    pub hub: Arc<TelemetryHub>,
    /// Registry to export tenant counters and limiter shares into.
    pub registry: Option<Arc<MetricsRegistry>>,
}

impl ManagerConfig {
    /// A config with a generous default budget (2000 probes/s, burst 8)
    /// and a fresh enabled hub.
    pub fn new(checkpoint_dir: PathBuf) -> ManagerConfig {
        ManagerConfig {
            checkpoint_dir,
            global_rate: RateConfig {
                per_second: 2000.0,
                burst: 8.0,
            },
            hub: TelemetryHub::new(cde_telemetry::DEFAULT_RING_CAPACITY),
            registry: None,
        }
    }
}

#[derive(Debug)]
struct Progress {
    state: CampaignState,
    outcomes: Vec<ProbeDisposition>,
    completed: u64,
    answered: u64,
    timeouts: u64,
    observed: u64,
    estimated: u64,
    fully_accounted: bool,
    resumed_from: u64,
    checkpoints: u64,
    checkpoint_path: Option<PathBuf>,
}

/// Sequential-stopping state for one campaign: the planner plus the
/// high-water marks of the tallies already fed into it, so checkpoint
/// drains feed only the delta since the previous drain.
#[derive(Debug)]
struct PlannerState {
    planner: SequentialPlanner,
    fed_answered: u64,
    fed_timeouts: u64,
    fed_observed: u64,
}

impl PlannerState {
    fn fresh(planner: SequentialPlanner) -> PlannerState {
        PlannerState {
            fed_answered: planner.delivered(),
            fed_timeouts: planner.probes() - planner.delivered(),
            fed_observed: planner.observed(),
            planner,
        }
    }

    /// Feeds the deltas since the last drain. Evidence is drained in
    /// batches, so the exact interleaving is unknown; recording the
    /// quiet events first and attaching all new-cache evidence to the
    /// *last* event keeps the quiet run a lower bound on reality — the
    /// rule can only fire later than a per-probe feed would, never
    /// earlier.
    fn feed(&mut self, answered: u64, timeouts: u64, observed: u64) {
        let new_ans = answered.saturating_sub(self.fed_answered);
        let new_lost = timeouts.saturating_sub(self.fed_timeouts);
        let new_caches = observed.saturating_sub(self.fed_observed);
        for i in 0..new_lost {
            let last = i + 1 == new_lost && new_ans == 0;
            self.planner.record_lost(if last { new_caches } else { 0 });
        }
        for i in 0..new_ans {
            let last = i + 1 == new_ans;
            self.planner
                .record_delivered(if last { new_caches } else { 0 });
        }
        if new_ans == 0 && new_lost == 0 && new_caches > 0 {
            // Evidence with no completion delta: a response was lost but
            // the query landed. Record it as a lost probe carrying the
            // evidence so ω stays in sync.
            self.planner.record_lost(new_caches);
        }
        self.fed_answered = answered;
        self.fed_timeouts = timeouts;
        self.fed_observed = observed;
    }
}

/// One campaign's immutable parameters plus its mutable progress.
#[derive(Debug)]
pub(crate) struct CampaignHandle {
    id: String,
    tenant: &'static str,
    tenant_name: String,
    label: String,
    ingress: Ipv4Addr,
    farm_size: usize,
    redundancy: u64,
    window: usize,
    checkpoint_every: u64,
    kill_after: Option<u64>,
    session_counter: u64,
    plan: ProbePlan,
    session: Session,
    total: u64,
    /// Honey fetches accounted by snapshots of *previous* processes;
    /// the live count in this world's net adds on top.
    observed_base: u64,
    progress: Mutex<Progress>,
    /// Sequential stopping state; `None` runs the fixed plan to
    /// exhaustion. Fed only at checkpoint drains (the single place
    /// observation evidence is counted), never on the probe hot path.
    sequential: Mutex<Option<PlannerState>>,
    cancel: AtomicBool,
    pause: AtomicBool,
    kill: AtomicBool,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl CampaignHandle {
    /// True once the sequential stopping rule has fired.
    fn sequential_stopped(&self) -> bool {
        self.sequential
            .lock()
            .as_ref()
            .is_some_and(|s| s.planner.should_stop())
    }
}

/// The multi-tenant campaign daemon core. See the module docs.
pub struct CampaignManager {
    world: Mutex<World>,
    handle: ReactorHandle,
    /// The reactor's adaptive RTO table, when one is configured; cloned
    /// out once so checkpoints and resumes never take the world lock to
    /// reach estimator state.
    rto: Option<Arc<RtoTable>>,
    /// The reactor's flight recorder, when one is configured; cloned out
    /// once so dump triggers never take the world lock.
    flight: Option<Arc<FlightRecorder>>,
    grace: Duration,
    limiter: Arc<WeightedRateLimiter>,
    tenants: Arc<TenantRegistry>,
    hub: Arc<TelemetryHub>,
    checkpoint_dir: PathBuf,
    campaigns: Mutex<Vec<Arc<CampaignHandle>>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for CampaignManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignManager")
            .field("checkpoint_dir", &self.checkpoint_dir)
            .field("campaigns", &self.campaigns.lock().len())
            .finish()
    }
}

impl CampaignManager {
    /// Wraps `world` in a manager. The reactor behind the transport
    /// stays under the manager's control; its submission handle is
    /// cloned out once here.
    pub fn new(world: World, config: ManagerConfig) -> Arc<CampaignManager> {
        let handle = world.transport.reactor().handle();
        let rto = world.transport.reactor().rto();
        let flight = world.transport.reactor().flight();
        let grace = world.transport.reactor().policy().worst_case() + Duration::from_secs(2);
        let limiter = Arc::new(WeightedRateLimiter::new(config.global_rate));
        let tenants = TenantRegistry::new();
        if let Some(registry) = &config.registry {
            registry.register(Arc::clone(&tenants) as Arc<dyn cde_telemetry::Collector>);
            registry.register(Arc::clone(&limiter) as Arc<dyn cde_telemetry::Collector>);
        }
        Arc::new(CampaignManager {
            world: Mutex::new(world),
            handle,
            rto,
            flight,
            grace,
            limiter,
            tenants,
            hub: config.hub,
            checkpoint_dir: config.checkpoint_dir,
            campaigns: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
        })
    }

    /// The tenant registry (names, weights, per-tenant counters).
    pub fn tenants(&self) -> &Arc<TenantRegistry> {
        &self.tenants
    }

    /// The weighted limiter sharing the global probe budget.
    pub fn limiter(&self) -> &Arc<WeightedRateLimiter> {
        &self.limiter
    }

    /// Where snapshots are written.
    pub fn checkpoint_dir(&self) -> &Path {
        &self.checkpoint_dir
    }

    /// The hub campaign spans are emitted into.
    pub fn hub(&self) -> &Arc<TelemetryHub> {
        &self.hub
    }

    /// The shared reactor's engine metrics (merged across shards on
    /// snapshot; per-shard blocks via `shard_snapshot`). The health
    /// sampler reads these without taking the world lock.
    pub fn engine_metrics(&self) -> Arc<EngineMetrics> {
        self.handle.metrics()
    }

    /// The reactor's slow-probe exemplar reservoir, when the reactor was
    /// launched with pulse options.
    pub fn exemplars(&self) -> Option<Arc<ExemplarReservoir>> {
        self.handle.exemplars()
    }

    /// The reactor's flight recorder, when the reactor was launched
    /// with flight options.
    pub fn flight(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// Snapshots the flight rings to a versioned JSONL artifact
    /// (`flight-<n>.jsonl`, monotonically numbered) alongside the live
    /// checkpoints. Like checkpoints, the dump lands via temp file +
    /// fsync + atomic rename, so a kill -9 at any point never leaves a
    /// torn artifact. Returns `Ok(None)` when no flight recorder is
    /// configured.
    pub fn write_flight_dump(&self) -> io::Result<Option<PathBuf>> {
        let Some(flight) = &self.flight else {
            return Ok(None);
        };
        let jsonl = flight.render_jsonl();
        let next = fs::read_dir(&self.checkpoint_dir)?
            .filter_map(|entry| {
                let name = entry.ok()?.file_name().into_string().ok()?;
                let idx = name.strip_prefix("flight-")?.strip_suffix(".jsonl")?;
                idx.parse::<u64>().ok()
            })
            .max()
            .map_or(0, |max| max + 1);
        let path = self.checkpoint_dir.join(format!("flight-{next}.jsonl"));
        let tmp = self.checkpoint_dir.join(format!("flight-{next}.jsonl.tmp"));
        {
            let mut file = fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut file, jsonl.as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(Some(path))
    }

    /// The current per-ingress RTT estimator snapshots, empty when the
    /// reactor runs the static retry policy. Sorted by ingress address.
    pub fn rto_snapshots(&self) -> Vec<(Ipv4Addr, EstimatorSnapshot)> {
        self.rto
            .as_ref()
            .map(|table| table.snapshots())
            .unwrap_or_default()
    }

    /// Registers (or re-weights) a tenant in both the registry and the
    /// weighted limiter.
    pub fn register_tenant(
        &self,
        name: &str,
        weight: f64,
        cap: Option<RateConfig>,
    ) -> io::Result<()> {
        if !valid_name(name) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid tenant name {name:?}"),
            ));
        }
        if !(weight > 0.0 && weight.is_finite()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("tenant weight must be positive and finite, got {weight}"),
            ));
        }
        self.tenants.register(name, weight);
        self.limiter.register(name, TenantRate { weight, cap });
        Ok(())
    }

    /// Validates `spec`, derives its plan, opens a session and spawns
    /// the campaign worker. Returns the new campaign id.
    pub fn submit(self: &Arc<Self>, spec: CampaignSpec) -> io::Result<String> {
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
        if !valid_name(&spec.tenant) {
            return Err(invalid(format!("invalid tenant name {:?}", spec.tenant)));
        }
        if !valid_name(&spec.label) {
            return Err(invalid(format!("invalid label {:?}", spec.label)));
        }
        if !(0.0..1.0).contains(&spec.loss_hint) {
            return Err(invalid(format!(
                "loss_hint {} outside [0, 1)",
                spec.loss_hint
            )));
        }
        if spec.sequential_epsilon != 0.0 && !(0.0..1.0).contains(&spec.sequential_epsilon) {
            return Err(invalid(format!(
                "sequential_epsilon {} outside [0, 1)",
                spec.sequential_epsilon
            )));
        }
        let n_max = spec.caches_hint.max(1);
        let plan = if spec.mean_burst_hint > 1.0 {
            ProbePlan::for_bursty_target(n_max, spec.loss_hint, spec.mean_burst_hint)
        } else {
            ProbePlan::for_target(n_max, spec.loss_hint)
        };
        let farm_size = if spec.farm_size > 0 {
            spec.farm_size
        } else {
            plan.probes.clamp(1, 4096) as usize
        };
        let redundancy = if spec.redundancy > 0 {
            spec.redundancy
        } else {
            plan.redundancy.max(1)
        };
        let total = farm_size as u64 * redundancy;
        let tenant = self.tenants.intern(&spec.tenant);
        let id = format!("c-{}", self.next_id.fetch_add(1, Ordering::SeqCst));
        let (session_counter, session) = {
            let mut world = self.world.lock();
            let counter_before = world.infra.session_counter();
            let World { transport, infra } = &mut *world;
            let session = infra.new_session(transport.net_mut(), farm_size);
            transport.sync_serving_side();
            (counter_before, session)
        };
        self.tenants.record_campaign(&spec.tenant);
        let camp = Arc::new(CampaignHandle {
            id: id.clone(),
            tenant,
            tenant_name: spec.tenant,
            label: spec.label,
            ingress: spec.ingress,
            farm_size,
            redundancy,
            window: spec.window.max(1),
            checkpoint_every: spec.checkpoint_every,
            kill_after: spec.kill_after,
            session_counter,
            plan,
            session,
            total,
            observed_base: 0,
            progress: Mutex::new(Progress {
                state: CampaignState::Running,
                outcomes: vec![ProbeDisposition::Pending; total as usize],
                completed: 0,
                answered: 0,
                timeouts: 0,
                observed: 0,
                estimated: 0,
                fully_accounted: false,
                resumed_from: 0,
                checkpoints: 0,
                checkpoint_path: None,
            }),
            sequential: Mutex::new(if spec.sequential_epsilon > 0.0 {
                Some(PlannerState::fresh(SequentialPlanner::new(
                    spec.sequential_epsilon,
                )))
            } else {
                None
            }),
            cancel: AtomicBool::new(false),
            pause: AtomicBool::new(false),
            kill: AtomicBool::new(false),
            thread: Mutex::new(None),
        });
        self.campaigns.lock().push(Arc::clone(&camp));
        self.spawn_worker(camp);
        Ok(id)
    }

    /// Continues a campaign from its snapshot: restores the session
    /// counter, re-derives the exact session names, seeds progress from
    /// the recorded outcomes and spawns a worker that probes only the
    /// still-undecided indexes.
    pub fn resume(self: &Arc<Self>, snap: CampaignSnapshot) -> io::Result<String> {
        if !snap.resumable() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("snapshot {} is terminal ({})", snap.id, snap.state.as_str()),
            ));
        }
        if snap.outcomes.len() != snap.farm_size * snap.redundancy as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "snapshot {}: {} outcomes for {}×{} probes",
                    snap.id,
                    snap.outcomes.len(),
                    snap.farm_size,
                    snap.redundancy
                ),
            ));
        }
        if !self.tenants.known(&snap.tenant) {
            self.register_tenant(&snap.tenant, snap.weight, None)?;
        }
        let tenant = self.tenants.intern(&snap.tenant);
        // Learned RTOs ride the snapshot: seed this process's estimator
        // table so the resumed campaign keeps its adaptive deadlines
        // instead of re-learning from the cold-start schedule.
        if let Some(table) = &self.rto {
            for (ingress, estimator) in &snap.rto {
                table.restore(*ingress, estimator);
            }
        }
        // Keep fresh ids above every resumed id.
        if let Some(n) = snap
            .id
            .strip_prefix("c-")
            .and_then(|s| s.parse::<u64>().ok())
        {
            self.next_id.fetch_max(n + 1, Ordering::SeqCst);
        }
        let session = {
            let mut world = self.world.lock();
            let current = world.infra.session_counter();
            world.infra.restore_session_counter(snap.session_counter);
            let World { transport, infra } = &mut *world;
            let session = infra.new_session(transport.net_mut(), snap.farm_size);
            // Never rewind below sessions already live in this world.
            let after = world.infra.session_counter();
            world.infra.restore_session_counter(current.max(after));
            world.transport.sync_serving_side();
            session
        };
        let completed = snap
            .outcomes
            .iter()
            .filter(|d| **d != ProbeDisposition::Pending)
            .count() as u64;
        let answered = snap
            .outcomes
            .iter()
            .filter(|d| **d == ProbeDisposition::Answered)
            .count() as u64;
        let total = snap.outcomes.len() as u64;
        let camp = Arc::new(CampaignHandle {
            id: snap.id.clone(),
            tenant,
            tenant_name: snap.tenant.clone(),
            label: snap.label.clone(),
            ingress: snap.ingress,
            farm_size: snap.farm_size,
            redundancy: snap.redundancy,
            window: snap.window.max(1),
            checkpoint_every: snap.checkpoint_every,
            kill_after: None,
            session_counter: snap.session_counter,
            plan: snap.plan,
            session,
            total,
            observed_base: snap.observed,
            progress: Mutex::new(Progress {
                state: CampaignState::Running,
                outcomes: snap.outcomes,
                completed,
                answered,
                timeouts: completed - answered,
                observed: snap.observed,
                estimated: 0,
                fully_accounted: false,
                resumed_from: completed,
                checkpoints: snap.seq,
                checkpoint_path: Some(
                    self.checkpoint_dir
                        .join(CampaignSnapshot::file_name(&snap.id)),
                ),
            }),
            sequential: Mutex::new(snap.planner.map(PlannerState::fresh)),
            cancel: AtomicBool::new(false),
            pause: AtomicBool::new(false),
            kill: AtomicBool::new(false),
            thread: Mutex::new(None),
        });
        let id = snap.id;
        self.campaigns.lock().push(Arc::clone(&camp));
        self.spawn_worker(camp);
        Ok(id)
    }

    /// Resumes every resumable snapshot in the checkpoint directory
    /// (the daemon's `--resume` startup path). Returns resumed ids.
    pub fn resume_all(self: &Arc<Self>) -> io::Result<Vec<String>> {
        let mut ids = Vec::new();
        for snap in CampaignSnapshot::load_dir(&self.checkpoint_dir)? {
            if snap.resumable() {
                ids.push(self.resume(snap)?);
            }
        }
        Ok(ids)
    }

    fn find(&self, id: &str) -> Option<Arc<CampaignHandle>> {
        self.campaigns
            .lock()
            .iter()
            .find(|c| c.id == id)
            .map(Arc::clone)
    }

    /// The status of campaign `id`, if known to this process.
    pub fn status(&self, id: &str) -> Option<CampaignStatus> {
        self.find(id).map(|camp| Self::status_of(&camp))
    }

    /// Statuses of every campaign this process has seen, oldest first.
    pub fn list(&self) -> Vec<CampaignStatus> {
        self.campaigns
            .lock()
            .iter()
            .map(|c| Self::status_of(c))
            .collect()
    }

    fn status_of(camp: &CampaignHandle) -> CampaignStatus {
        let progress = camp.progress.lock();
        CampaignStatus {
            id: camp.id.clone(),
            tenant: camp.tenant_name.clone(),
            label: camp.label.clone(),
            state: progress.state,
            total: camp.total,
            completed: progress.completed,
            answered: progress.answered,
            timeouts: progress.timeouts,
            observed: progress.observed,
            estimated: progress.estimated,
            fully_accounted: progress.fully_accounted,
            resumed_from: progress.resumed_from,
            checkpoints: progress.checkpoints,
            checkpoint_path: progress.checkpoint_path.clone(),
        }
    }

    /// Rebuilds the engine-level [`CampaignReport`] for campaign `id`
    /// from its recorded outcomes (latencies are not persisted, so
    /// answered replies carry `latency: None`).
    pub fn report(&self, id: &str) -> Option<CampaignReport> {
        let camp = self.find(id)?;
        let progress = camp.progress.lock();
        let outcomes: Vec<ProbeOutcome> = progress
            .outcomes
            .iter()
            .enumerate()
            .filter(|(_, d)| **d != ProbeDisposition::Pending)
            .map(|(i, d)| ProbeOutcome {
                probe: Probe::a(
                    camp.ingress,
                    camp.session.farm[i % camp.session.farm.len()].clone(),
                ),
                reply: match d {
                    ProbeDisposition::Answered => TransportReply::Answered {
                        latency: None,
                        rcode: Rcode::NoError,
                    },
                    _ => TransportReply::TimedOut,
                },
            })
            .collect();
        Some(CampaignReport {
            outcomes,
            sent: progress.completed,
            received: progress.answered,
            timeouts: progress.timeouts,
            retries: 0,
            rate_limit_stalls: 0,
        })
    }

    /// Asks campaign `id` to stop. The worker drains its in-flight
    /// probes, writes a terminal snapshot and ends its span. Returns
    /// `false` for unknown ids.
    pub fn cancel(&self, id: &str) -> bool {
        match self.find(id) {
            Some(camp) => {
                camp.cancel.store(true, Ordering::SeqCst);
                true
            }
            None => false,
        }
    }

    /// Writes a snapshot of campaign `id` right now (the control
    /// plane's `POST /v1/campaigns/<id>/checkpoint`). Safe to call
    /// while the worker runs — progress is locked for the copy and the
    /// file lands atomically.
    pub fn checkpoint_now(&self, id: &str) -> io::Result<PathBuf> {
        let camp = self.find(id).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("unknown campaign {id}"))
        })?;
        let state = camp.progress.lock().state;
        self.checkpoint_campaign(&camp, state)
    }

    /// Drains observation evidence, counts this campaign's honey
    /// fetches and writes its snapshot atomically. The single place
    /// observations are consumed — see the module docs.
    fn checkpoint_campaign(
        &self,
        camp: &CampaignHandle,
        state: CampaignState,
    ) -> io::Result<PathBuf> {
        let observed = {
            let mut world = self.world.lock();
            world.transport.drain_serving_observations();
            let World { transport, infra } = &mut *world;
            camp.observed_base
                + infra.count_honey_fetches(transport.net(), &camp.session.honey) as u64
        };
        // Feed the sequential planner the tallies gathered since the
        // previous drain — this is the only place fresh distinct-cache
        // evidence becomes visible, so it is also where stopping
        // decisions advance.
        let planner = {
            let (answered, timeouts) = {
                let progress = camp.progress.lock();
                (progress.answered, progress.timeouts)
            };
            let mut sequential = camp.sequential.lock();
            sequential.as_mut().map(|state| {
                state.feed(answered, timeouts, observed);
                state.planner.clone()
            })
        };
        let rto = self
            .rto
            .as_ref()
            .map(|table| table.snapshots())
            .unwrap_or_default();
        let snap;
        {
            let mut progress = camp.progress.lock();
            progress.observed = observed;
            progress.checkpoints += 1;
            snap = CampaignSnapshot {
                id: camp.id.clone(),
                tenant: camp.tenant_name.clone(),
                weight: self.tenants.weight(&camp.tenant_name).unwrap_or(1.0),
                label: camp.label.clone(),
                state,
                ingress: camp.ingress,
                farm_size: camp.farm_size,
                redundancy: camp.redundancy,
                window: camp.window,
                checkpoint_every: camp.checkpoint_every,
                session_counter: camp.session_counter,
                plan: camp.plan,
                observed,
                seq: progress.checkpoints,
                outcomes: progress.outcomes.clone(),
                rto,
                planner,
            };
        }
        let path = snap.write_to(&self.checkpoint_dir)?;
        camp.progress.lock().checkpoint_path = Some(path.clone());
        Ok(path)
    }

    /// Test hook simulating `kill -9`: every worker abandons its
    /// campaign immediately — no checkpoint, no final events — and the
    /// reactor is left to be torn down abruptly when the manager drops.
    /// Snapshots on disk stay exactly as the last checkpoint left them.
    pub fn kill(&self) {
        let campaigns: Vec<Arc<CampaignHandle>> = self.campaigns.lock().clone();
        for camp in &campaigns {
            camp.kill.store(true, Ordering::SeqCst);
        }
        self.join_all();
    }

    /// Graceful shutdown: pauses every running campaign (each writes a
    /// resumable snapshot), then drains the reactor. Returns `true`
    /// when the reactor drained within `timeout`. Flush telemetry
    /// *after* this returns — the hub then holds every event.
    pub fn graceful_shutdown(&self, timeout: Duration) -> bool {
        let campaigns: Vec<Arc<CampaignHandle>> = self.campaigns.lock().clone();
        for camp in &campaigns {
            camp.pause.store(true, Ordering::SeqCst);
        }
        self.join_all();
        self.world.lock().transport.shutdown_graceful(timeout)
    }

    /// Blocks until campaign `id`'s worker thread exits. Returns
    /// `false` for unknown ids.
    pub fn join(&self, id: &str) -> bool {
        match self.find(id) {
            Some(camp) => {
                if let Some(thread) = camp.thread.lock().take() {
                    let _ = thread.join();
                }
                true
            }
            None => false,
        }
    }

    /// Blocks until every worker thread exits.
    pub fn join_all(&self) {
        let campaigns: Vec<Arc<CampaignHandle>> = self.campaigns.lock().clone();
        for camp in campaigns {
            if let Some(thread) = camp.thread.lock().take() {
                let _ = thread.join();
            }
        }
    }

    fn spawn_worker(self: &Arc<Self>, camp: Arc<CampaignHandle>) {
        let mgr = Arc::clone(self);
        let camp_for_thread = Arc::clone(&camp);
        let thread = std::thread::Builder::new()
            .name(format!("cde-serve-{}", camp.id))
            .spawn(move || run_worker(&mgr, &camp_for_thread))
            .expect("spawn campaign worker");
        *camp.thread.lock() = Some(thread);
    }
}

/// Emits the contiguous decided prefix as ordered per-probe notes.
///
/// Completions can land out of order under a wide window, but notes are
/// only emitted for index `i` once indexes `0..i` are all decided — so
/// the note stream is a deterministic function of the final outcome
/// vector, independent of completion order, and a resumed campaign's
/// replayed prefix is byte-identical to the uninterrupted run's.
fn advance_notes(span: &CampaignSpan, outcomes: &[ProbeDisposition], emit_cursor: &mut usize) {
    while *emit_cursor < outcomes.len() {
        match outcomes[*emit_cursor] {
            ProbeDisposition::Pending => break,
            ProbeDisposition::Answered => span.note("probe_ok", *emit_cursor as u64),
            ProbeDisposition::TimedOut => span.note("probe_timeout", *emit_cursor as u64),
        }
        *emit_cursor += 1;
    }
}

/// Sleeps `wait` in small slices, returning early if the campaign was
/// asked to stop — a tenant paced at a slow share must still react to
/// cancel/kill promptly.
fn paced_sleep(camp: &CampaignHandle, wait: Duration) {
    let deadline = Instant::now() + wait;
    loop {
        if camp.cancel.load(Ordering::SeqCst)
            || camp.pause.load(Ordering::SeqCst)
            || camp.kill.load(Ordering::SeqCst)
        {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(POLL));
    }
}

fn record_outcome(
    mgr: &CampaignManager,
    camp: &CampaignHandle,
    span: &CampaignSpan,
    idx: usize,
    answered: bool,
    emit_cursor: &mut usize,
) {
    let mut progress = camp.progress.lock();
    if progress.outcomes[idx] != ProbeDisposition::Pending {
        return; // duplicate completion; first one wins
    }
    progress.outcomes[idx] = if answered {
        ProbeDisposition::Answered
    } else {
        ProbeDisposition::TimedOut
    };
    progress.completed += 1;
    if answered {
        progress.answered += 1;
        mgr.tenants.record_answered(&camp.tenant_name);
    } else {
        progress.timeouts += 1;
    }
    advance_notes(span, &progress.outcomes, emit_cursor);
}

/// The campaign worker: weighted pacing, sliding-window submission over
/// the shared reactor, deterministic span events, periodic checkpoints.
fn run_worker(mgr: &Arc<CampaignManager>, camp: &Arc<CampaignHandle>) {
    let span = mgr.hub.begin_campaign("serve_campaign", camp.total);
    span.tenant(camp.tenant);
    let mut emit_cursor = 0usize;
    // Replay: the decided prefix restored from a snapshot emits its
    // notes first, exactly as the uninterrupted run would have.
    advance_notes(&span, &camp.progress.lock().outcomes, &mut emit_cursor);

    let (done_tx, done_rx) = unbounded();
    let total = camp.total as usize;
    let mut in_flight: HashSet<usize> = HashSet::new();
    let mut next_submit = 0usize;
    let mut completions_this_run = 0u64;
    let mut last_activity = Instant::now();

    loop {
        if camp.kill.load(Ordering::SeqCst) {
            // Abrupt abandonment: no checkpoint, no final notes. The
            // span's Drop emits campaign_end with last-known tallies.
            camp.progress.lock().state = CampaignState::Killed;
            return;
        }
        let stopping = camp.cancel.load(Ordering::SeqCst) || camp.pause.load(Ordering::SeqCst);
        // The sequential rule only advances at checkpoint drains, so
        // `converged` flips between iterations, never mid-submission.
        let converged = camp.sequential_stopped();
        if !stopping && !converged {
            while in_flight.len() < camp.window && next_submit < total {
                if camp.progress.lock().outcomes[next_submit] != ProbeDisposition::Pending {
                    next_submit += 1; // restored from snapshot; skip
                    continue;
                }
                let wait = mgr.limiter.debit_n(camp.tenant, 1);
                if !wait.is_zero() {
                    paced_sleep(camp, wait);
                    if camp.cancel.load(Ordering::SeqCst)
                        || camp.pause.load(Ordering::SeqCst)
                        || camp.kill.load(Ordering::SeqCst)
                    {
                        break;
                    }
                }
                mgr.tenants.record_probe(&camp.tenant_name);
                let qname = camp.session.farm[next_submit % camp.session.farm.len()].clone();
                if mgr.handle.submit(
                    next_submit as u64,
                    camp.ingress,
                    qname,
                    RecordType::A,
                    &done_tx,
                ) {
                    in_flight.insert(next_submit);
                    last_activity = Instant::now();
                } else {
                    // Reactor gone: the probe can never run.
                    record_outcome(mgr, camp, &span, next_submit, false, &mut emit_cursor);
                    completions_this_run += 1;
                }
                next_submit += 1;
            }
        }

        let completed = camp.progress.lock().completed;
        if completed >= camp.total {
            finalize(mgr, camp, span);
            return;
        }
        if converged && !stopping && in_flight.is_empty() {
            // The exact-count criterion holds: end the campaign with the
            // undecided remainder unspent.
            finalize(mgr, camp, span);
            return;
        }
        if stopping && in_flight.is_empty() {
            stop(mgr, camp, span);
            return;
        }

        match done_rx.recv_timeout(POLL) {
            Ok(completion) => {
                let idx = completion.token as usize;
                if in_flight.remove(&idx) {
                    record_outcome(
                        mgr,
                        camp,
                        &span,
                        idx,
                        completion.reply.is_answered(),
                        &mut emit_cursor,
                    );
                    completions_this_run += 1;
                    last_activity = Instant::now();
                    let completed_now = camp.progress.lock().completed;
                    #[allow(clippy::manual_is_multiple_of)]
                    // u64::is_multiple_of needs 1.87, MSRV is 1.81
                    if camp.checkpoint_every > 0
                        && completed_now % camp.checkpoint_every == 0
                        && completed_now < camp.total
                    {
                        let _ = mgr.checkpoint_campaign(camp, CampaignState::Running);
                    }
                    if camp.kill_after.is_some_and(|k| completions_this_run >= k) {
                        camp.kill.store(true, Ordering::SeqCst);
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if !in_flight.is_empty() && last_activity.elapsed() > mgr.grace {
                    // The reactor stopped delivering: account every
                    // outstanding probe as a timeout so the campaign
                    // still finishes fully-accounted.
                    for idx in in_flight.drain() {
                        record_outcome(mgr, camp, &span, idx, false, &mut emit_cursor);
                        completions_this_run += 1;
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => unreachable!("worker holds done_tx"),
        }
    }
}

/// Terminal path for a completed campaign: final evidence drain,
/// estimate, terminal snapshot, deterministic closing notes.
fn finalize(mgr: &Arc<CampaignManager>, camp: &Arc<CampaignHandle>, span: CampaignSpan) {
    let _ = mgr.checkpoint_campaign(camp, CampaignState::Done);
    let (completed, answered, timeouts, observed, estimated, fully_accounted);
    {
        let report = mgr.report(&camp.id).expect("own campaign");
        let sequential = camp.sequential.lock().is_some();
        let mut progress = camp.progress.lock();
        // A sequentially stopped campaign intentionally leaves the
        // remainder unspent: accounting and the estimate run over the
        // probes actually decided, not the budget ceiling.
        let spent = if sequential {
            progress.completed
        } else {
            camp.total
        };
        progress.fully_accounted = report.fully_accounted(spent as usize);
        let clamped = progress.observed.min(spent.max(1));
        progress.estimated = estimate_cache_count(clamped, spent.max(1));
        progress.state = CampaignState::Done;
        completed = progress.completed;
        answered = progress.answered;
        timeouts = progress.timeouts;
        observed = clamped;
        estimated = progress.estimated;
        fully_accounted = progress.fully_accounted;
    }
    if completed < camp.total {
        span.note("stopped_early", 1);
    }
    span.note("observed", observed);
    span.note("estimated", estimated);
    span.note("fully_accounted", u64::from(fully_accounted));
    span.end(completed, answered, timeouts);
}

/// Terminal path for a cancelled or paused campaign: drain already
/// happened (in-flight empty), write the snapshot in its terminal (or
/// resumable, for pause) state and close the span.
fn stop(mgr: &Arc<CampaignManager>, camp: &Arc<CampaignHandle>, span: CampaignSpan) {
    let state = if camp.cancel.load(Ordering::SeqCst) {
        CampaignState::Cancelled
    } else {
        CampaignState::Paused
    };
    let _ = mgr.checkpoint_campaign(camp, state);
    let (completed, answered, timeouts);
    {
        let mut progress = camp.progress.lock();
        progress.state = state;
        completed = progress.completed;
        answered = progress.answered;
        timeouts = progress.timeouts;
    }
    span.end(completed, answered, timeouts);
}
