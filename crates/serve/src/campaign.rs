//! Campaign specifications, states and statuses — the vocabulary shared
//! by the manager, the snapshots and the HTTP control plane.

use std::fmt::Write;
use std::net::Ipv4Addr;
use std::path::PathBuf;

/// Maximum length accepted for tenant names and campaign labels.
pub const MAX_NAME_LEN: usize = 64;

/// `true` when `name` is safe to embed in file names, JSON and metric
/// labels without escaping: `[A-Za-z0-9_.-]`, 1–64 chars.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

/// What a client asks for when submitting a campaign. Fields left at
/// zero derive from the probe plan.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Owning tenant (validated by [`valid_name`]).
    pub tenant: String,
    /// Human-facing label (validated by [`valid_name`]).
    pub label: String,
    /// Ingress address to probe through.
    pub ingress: Ipv4Addr,
    /// Assumed upper bound on the cache count (`n_max`).
    pub caches_hint: u64,
    /// Assumed packet-loss rate toward the target.
    pub loss_hint: f64,
    /// Mean loss-burst length; > 1 selects the bursty (Gilbert–Elliott)
    /// plan, otherwise the uniform-loss plan.
    pub mean_burst_hint: f64,
    /// Alias-farm size; 0 derives it from the plan's probe budget.
    pub farm_size: usize,
    /// Copies per farm name (carpet bombing); 0 derives it from the
    /// plan's redundancy.
    pub redundancy: u64,
    /// Probes kept in flight at once.
    pub window: usize,
    /// Auto-checkpoint every this many completions (0 = on demand only).
    pub checkpoint_every: u64,
    /// Test hook: abandon the worker abruptly — no checkpoint, no final
    /// events — once this many probes have completed *in this process*.
    /// The kill -9 stand-in the checkpoint/resume property test drives.
    pub kill_after: Option<u64>,
    /// Sequential early stopping: when positive, the campaign keeps a
    /// [`cde_core::SequentialPlanner`] at this residual failure
    /// probability and finishes as soon as the exact-count criterion
    /// holds, instead of spending the full `farm_size × redundancy`
    /// budget. `0.0` (the default) runs the fixed plan to exhaustion.
    pub sequential_epsilon: f64,
}

impl Default for CampaignSpec {
    fn default() -> CampaignSpec {
        CampaignSpec {
            tenant: "default".into(),
            label: "campaign".into(),
            ingress: Ipv4Addr::new(192, 0, 2, 1),
            caches_hint: 4,
            loss_hint: 0.0,
            mean_burst_hint: 0.0,
            farm_size: 0,
            redundancy: 0,
            window: 32,
            checkpoint_every: 64,
            kill_after: None,
            sequential_epsilon: 0.0,
        }
    }
}

/// Lifecycle of one campaign inside the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignState {
    /// Probing (or waiting for budget).
    Running,
    /// Every probe decided; final counts recorded.
    Done,
    /// Stopped by request; snapshot kept as a terminal record.
    Cancelled,
    /// Stopped by a graceful shutdown with a resumable snapshot.
    Paused,
    /// Worker abandoned without a checkpoint (crash or test kill).
    Killed,
}

impl CampaignState {
    /// Stable wire name, used in snapshots and JSON statuses.
    pub fn as_str(self) -> &'static str {
        match self {
            CampaignState::Running => "running",
            CampaignState::Done => "done",
            CampaignState::Cancelled => "cancelled",
            CampaignState::Paused => "paused",
            CampaignState::Killed => "killed",
        }
    }

    /// Parses a wire name written by [`CampaignState::as_str`].
    pub fn parse(s: &str) -> Option<CampaignState> {
        match s {
            "running" => Some(CampaignState::Running),
            "done" => Some(CampaignState::Done),
            "cancelled" => Some(CampaignState::Cancelled),
            "paused" => Some(CampaignState::Paused),
            "killed" => Some(CampaignState::Killed),
            _ => None,
        }
    }
}

/// A point-in-time public view of one campaign, as served by
/// `GET /v1/campaigns/<id>`.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStatus {
    /// Campaign id (`c-<n>`).
    pub id: String,
    /// Owning tenant.
    pub tenant: String,
    /// Human-facing label.
    pub label: String,
    /// Current lifecycle state.
    pub state: CampaignState,
    /// Total probes planned (`farm_size × redundancy`).
    pub total: u64,
    /// Probes decided so far (answered + timed out).
    pub completed: u64,
    /// Probes answered.
    pub answered: u64,
    /// Probes that exhausted every attempt.
    pub timeouts: u64,
    /// Honey fetches counted as of the last checkpoint (live counts are
    /// only drained at checkpoint/finish time — see DESIGN.md §6g).
    pub observed: u64,
    /// Cache-count estimate from `observed` (final for `Done`).
    pub estimated: u64,
    /// `true` when every planned probe is accounted for
    /// (`CampaignReport::fully_accounted`).
    pub fully_accounted: bool,
    /// Completions restored from a snapshot (0 for a fresh campaign).
    pub resumed_from: u64,
    /// Checkpoints written so far.
    pub checkpoints: u64,
    /// Latest snapshot path, if one was written.
    pub checkpoint_path: Option<PathBuf>,
}

impl CampaignStatus {
    /// Serializes the status as one flat JSON object. All strings are
    /// [`valid_name`]-validated at submission, so no escaping is needed
    /// except for the checkpoint path, which is emitted via the
    /// telemetry JSON writer rules (it contains no quotes in practice;
    /// backslashes and quotes would come only from hostile dirs, which
    /// the daemon operator controls).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"id\": \"{}\", \"tenant\": \"{}\", \"label\": \"{}\", \"state\": \"{}\", \
             \"total\": {}, \"completed\": {}, \"answered\": {}, \"timeouts\": {}, \
             \"observed\": {}, \"estimated\": {}, \"fully_accounted\": {}, \
             \"resumed_from\": {}, \"checkpoints\": {}",
            self.id,
            self.tenant,
            self.label,
            self.state.as_str(),
            self.total,
            self.completed,
            self.answered,
            self.timeouts,
            self.observed,
            self.estimated,
            self.fully_accounted,
            self.resumed_from,
            self.checkpoints,
        );
        match &self.checkpoint_path {
            Some(path) => {
                let escaped = path
                    .display()
                    .to_string()
                    .replace('\\', "\\\\")
                    .replace('"', "\\\"");
                let _ = write!(out, ", \"checkpoint_path\": \"{escaped}\"}}");
            }
            None => out.push_str(", \"checkpoint_path\": null}"),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation_rejects_hostile_input() {
        assert!(valid_name("alice"));
        assert!(valid_name("team-7.prod_x"));
        assert!(!valid_name(""));
        assert!(!valid_name("a b"));
        assert!(!valid_name("x/../etc"));
        assert!(!valid_name("quote\"name"));
        assert!(!valid_name(&"x".repeat(MAX_NAME_LEN + 1)));
    }

    #[test]
    fn state_names_round_trip() {
        for state in [
            CampaignState::Running,
            CampaignState::Done,
            CampaignState::Cancelled,
            CampaignState::Paused,
            CampaignState::Killed,
        ] {
            assert_eq!(CampaignState::parse(state.as_str()), Some(state));
        }
        assert_eq!(CampaignState::parse("nope"), None);
    }

    #[test]
    fn status_json_is_flat() {
        let status = CampaignStatus {
            id: "c-1".into(),
            tenant: "alice".into(),
            label: "smoke".into(),
            state: CampaignState::Done,
            total: 12,
            completed: 12,
            answered: 11,
            timeouts: 1,
            observed: 4,
            estimated: 4,
            fully_accounted: true,
            resumed_from: 0,
            checkpoints: 3,
            checkpoint_path: Some(PathBuf::from("/tmp/c-1.ckpt")),
        };
        let json = status.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"state\": \"done\""), "{json}");
        assert!(json.contains("\"fully_accounted\": true"), "{json}");
        assert!(
            json.contains("\"checkpoint_path\": \"/tmp/c-1.ckpt\""),
            "{json}"
        );
    }
}
