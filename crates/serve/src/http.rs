//! A dependency-free HTTP/1.1 control plane for the campaign daemon.
//!
//! The server is intentionally minimal: one accept thread, one request
//! per connection (`Connection: close`), bodies parsed with a
//! hand-rolled key extractor instead of a JSON dependency. It serves an
//! operator loopback, not the open internet — limits are sized for curl
//! and the CI smoke driver.
//!
//! | Method & path                     | Effect                                   |
//! |-----------------------------------|------------------------------------------|
//! | `GET /healthz`                    | liveness probe                           |
//! | `GET /metrics`                    | Prometheus text exposition               |
//! | `POST /v1/tenants`                | register/re-weight a tenant              |
//! | `POST /v1/campaigns`              | submit a campaign, returns `{"id": ...}` |
//! | `GET /v1/campaigns`               | list campaign statuses                   |
//! | `GET /v1/campaigns/<id>`          | one campaign status                      |
//! | `POST /v1/campaigns/<id>/cancel`  | stop a campaign (terminal snapshot)      |
//! | `POST /v1/campaigns/<id>/checkpoint` | write a snapshot now                 |
//! | `POST /v1/shutdown`               | request graceful daemon shutdown         |

use crate::campaign::CampaignSpec;
use crate::manager::CampaignManager;
use cde_engine::RateConfig;
use cde_telemetry::MetricsRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 8 * 1024;
/// Upper bound on a request body.
const MAX_BODY: usize = 64 * 1024;

/// The running HTTP listener. Dropping it stops the accept loop.
#[derive(Debug)]
pub struct ControlPlane {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shutdown_requested: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ControlPlane {
    /// Binds `listen` (port 0 picks an ephemeral port) and starts the
    /// accept loop over `manager` and `registry`.
    pub fn start(
        listen: SocketAddr,
        manager: Arc<CampaignManager>,
        registry: Arc<MetricsRegistry>,
    ) -> io::Result<ControlPlane> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shutdown_requested = Arc::new(AtomicBool::new(false));
        let stop_for_thread = Arc::clone(&stop);
        let shutdown_for_thread = Arc::clone(&shutdown_requested);
        let thread = std::thread::Builder::new()
            .name("cde-serve-http".into())
            .spawn(move || {
                accept_loop(
                    &listener,
                    &stop_for_thread,
                    &shutdown_for_thread,
                    &manager,
                    &registry,
                );
            })?;
        Ok(ControlPlane {
            addr,
            stop,
            shutdown_requested,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once a client has POSTed `/v1/shutdown`.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Stops the accept loop and joins its thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ControlPlane {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    shutdown_requested: &AtomicBool,
    manager: &Arc<CampaignManager>,
    registry: &Arc<MetricsRegistry>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle_connection(stream, shutdown_requested, manager, registry);
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    shutdown_requested: &AtomicBool,
    manager: &Arc<CampaignManager>,
    registry: &Arc<MetricsRegistry>,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(_) => {
            return respond(
                &mut stream,
                400,
                "application/json",
                "{\"error\": \"bad request\"}",
            )
        }
    };
    let (status, content_type, body) = route(&request, shutdown_requested, manager, registry);
    respond(&mut stream, status, content_type, &body)
}

struct Request {
    method: String,
    path: String,
    body: String,
}

fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // One-byte reads keep the parser trivial; control-plane heads are
    // a few hundred bytes, so this is never a throughput concern.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(bad("request head too large"));
        }
        match stream.read(&mut byte)? {
            0 => return Err(bad("connection closed mid-head")),
            _ => head.push(byte[0]),
        }
    }
    let head = String::from_utf8(head).map_err(|_| bad("non-utf8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_owned();
    let path = parts.next().ok_or_else(|| bad("missing path"))?.to_owned();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("non-utf8 body"))?;
    Ok(Request { method, path, body })
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn route(
    request: &Request,
    shutdown_requested: &AtomicBool,
    manager: &Arc<CampaignManager>,
    registry: &Arc<MetricsRegistry>,
) -> (u16, &'static str, String) {
    let json = "application/json";
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("GET", "/healthz") => (200, json, "{\"ok\": true}".to_owned()),
        ("GET", "/metrics") => (200, "text/plain; version=0.0.4", registry.prometheus_text()),
        ("POST", "/v1/shutdown") => {
            shutdown_requested.store(true, Ordering::SeqCst);
            (200, json, "{\"ok\": true}".to_owned())
        }
        ("POST", "/v1/tenants") => handle_register_tenant(&request.body, manager),
        ("POST", "/v1/campaigns") => handle_submit(&request.body, manager),
        ("GET", "/v1/campaigns") => {
            let statuses: Vec<String> = manager.list().iter().map(|s| s.to_json()).collect();
            (200, json, format!("[{}]", statuses.join(", ")))
        }
        ("GET", _) if path.starts_with("/v1/campaigns/") => {
            let id = &path["/v1/campaigns/".len()..];
            match manager.status(id) {
                Some(status) => (200, json, status.to_json()),
                None => (404, json, "{\"error\": \"unknown campaign\"}".to_owned()),
            }
        }
        ("POST", _) if path.starts_with("/v1/campaigns/") && path.ends_with("/cancel") => {
            let id = &path["/v1/campaigns/".len()..path.len() - "/cancel".len()];
            if manager.cancel(id) {
                (200, json, "{\"ok\": true}".to_owned())
            } else {
                (404, json, "{\"error\": \"unknown campaign\"}".to_owned())
            }
        }
        ("POST", _) if path.starts_with("/v1/campaigns/") && path.ends_with("/checkpoint") => {
            let id = &path["/v1/campaigns/".len()..path.len() - "/checkpoint".len()];
            match manager.checkpoint_now(id) {
                Ok(path) => {
                    let escaped = path
                        .display()
                        .to_string()
                        .replace('\\', "\\\\")
                        .replace('"', "\\\"");
                    (200, json, format!("{{\"checkpoint_path\": \"{escaped}\"}}"))
                }
                Err(err) if err.kind() == io::ErrorKind::NotFound => {
                    (404, json, "{\"error\": \"unknown campaign\"}".to_owned())
                }
                Err(err) => (500, json, format!("{{\"error\": \"{err}\"}}")),
            }
        }
        ("GET" | "POST", _) => (404, json, "{\"error\": \"no such route\"}".to_owned()),
        _ => (405, json, "{\"error\": \"method not allowed\"}".to_owned()),
    }
}

fn handle_register_tenant(
    body: &str,
    manager: &Arc<CampaignManager>,
) -> (u16, &'static str, String) {
    let json = "application/json";
    let Some(name) = body_str(body, "name") else {
        return (400, json, "{\"error\": \"missing tenant name\"}".to_owned());
    };
    let weight = body_f64(body, "weight").unwrap_or(crate::tenant::DEFAULT_WEIGHT);
    let cap = match (
        body_f64(body, "cap_per_second"),
        body_f64(body, "cap_burst"),
    ) {
        (Some(per_second), burst) => Some(RateConfig {
            per_second,
            burst: burst.unwrap_or(1.0),
        }),
        (None, _) => None,
    };
    match manager.register_tenant(&name, weight, cap) {
        Ok(()) => (
            200,
            json,
            format!("{{\"tenant\": \"{name}\", \"weight\": {weight}}}"),
        ),
        Err(err) => (400, json, format!("{{\"error\": \"{err}\"}}")),
    }
}

fn handle_submit(body: &str, manager: &Arc<CampaignManager>) -> (u16, &'static str, String) {
    let json = "application/json";
    let mut spec = CampaignSpec::default();
    if let Some(tenant) = body_str(body, "tenant") {
        spec.tenant = tenant;
    }
    if let Some(label) = body_str(body, "label") {
        spec.label = label;
    }
    if let Some(caches) = body_u64(body, "caches_hint") {
        spec.caches_hint = caches;
    }
    if let Some(loss) = body_f64(body, "loss_hint") {
        spec.loss_hint = loss;
    }
    if let Some(burst) = body_f64(body, "mean_burst_hint") {
        spec.mean_burst_hint = burst;
    }
    if let Some(farm) = body_u64(body, "farm_size") {
        spec.farm_size = farm as usize;
    }
    if let Some(redundancy) = body_u64(body, "redundancy") {
        spec.redundancy = redundancy;
    }
    if let Some(window) = body_u64(body, "window") {
        spec.window = window as usize;
    }
    if let Some(every) = body_u64(body, "checkpoint_every") {
        spec.checkpoint_every = every;
    }
    match manager.submit(spec) {
        Ok(id) => (200, json, format!("{{\"id\": \"{id}\"}}")),
        Err(err) => (400, json, format!("{{\"error\": \"{err}\"}}")),
    }
}

/// Finds `"key"` in a flat JSON object and returns the raw token after
/// the colon (quoted string without escapes, or a bare number/keyword).
/// Good enough for the control plane's own flat request bodies; not a
/// general JSON parser.
fn body_token(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = body.find(&needle)? + needle.len();
    let rest = body[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    if let Some(quoted) = rest.strip_prefix('"') {
        let end = quoted.find('"')?;
        Some(quoted[..end].to_owned())
    } else {
        let end = rest
            .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
            .unwrap_or(rest.len());
        if end == 0 {
            None
        } else {
            Some(rest[..end].to_owned())
        }
    }
}

fn body_str(body: &str, key: &str) -> Option<String> {
    body_token(body, key)
}

fn body_u64(body: &str, key: &str) -> Option<u64> {
    body_token(body, key)?.parse().ok()
}

fn body_f64(body: &str, key: &str) -> Option<f64> {
    body_token(body, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_extractors_read_flat_json() {
        let body = "{\"name\": \"alice\", \"weight\": 3.5, \"farm_size\": 120, \"flag\": true}";
        assert_eq!(body_str(body, "name").as_deref(), Some("alice"));
        assert_eq!(body_f64(body, "weight"), Some(3.5));
        assert_eq!(body_u64(body, "farm_size"), Some(120));
        assert_eq!(body_str(body, "flag").as_deref(), Some("true"));
        assert_eq!(body_str(body, "missing"), None);
        assert_eq!(body_u64(body, "name"), None);
    }
}
