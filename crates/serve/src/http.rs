//! A dependency-free HTTP/1.1 control plane for the campaign daemon.
//!
//! The server is intentionally minimal: one accept thread, one request
//! per connection (`Connection: close`), bodies parsed with a
//! hand-rolled key extractor instead of a JSON dependency. It serves an
//! operator loopback, not the open internet — limits are sized for curl
//! and the CI smoke driver.
//!
//! | Method & path                     | Effect                                   |
//! |-----------------------------------|------------------------------------------|
//! | `GET /healthz`                    | liveness probe                           |
//! | `GET /metrics`                    | Prometheus text exposition               |
//! | `GET /v1/health`                  | SLO verdict (503 when Critical)          |
//! | `GET /v1/health/shards`           | per-shard runtime stats + imbalance      |
//! | `POST /v1/tenants`                | register/re-weight a tenant              |
//! | `POST /v1/campaigns`              | submit a campaign, returns `{"id": ...}` |
//! | `GET /v1/campaigns`               | list campaign statuses                   |
//! | `GET /v1/campaigns/<id>`          | one campaign status                      |
//! | `POST /v1/campaigns/<id>/cancel`  | stop a campaign (terminal snapshot)      |
//! | `POST /v1/campaigns/<id>/checkpoint` | write a snapshot now                 |
//! | `POST /v1/flight/dump`            | snapshot the flight rings to JSONL       |
//! | `POST /v1/shutdown`               | request graceful daemon shutdown         |

use crate::campaign::CampaignSpec;
use crate::manager::CampaignManager;
use cde_engine::RateConfig;
use cde_pulse::{HealthStatus, Pulse};
use cde_telemetry::MetricsRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 8 * 1024;
/// Upper bound on a request body.
const MAX_BODY: usize = 64 * 1024;

/// The running HTTP listener. Dropping it stops the accept loop.
#[derive(Debug)]
pub struct ControlPlane {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shutdown_requested: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ControlPlane {
    /// Binds `listen` (port 0 picks an ephemeral port) and starts the
    /// accept loop over `manager` and `registry`. With a [`Pulse`], the
    /// self-diagnosis routes (`/v1/health`, `/v1/health/shards`) come
    /// alive; without one they answer 404.
    pub fn start(
        listen: SocketAddr,
        manager: Arc<CampaignManager>,
        registry: Arc<MetricsRegistry>,
        pulse: Option<Arc<Pulse>>,
    ) -> io::Result<ControlPlane> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shutdown_requested = Arc::new(AtomicBool::new(false));
        let stop_for_thread = Arc::clone(&stop);
        let shutdown_for_thread = Arc::clone(&shutdown_requested);
        let thread = std::thread::Builder::new()
            .name("cde-serve-http".into())
            .spawn(move || {
                accept_loop(
                    &listener,
                    &stop_for_thread,
                    &shutdown_for_thread,
                    &manager,
                    &registry,
                    pulse.as_ref(),
                );
            })?;
        Ok(ControlPlane {
            addr,
            stop,
            shutdown_requested,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once a client has POSTed `/v1/shutdown`.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Stops the accept loop and joins its thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ControlPlane {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    shutdown_requested: &AtomicBool,
    manager: &Arc<CampaignManager>,
    registry: &Arc<MetricsRegistry>,
    pulse: Option<&Arc<Pulse>>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle_connection(stream, shutdown_requested, manager, registry, pulse);
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    shutdown_requested: &AtomicBool,
    manager: &Arc<CampaignManager>,
    registry: &Arc<MetricsRegistry>,
    pulse: Option<&Arc<Pulse>>,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(_) => {
            return respond(
                &mut stream,
                &Response::json(400, "{\"error\": \"bad request\"}".to_owned()),
            )
        }
    };
    let response = route(&request, shutdown_requested, manager, registry, pulse);
    respond(&mut stream, &response)
}

struct Request {
    method: String,
    path: String,
    body: String,
}

fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // One-byte reads keep the parser trivial; control-plane heads are
    // a few hundred bytes, so this is never a throughput concern.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(bad("request head too large"));
        }
        match stream.read(&mut byte)? {
            0 => return Err(bad("connection closed mid-head")),
            _ => head.push(byte[0]),
        }
    }
    let head = String::from_utf8(head).map_err(|_| bad("non-utf8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_owned();
    let path = parts.next().ok_or_else(|| bad("missing path"))?.to_owned();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("non-utf8 body"))?;
    Ok(Request { method, path, body })
}

/// A fully-formed HTTP response: status, body and the one extra header
/// the control plane ever sets (`Allow`, on 405s).
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
    allow: Option<&'static str>,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
            allow: None,
        }
    }
}

fn respond(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let allow = match response.allow {
        Some(methods) => format!("Allow: {methods}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {reason}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{allow}Connection: close\r\n\r\n",
        response.status,
        response.content_type,
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// The methods a known path answers, `None` for unknown paths. Drives
/// the 404-vs-405 split: a wrong method on a real resource is `405` with
/// an `Allow` header, not a misleading `404`.
fn allowed_methods(path: &str) -> Option<&'static str> {
    match path {
        "/healthz" | "/metrics" | "/v1/health" | "/v1/health/shards" => Some("GET"),
        "/v1/shutdown" | "/v1/tenants" | "/v1/flight/dump" => Some("POST"),
        "/v1/campaigns" => Some("GET, POST"),
        _ if path.starts_with("/v1/campaigns/") => {
            if path.ends_with("/cancel") || path.ends_with("/checkpoint") {
                Some("POST")
            } else {
                Some("GET")
            }
        }
        _ => None,
    }
}

fn route(
    request: &Request,
    shutdown_requested: &AtomicBool,
    manager: &Arc<CampaignManager>,
    registry: &Arc<MetricsRegistry>,
    pulse: Option<&Arc<Pulse>>,
) -> Response {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("GET", "/healthz") => Response::json(200, "{\"ok\": true}".to_owned()),
        ("GET", "/metrics") => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: registry.prometheus_text(),
            allow: None,
        },
        ("GET", "/v1/health") => match pulse {
            Some(pulse) => {
                let verdict = pulse.health();
                let status = if verdict.status == HealthStatus::Critical {
                    503
                } else {
                    200
                };
                Response::json(status, pulse.health_json())
            }
            None => Response::json(
                404,
                "{\"error\": \"health engine not attached\"}".to_owned(),
            ),
        },
        ("GET", "/v1/health/shards") => match pulse {
            Some(pulse) => Response::json(200, pulse.shards_json()),
            None => Response::json(
                404,
                "{\"error\": \"health engine not attached\"}".to_owned(),
            ),
        },
        ("POST", "/v1/shutdown") => {
            shutdown_requested.store(true, Ordering::SeqCst);
            Response::json(200, "{\"ok\": true}".to_owned())
        }
        ("POST", "/v1/flight/dump") => match manager.write_flight_dump() {
            Ok(Some(path)) => {
                let escaped = path
                    .display()
                    .to_string()
                    .replace('\\', "\\\\")
                    .replace('"', "\\\"");
                Response::json(200, format!("{{\"flight_dump\": \"{escaped}\"}}"))
            }
            Ok(None) => Response::json(
                404,
                "{\"error\": \"flight recorder not attached\"}".to_owned(),
            ),
            Err(err) => Response::json(500, format!("{{\"error\": \"{err}\"}}")),
        },
        ("POST", "/v1/tenants") => handle_register_tenant(&request.body, manager),
        ("POST", "/v1/campaigns") => handle_submit(&request.body, manager),
        ("GET", "/v1/campaigns") => {
            let statuses: Vec<String> = manager.list().iter().map(|s| s.to_json()).collect();
            Response::json(200, format!("[{}]", statuses.join(", ")))
        }
        ("GET", _)
            if path.starts_with("/v1/campaigns/") && allowed_methods(path) == Some("GET") =>
        {
            let id = &path["/v1/campaigns/".len()..];
            match manager.status(id) {
                Some(status) => Response::json(200, status.to_json()),
                None => Response::json(404, "{\"error\": \"unknown campaign\"}".to_owned()),
            }
        }
        ("POST", _) if path.starts_with("/v1/campaigns/") && path.ends_with("/cancel") => {
            let id = &path["/v1/campaigns/".len()..path.len() - "/cancel".len()];
            if manager.cancel(id) {
                Response::json(200, "{\"ok\": true}".to_owned())
            } else {
                Response::json(404, "{\"error\": \"unknown campaign\"}".to_owned())
            }
        }
        ("POST", _) if path.starts_with("/v1/campaigns/") && path.ends_with("/checkpoint") => {
            let id = &path["/v1/campaigns/".len()..path.len() - "/checkpoint".len()];
            match manager.checkpoint_now(id) {
                Ok(path) => {
                    let escaped = path
                        .display()
                        .to_string()
                        .replace('\\', "\\\\")
                        .replace('"', "\\\"");
                    Response::json(200, format!("{{\"checkpoint_path\": \"{escaped}\"}}"))
                }
                Err(err) if err.kind() == io::ErrorKind::NotFound => {
                    Response::json(404, "{\"error\": \"unknown campaign\"}".to_owned())
                }
                Err(err) => Response::json(500, format!("{{\"error\": \"{err}\"}}")),
            }
        }
        _ => match allowed_methods(path) {
            Some(allow) => Response {
                allow: Some(allow),
                ..Response::json(405, "{\"error\": \"method not allowed\"}".to_owned())
            },
            None => Response::json(404, "{\"error\": \"no such route\"}".to_owned()),
        },
    }
}

fn handle_register_tenant(body: &str, manager: &Arc<CampaignManager>) -> Response {
    let Some(name) = body_str(body, "name") else {
        return Response::json(400, "{\"error\": \"missing tenant name\"}".to_owned());
    };
    let weight = body_f64(body, "weight").unwrap_or(crate::tenant::DEFAULT_WEIGHT);
    let cap = match (
        body_f64(body, "cap_per_second"),
        body_f64(body, "cap_burst"),
    ) {
        (Some(per_second), burst) => Some(RateConfig {
            per_second,
            burst: burst.unwrap_or(1.0),
        }),
        (None, _) => None,
    };
    match manager.register_tenant(&name, weight, cap) {
        Ok(()) => Response::json(
            200,
            format!("{{\"tenant\": \"{name}\", \"weight\": {weight}}}"),
        ),
        Err(err) => Response::json(400, format!("{{\"error\": \"{err}\"}}")),
    }
}

fn handle_submit(body: &str, manager: &Arc<CampaignManager>) -> Response {
    let mut spec = CampaignSpec::default();
    if let Some(tenant) = body_str(body, "tenant") {
        spec.tenant = tenant;
    }
    if let Some(label) = body_str(body, "label") {
        spec.label = label;
    }
    if let Some(caches) = body_u64(body, "caches_hint") {
        spec.caches_hint = caches;
    }
    if let Some(loss) = body_f64(body, "loss_hint") {
        spec.loss_hint = loss;
    }
    if let Some(burst) = body_f64(body, "mean_burst_hint") {
        spec.mean_burst_hint = burst;
    }
    if let Some(farm) = body_u64(body, "farm_size") {
        spec.farm_size = farm as usize;
    }
    if let Some(redundancy) = body_u64(body, "redundancy") {
        spec.redundancy = redundancy;
    }
    if let Some(window) = body_u64(body, "window") {
        spec.window = window as usize;
    }
    if let Some(every) = body_u64(body, "checkpoint_every") {
        spec.checkpoint_every = every;
    }
    match manager.submit(spec) {
        Ok(id) => Response::json(200, format!("{{\"id\": \"{id}\"}}")),
        Err(err) => Response::json(400, format!("{{\"error\": \"{err}\"}}")),
    }
}

/// Finds `"key"` in a flat JSON object and returns the raw token after
/// the colon (quoted string without escapes, or a bare number/keyword).
/// Good enough for the control plane's own flat request bodies; not a
/// general JSON parser.
fn body_token(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = body.find(&needle)? + needle.len();
    let rest = body[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    if let Some(quoted) = rest.strip_prefix('"') {
        let end = quoted.find('"')?;
        Some(quoted[..end].to_owned())
    } else {
        let end = rest
            .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
            .unwrap_or(rest.len());
        if end == 0 {
            None
        } else {
            Some(rest[..end].to_owned())
        }
    }
}

fn body_str(body: &str, key: &str) -> Option<String> {
    body_token(body, key)
}

fn body_u64(body: &str, key: &str) -> Option<u64> {
    body_token(body, key)?.parse().ok()
}

fn body_f64(body: &str, key: &str) -> Option<f64> {
    body_token(body, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowed_methods_cover_every_route() {
        assert_eq!(allowed_methods("/healthz"), Some("GET"));
        assert_eq!(allowed_methods("/metrics"), Some("GET"));
        assert_eq!(allowed_methods("/v1/health"), Some("GET"));
        assert_eq!(allowed_methods("/v1/health/shards"), Some("GET"));
        assert_eq!(allowed_methods("/v1/shutdown"), Some("POST"));
        assert_eq!(allowed_methods("/v1/tenants"), Some("POST"));
        assert_eq!(allowed_methods("/v1/flight/dump"), Some("POST"));
        assert_eq!(allowed_methods("/v1/campaigns"), Some("GET, POST"));
        assert_eq!(allowed_methods("/v1/campaigns/c-1"), Some("GET"));
        assert_eq!(allowed_methods("/v1/campaigns/c-1/cancel"), Some("POST"));
        assert_eq!(
            allowed_methods("/v1/campaigns/c-1/checkpoint"),
            Some("POST")
        );
        assert_eq!(allowed_methods("/v1/nope"), None);
        assert_eq!(allowed_methods("/"), None);
    }

    #[test]
    fn body_extractors_read_flat_json() {
        let body = "{\"name\": \"alice\", \"weight\": 3.5, \"farm_size\": 120, \"flag\": true}";
        assert_eq!(body_str(body, "name").as_deref(), Some("alice"));
        assert_eq!(body_f64(body, "weight"), Some(3.5));
        assert_eq!(body_u64(body, "farm_size"), Some(120));
        assert_eq!(body_str(body, "flag").as_deref(), Some("true"));
        assert_eq!(body_str(body, "missing"), None);
        assert_eq!(body_u64(body, "name"), None);
    }
}
