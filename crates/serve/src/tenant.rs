//! The tenant registry: interned names, weights and per-tenant
//! counters, exported as labelled Prometheus families.
//!
//! Tenant names are interned to `&'static str` on first registration so
//! they can ride inside `Copy` telemetry events
//! ([`EventKind::CampaignTenant`](cde_telemetry::EventKind)). The leak
//! is bounded by the tenant set, which is small and registration-only —
//! a daemon never unregisters a tenant, it only stops scheduling it.

use cde_telemetry::{Collector, Metric};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The default weight used when an unregistered tenant first appears.
pub const DEFAULT_WEIGHT: f64 = 1.0;

#[derive(Debug)]
struct TenantEntry {
    name: &'static str,
    weight: f64,
    probes: u64,
    answered: u64,
    campaigns: u64,
}

/// Registry of tenants known to the daemon. Thread-safe behind an
/// `Arc`; see the module docs for the interning contract.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    inner: Mutex<HashMap<String, TenantEntry>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Arc<TenantRegistry> {
        Arc::new(TenantRegistry::default())
    }

    /// Registers `name` with `weight` (or updates the weight if already
    /// known) and returns the interned name.
    pub fn register(&self, name: &str, weight: f64) -> &'static str {
        let mut inner = self.inner.lock();
        match inner.get_mut(name) {
            Some(entry) => {
                entry.weight = weight;
                entry.name
            }
            None => {
                let interned: &'static str = Box::leak(name.to_owned().into_boxed_str());
                inner.insert(
                    name.to_owned(),
                    TenantEntry {
                        name: interned,
                        weight,
                        probes: 0,
                        answered: 0,
                        campaigns: 0,
                    },
                );
                interned
            }
        }
    }

    /// `true` if `name` has been registered.
    pub fn known(&self, name: &str) -> bool {
        self.inner.lock().contains_key(name)
    }

    /// The interned form of `name`, registering it with
    /// [`DEFAULT_WEIGHT`] if unknown.
    pub fn intern(&self, name: &str) -> &'static str {
        if let Some(entry) = self.inner.lock().get(name) {
            return entry.name;
        }
        self.register(name, DEFAULT_WEIGHT)
    }

    /// The registered weight of `name`, if known.
    pub fn weight(&self, name: &str) -> Option<f64> {
        self.inner.lock().get(name).map(|e| e.weight)
    }

    /// Counts one probe submitted on behalf of `name`.
    pub fn record_probe(&self, name: &str) {
        if let Some(entry) = self.inner.lock().get_mut(name) {
            entry.probes += 1;
        }
    }

    /// Counts one answered probe for `name`.
    pub fn record_answered(&self, name: &str) {
        if let Some(entry) = self.inner.lock().get_mut(name) {
            entry.answered += 1;
        }
    }

    /// Counts one campaign opened by `name`.
    pub fn record_campaign(&self, name: &str) {
        if let Some(entry) = self.inner.lock().get_mut(name) {
            entry.campaigns += 1;
        }
    }

    /// Probes submitted so far on behalf of `name`.
    pub fn probes(&self, name: &str) -> u64 {
        self.inner.lock().get(name).map_or(0, |e| e.probes)
    }

    /// Registered tenant names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.lock().keys().cloned().collect();
        names.sort();
        names
    }
}

/// One labelled metric family per counter, one sample per tenant — the
/// scrape the fairness acceptance check reads
/// (`cde_serve_tenant_probes_total{tenant="..."}`).
impl Collector for TenantRegistry {
    fn collect(&self, out: &mut Vec<Metric>) {
        let inner = self.inner.lock();
        let mut names: Vec<&String> = inner.keys().collect();
        names.sort();
        for name in names {
            let entry = &inner[name];
            out.push(
                Metric::counter(
                    "cde_serve_tenant_probes_total",
                    "Probes submitted per tenant",
                    entry.probes,
                )
                .with_label("tenant", name.clone()),
            );
            out.push(
                Metric::counter(
                    "cde_serve_tenant_answered_total",
                    "Probes answered per tenant",
                    entry.answered,
                )
                .with_label("tenant", name.clone()),
            );
            out.push(
                Metric::counter(
                    "cde_serve_tenant_campaigns_total",
                    "Campaigns opened per tenant",
                    entry.campaigns,
                )
                .with_label("tenant", name.clone()),
            );
            out.push(
                Metric::gauge(
                    "cde_serve_tenant_weight",
                    "Configured fairness weight per tenant",
                    entry.weight,
                )
                .with_label("tenant", name.clone()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_across_calls() {
        let reg = TenantRegistry::new();
        let a = reg.register("alice", 2.0);
        let b = reg.intern("alice");
        assert!(std::ptr::eq(a, b), "same interned pointer expected");
        assert_eq!(reg.weight("alice"), Some(2.0));
        reg.register("alice", 5.0);
        assert_eq!(reg.weight("alice"), Some(5.0));
    }

    #[test]
    fn counters_and_collector_are_per_tenant() {
        let reg = TenantRegistry::new();
        reg.register("alice", 1.0);
        reg.register("bob", 3.0);
        reg.record_probe("alice");
        reg.record_probe("bob");
        reg.record_probe("bob");
        reg.record_answered("bob");
        reg.record_campaign("alice");
        assert_eq!(reg.probes("alice"), 1);
        assert_eq!(reg.probes("bob"), 2);
        let mut out = Vec::new();
        reg.collect(&mut out);
        let bob_probes = out
            .iter()
            .find(|m| {
                m.name == "cde_serve_tenant_probes_total"
                    && m.labels.iter().any(|(k, v)| *k == "tenant" && v == "bob")
            })
            .expect("bob's probe counter");
        assert!(matches!(
            bob_probes.value,
            cde_telemetry::MetricValue::Counter(2)
        ));
        assert_eq!(reg.names(), vec!["alice".to_owned(), "bob".to_owned()]);
    }
}
