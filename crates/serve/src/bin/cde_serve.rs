//! The `cde-serve` binary: a multi-tenant campaign daemon over the
//! in-process loopback testbed, controlled over HTTP.
//!
//! ```text
//! cde-serve --listen 127.0.0.1:0 --checkpoint-dir /tmp/ckpt \
//!           --testbed-caches 6 --chaos --telemetry-jsonl events.jsonl
//! ```
//!
//! See README "Running as a service" for a full curl walkthrough.

use cde_engine::RateConfig;
use cde_serve::{Daemon, DaemonConfig};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
cde-serve: multi-tenant DNS cache-enumeration campaign daemon

USAGE:
  cde-serve [OPTIONS]

OPTIONS:
  --listen ADDR          control-plane address (default 127.0.0.1:0)
  --checkpoint-dir DIR   snapshot directory (default cde-serve-checkpoints)
  --testbed-caches N     hidden caches planted in the testbed (default 6)
  --testbed-seed S       testbed + fault seed (default 4242)
  --chaos                enable Gilbert-Elliott bursty loss on queries
  --chaos-loss L         chaos loss rate (default 0.25)
  --chaos-burst B        chaos mean burst length (default 3.0)
  --rate R               global probe budget, probes/second (default 2000)
  --telemetry-jsonl PATH append telemetry events as JSONL
  --addr-file PATH       write the bound address here (for port 0)
  --resume               resume every resumable snapshot at startup
  --help                 print this help
";

fn parse_args(args: &[String]) -> Result<DaemonConfig, String> {
    let mut config = DaemonConfig::default();
    let mut chaos = false;
    let mut chaos_loss = 0.25;
    let mut chaos_burst = 3.0;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--listen" => {
                config.listen = value(&mut i, flag)?
                    .parse()
                    .map_err(|e| format!("--listen: {e}"))?;
            }
            "--checkpoint-dir" => config.checkpoint_dir = PathBuf::from(value(&mut i, flag)?),
            "--testbed-caches" => {
                config.caches = value(&mut i, flag)?
                    .parse()
                    .map_err(|e| format!("--testbed-caches: {e}"))?;
            }
            "--testbed-seed" => {
                config.seed = value(&mut i, flag)?
                    .parse()
                    .map_err(|e| format!("--testbed-seed: {e}"))?;
            }
            "--chaos" => chaos = true,
            "--chaos-loss" => {
                chaos_loss = value(&mut i, flag)?
                    .parse()
                    .map_err(|e| format!("--chaos-loss: {e}"))?;
            }
            "--chaos-burst" => {
                chaos_burst = value(&mut i, flag)?
                    .parse()
                    .map_err(|e| format!("--chaos-burst: {e}"))?;
            }
            "--rate" => {
                let per_second: f64 = value(&mut i, flag)?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
                config.rate = RateConfig {
                    per_second,
                    burst: 8.0,
                };
            }
            "--telemetry-jsonl" => {
                config.telemetry_jsonl = Some(PathBuf::from(value(&mut i, flag)?));
            }
            "--addr-file" => config.addr_file = Some(PathBuf::from(value(&mut i, flag)?)),
            "--resume" => config.resume = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if chaos {
        config.chaos = Some((chaos_loss, chaos_burst));
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("cde-serve: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let daemon = match Daemon::start(config) {
        Ok(daemon) => daemon,
        Err(err) => {
            eprintln!("cde-serve: startup failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!("cde-serve listening on {}", daemon.addr());
    for id in daemon.resumed() {
        println!("cde-serve resumed {id}");
    }
    match daemon.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("cde-serve: {err}");
            ExitCode::FAILURE
        }
    }
}
