//! The `cde-serve` daemon: a simulated-testbed world, a campaign
//! manager and the HTTP control plane wired together, with telemetry
//! drained to a JSONL file.
//!
//! The daemon serves the in-process loopback testbed (real UDP over
//! loopback against the simulated resolver platform) — the same world
//! the chaos suites use — so a whole multi-tenant enumeration service
//! can be exercised end to end on one machine, kill -9 included.

use crate::http::ControlPlane;
use crate::manager::{CampaignManager, ManagerConfig, World};
use cde_core::CdeInfra;
use cde_engine::{
    EngineMetrics, FlightOptions, LiveTestbed, PulseOptions, RateConfig, ReactorConfig,
    ResolverConfig, RetryPolicy,
};
use cde_faults::FaultPlan;
use cde_platform::{NameserverNet, PlatformBuilder, SelectorKind};
use cde_pulse::{CounterSample, Pulse, ShardStat, SloSpec};
use cde_telemetry::{MetricsRegistry, TelemetryHub};
use std::fs;
use std::io::{self, Write};
use std::net::{Ipv4Addr, SocketAddr};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The testbed ingress every campaign probes through by default.
pub const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

/// How long a graceful shutdown waits for the reactor to drain.
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(30);

/// Everything the `cde-serve` binary needs to start.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Control-plane listen address (port 0 picks an ephemeral port).
    pub listen: SocketAddr,
    /// Directory campaign snapshots live in (created if absent).
    pub checkpoint_dir: PathBuf,
    /// Hidden caches planted in the simulated testbed.
    pub caches: usize,
    /// Seed for the testbed platform and the reactor fault layer.
    pub seed: u64,
    /// Optional Gilbert–Elliott chaos: `(loss, mean_burst)` on the
    /// query path.
    pub chaos: Option<(f64, f64)>,
    /// Global probe budget shared by all tenants.
    pub rate: RateConfig,
    /// Where telemetry events are appended as JSONL (absent = dropped).
    pub telemetry_jsonl: Option<PathBuf>,
    /// File the bound control-plane address is written to, for scripts
    /// that start the daemon with port 0.
    pub addr_file: Option<PathBuf>,
    /// Resume every resumable snapshot in `checkpoint_dir` at startup.
    pub resume: bool,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            listen: SocketAddr::from(([127, 0, 0, 1], 0)),
            checkpoint_dir: PathBuf::from("cde-serve-checkpoints"),
            caches: 6,
            seed: 4242,
            chaos: None,
            rate: RateConfig {
                per_second: 2000.0,
                burst: 8.0,
            },
            telemetry_jsonl: None,
            addr_file: None,
            resume: false,
        }
    }
}

/// The assembled daemon. Dropping it tears everything down abruptly;
/// call [`Daemon::run`] for the orderly path.
pub struct Daemon {
    // Field order is drop order: the control plane stops accepting,
    // then the manager (and the reactor inside its world) goes away,
    // then the testbed joins its resolver threads.
    control: ControlPlane,
    manager: Arc<CampaignManager>,
    _testbed: LiveTestbed,
    hub: Arc<TelemetryHub>,
    pulse: Arc<Pulse>,
    engine_metrics: Arc<EngineMetrics>,
    epoch: Instant,
    jsonl: Option<fs::File>,
    resumed: Vec<String>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("addr", &self.control.addr())
            .field("resumed", &self.resumed)
            .finish()
    }
}

impl Daemon {
    /// Builds the testbed world, the manager and the control plane.
    /// With `config.resume`, every resumable snapshot restarts
    /// immediately.
    pub fn start(config: DaemonConfig) -> io::Result<Daemon> {
        fs::create_dir_all(&config.checkpoint_dir)?;
        let hub = TelemetryHub::new(cde_telemetry::DEFAULT_RING_CAPACITY);
        let registry = MetricsRegistry::new();

        let mut net = NameserverNet::new();
        let infra = CdeInfra::install(&mut net);
        let platform = PlatformBuilder::new(config.seed)
            .ingress(vec![INGRESS])
            .egress((1..=3).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
            .cluster(config.caches, SelectorKind::Random)
            .build();
        let testbed = LiveTestbed::launch(platform, net, ResolverConfig::default())?;

        // Enough attempts to outlast a chaos burst, short enough that a
        // fully lost probe retires in under a second.
        let policy = RetryPolicy {
            attempts: 6,
            timeout: Duration::from_millis(150),
            backoff: 1.0,
            base_delay: Duration::from_millis(1),
            jitter: 0.0,
        };
        let reactor_config = ReactorConfig {
            telemetry: Some(Arc::clone(&hub)),
            registry: Some(Arc::clone(&registry)),
            faults: config
                .chaos
                .map(|(loss, burst)| FaultPlan::bursty(config.seed, loss, burst)),
            pulse: Some(PulseOptions::default()),
            flight: Some(FlightOptions::default()),
            ..ReactorConfig::with_policy(policy, config.seed)
        };
        let transport = testbed.reactor_transport(reactor_config)?;

        let manager = CampaignManager::new(
            World { transport, infra },
            ManagerConfig {
                checkpoint_dir: config.checkpoint_dir.clone(),
                global_rate: config.rate,
                hub: Arc::clone(&hub),
                registry: Some(Arc::clone(&registry)),
            },
        );
        let resumed = if config.resume {
            manager.resume_all()?
        } else {
            Vec::new()
        };

        // The health engine: fed by the run loop's ~100ms sampler from
        // the reactor's merged metrics, surfaced on /v1/health and in
        // the Prometheus scrape.
        let mut pulse = Pulse::new(SloSpec::default());
        if let Some(exemplars) = manager.exemplars() {
            pulse = pulse.with_exemplars(exemplars);
        }
        let pulse = Arc::new(pulse);
        registry.register(Arc::clone(&pulse) as Arc<dyn cde_telemetry::Collector>);
        let engine_metrics = manager.engine_metrics();

        let control = ControlPlane::start(
            config.listen,
            Arc::clone(&manager),
            registry,
            Some(Arc::clone(&pulse)),
        )?;
        if let Some(path) = &config.addr_file {
            fs::write(path, format!("{}\n", control.addr()))?;
        }
        let jsonl = match &config.telemetry_jsonl {
            Some(path) => Some(
                fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ),
            None => None,
        };
        Ok(Daemon {
            control,
            manager,
            _testbed: testbed,
            hub,
            pulse,
            engine_metrics,
            epoch: Instant::now(),
            jsonl,
            resumed,
        })
    }

    /// The bound control-plane address.
    pub fn addr(&self) -> SocketAddr {
        self.control.addr()
    }

    /// The campaign manager, for embedding the daemon in tests.
    pub fn manager(&self) -> &Arc<CampaignManager> {
        &self.manager
    }

    /// Campaign ids resumed from disk at startup.
    pub fn resumed(&self) -> &[String] {
        &self.resumed
    }

    /// The live health engine behind `/v1/health`, for embedding the
    /// daemon in tests.
    pub fn pulse(&self) -> &Arc<Pulse> {
        &self.pulse
    }

    /// Feeds the health engine one snapshot: the merged engine counters
    /// as a timestamped [`CounterSample`] plus every shard's runtime
    /// stats. Called from the run loop at telemetry-drain cadence.
    fn sample_pulse(&self) {
        let snap = self.engine_metrics.snapshot();
        self.pulse.observe(CounterSample {
            at_ms: self.epoch.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
            sent: snap.sent,
            received: snap.received,
            timeouts: snap.timeouts,
            retries: snap.retries,
            strays: snap.stray_replies,
            shed: self.hub.dropped(),
            emitted: self.hub.emitted(),
            in_flight: snap.in_flight,
        });
        let stats: Vec<ShardStat> = (0..self.engine_metrics.shards())
            .map(|i| {
                let shard = self.engine_metrics.shard_snapshot(i);
                ShardStat {
                    shard: i as u64,
                    busy_us: shard.loop_sum_us,
                    parked_us: shard.parked_us,
                    ring_depth: shard.ring_depth,
                    ring_depth_peak: shard.ring_depth_peak,
                    in_flight: shard.in_flight,
                    parks: shard.parks,
                    unparks: shard.unparks,
                }
            })
            .collect();
        self.pulse.observe_shards(stats);
    }

    fn drain_telemetry(&mut self) -> io::Result<()> {
        match &mut self.jsonl {
            Some(file) => {
                self.hub.drain_jsonl(file)?;
                file.flush()
            }
            None => {
                self.hub.drain_jsonl(&mut io::sink())?;
                Ok(())
            }
        }
    }

    /// Triggers a flight dump when the run loop observes a reason to:
    /// a pending SIGUSR1 (operator `kill -USR1`) or a health-verdict
    /// edge into Critical. Dump failures are reported on stderr but
    /// never stop the daemon — the black box must not take down the
    /// plane.
    fn poll_flight_triggers(&self) {
        let signalled = cde_sysio::take_sigusr1();
        let went_critical = matches!(
            self.pulse.status_transition(),
            Some((_, cde_pulse::HealthStatus::Critical))
        );
        if !signalled && !went_critical {
            return;
        }
        let reason = if signalled {
            "SIGUSR1"
        } else {
            "health Critical"
        };
        match self.manager.write_flight_dump() {
            Ok(Some(path)) => eprintln!("cde-serve: flight dump ({reason}): {}", path.display()),
            Ok(None) => {}
            Err(err) => eprintln!("cde-serve: flight dump ({reason}) failed: {err}"),
        }
    }

    /// Serves until a client POSTs `/v1/shutdown`, draining telemetry
    /// and feeding the health engine every ~100ms, then shuts down
    /// gracefully: every campaign pauses behind a resumable snapshot,
    /// the reactor drains its in-flight probes, and the final telemetry
    /// flush lands in the JSONL file. SIGUSR1 and health-verdict edges
    /// into Critical snapshot the flight rings to a dump artifact
    /// alongside the checkpoints.
    pub fn run(mut self) -> io::Result<()> {
        cde_sysio::watch_sigusr1();
        while !self.control.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(100));
            self.sample_pulse();
            self.poll_flight_triggers();
            self.drain_telemetry()?;
        }
        let drained = self.manager.graceful_shutdown(SHUTDOWN_DRAIN);
        self.control.stop();
        self.drain_telemetry()?;
        if !drained {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "reactor did not drain before the shutdown deadline",
            ));
        }
        Ok(())
    }
}
