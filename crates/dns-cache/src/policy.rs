//! Eviction policies.
//!
//! The paper (§II-A) notes that "different caches apply different logic for
//! deciding which records to cache"; the eviction policy is part of that
//! logic and is pluggable here so ablations can compare them.

/// How a full cache chooses a victim entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionPolicy {
    /// Evict the least recently used entry.
    #[default]
    Lru,
    /// Evict the oldest-inserted entry.
    Fifo,
    /// Evict the entry expiring soonest.
    EarliestExpiry,
    /// Evict a uniformly random entry.
    Random,
}

impl EvictionPolicy {
    /// All policies, for ablation sweeps.
    pub fn all() -> [EvictionPolicy; 4] {
        [
            EvictionPolicy::Lru,
            EvictionPolicy::Fifo,
            EvictionPolicy::EarliestExpiry,
            EvictionPolicy::Random,
        ]
    }
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvictionPolicy::Lru => write!(f, "lru"),
            EvictionPolicy::Fifo => write!(f, "fifo"),
            EvictionPolicy::EarliestExpiry => write!(f, "earliest-expiry"),
            EvictionPolicy::Random => write!(f, "random"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_policy_once() {
        let all = EvictionPolicy::all();
        assert_eq!(all.len(), 4);
        let mut names: Vec<String> = all.iter().map(|p| p.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
