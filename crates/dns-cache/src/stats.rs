//! Cache statistics counters.

/// Counters describing cache behaviour over its lifetime.
///
/// # Examples
///
/// ```
/// use cde_cache::CacheStats;
///
/// let stats = CacheStats::default();
/// assert_eq!(stats.hit_rate(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Lookups that found an entry whose TTL had expired.
    pub expirations: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Hits served from negative entries (NXDOMAIN/NODATA).
    pub negative_hits: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (hits including negative
    /// hits over all lookups); `0.0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.expirations;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.expirations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_counts_expirations_as_misses() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            expirations: 2,
            ..CacheStats::default()
        };
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(stats.lookups(), 6);
    }
}
