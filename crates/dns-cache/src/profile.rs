//! Behavioural software profiles.
//!
//! The paper (§II-C) motivates cache studies with software measurement:
//! "Caches on DNS resolution platforms are often running different DNS
//! software. For distribution and integration of patches it is important
//! to know which software the caches are running." Real resolver
//! implementations differ in externally observable cache behaviour —
//! most sharply in their default positive and negative TTL caps. These
//! profiles capture those *behavioural* differences (values follow the
//! software's documented defaults of the paper's era); they are named
//! `-Like` because nothing else about the implementations is modelled.

use crate::cache::CacheConfig;
use crate::policy::EvictionPolicy;
use cde_dns::Ttl;

/// Behavioural profile of a resolver implementation's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SoftwareProfile {
    /// BIND-like: positive cap 1 week (`max-cache-ttl`), negative cap 3 h
    /// (`max-ncache-ttl`).
    BindLike,
    /// Unbound-like: positive cap 1 day (`cache-max-ttl`), negative cap
    /// 1 h (`cache-max-negative-ttl`).
    UnboundLike,
    /// Windows-DNS-like: positive cap 1 day (`MaxCacheTtl`), negative cap
    /// 15 min (`MaxNegativeCacheTtl`).
    MsdnsLike,
    /// Dnsmasq-like forwarder cache: no TTL caps of its own, but a very
    /// small fixed-size cache (150 entries by default).
    DnsmasqLike,
}

impl SoftwareProfile {
    /// All profiles, for sweeps.
    pub fn all() -> [SoftwareProfile; 4] {
        [
            SoftwareProfile::BindLike,
            SoftwareProfile::UnboundLike,
            SoftwareProfile::MsdnsLike,
            SoftwareProfile::DnsmasqLike,
        ]
    }

    /// The positive-TTL cap this profile enforces.
    pub fn positive_cap(self) -> Ttl {
        match self {
            SoftwareProfile::BindLike => Ttl::from_secs(604_800),
            SoftwareProfile::UnboundLike | SoftwareProfile::MsdnsLike => Ttl::from_secs(86_400),
            SoftwareProfile::DnsmasqLike => Ttl::from_secs(u32::MAX),
        }
    }

    /// The negative-TTL cap this profile enforces.
    pub fn negative_cap(self) -> Ttl {
        match self {
            SoftwareProfile::BindLike => Ttl::from_secs(10_800),
            SoftwareProfile::UnboundLike => Ttl::from_secs(3_600),
            SoftwareProfile::MsdnsLike => Ttl::from_secs(900),
            SoftwareProfile::DnsmasqLike => Ttl::from_secs(u32::MAX),
        }
    }

    /// A cache configuration realising this profile.
    pub fn cache_config(self) -> CacheConfig {
        CacheConfig {
            capacity: match self {
                SoftwareProfile::DnsmasqLike => 150,
                _ => 100_000,
            },
            min_ttl: Ttl::ZERO,
            max_ttl: self.positive_cap(),
            negative_caching: true,
            negative_max_ttl: self.negative_cap(),
            policy: EvictionPolicy::Lru,
        }
    }
}

impl std::fmt::Display for SoftwareProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoftwareProfile::BindLike => write!(f, "bind-like"),
            SoftwareProfile::UnboundLike => write!(f, "unbound-like"),
            SoftwareProfile::MsdnsLike => write!(f, "msdns-like"),
            SoftwareProfile::DnsmasqLike => write!(f, "dnsmasq-like"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheLookup, DnsCache, NegativeKind};
    use cde_dns::{Name, RData, Record, RecordType};
    use cde_netsim::{SimDuration, SimTime};
    use std::net::Ipv4Addr;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn profiles_have_distinct_cap_pairs() {
        let mut pairs: Vec<(u32, u32)> = SoftwareProfile::all()
            .iter()
            .map(|p| (p.positive_cap().as_secs(), p.negative_cap().as_secs()))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 4, "cap pairs must identify the profile");
    }

    #[test]
    fn bind_like_keeps_records_a_week() {
        let mut cache = DnsCache::new(1, SoftwareProfile::BindLike.cache_config());
        let name: Name = "long.cache.example".parse().unwrap();
        let rr = Record::new(
            name.clone(),
            Ttl::from_secs(30 * 86_400),
            RData::A(Ipv4Addr::new(1, 2, 3, 4)),
        );
        cache.insert(name.clone(), RecordType::A, vec![rr], t(0));
        assert!(cache.lookup(&name, RecordType::A, t(604_799)).is_hit());
        assert_eq!(
            cache.lookup(&name, RecordType::A, t(604_800)),
            CacheLookup::Miss
        );
    }

    #[test]
    fn unbound_like_caps_at_a_day() {
        let mut cache = DnsCache::new(1, SoftwareProfile::UnboundLike.cache_config());
        let name: Name = "long.cache.example".parse().unwrap();
        let rr = Record::new(
            name.clone(),
            Ttl::from_secs(30 * 86_400),
            RData::A(Ipv4Addr::new(1, 2, 3, 4)),
        );
        cache.insert(name.clone(), RecordType::A, vec![rr], t(0));
        assert!(cache.lookup(&name, RecordType::A, t(86_399)).is_hit());
        assert_eq!(
            cache.lookup(&name, RecordType::A, t(86_400)),
            CacheLookup::Miss
        );
    }

    #[test]
    fn msdns_like_negative_cap_is_15_minutes() {
        let mut cache = DnsCache::new(1, SoftwareProfile::MsdnsLike.cache_config());
        let name: Name = "missing.cache.example".parse().unwrap();
        cache.insert_negative(
            name.clone(),
            RecordType::A,
            NegativeKind::NxDomain,
            Ttl::from_secs(86_400),
            t(0),
        );
        assert!(cache.lookup(&name, RecordType::A, t(899)).is_hit());
        assert_eq!(
            cache.lookup(&name, RecordType::A, t(900)),
            CacheLookup::Miss
        );
    }

    #[test]
    fn dnsmasq_like_has_tiny_capacity_but_no_caps() {
        let config = SoftwareProfile::DnsmasqLike.cache_config();
        assert_eq!(config.capacity, 150);
        let mut cache = DnsCache::new(1, config);
        let name: Name = "long.cache.example".parse().unwrap();
        let rr = Record::new(
            name.clone(),
            Ttl::from_secs(30 * 86_400),
            RData::A(Ipv4Addr::new(1, 2, 3, 4)),
        );
        cache.insert(name.clone(), RecordType::A, vec![rr], t(0));
        assert!(cache.lookup(&name, RecordType::A, t(29 * 86_400)).is_hit());
    }
}
