//! TTL-driven DNS caches for the CDE reproduction.
//!
//! These are the *hidden caches* the paper discovers and counts. The crate
//! provides [`DnsCache`] (TTL decay, min/max clamping, negative caching,
//! pluggable eviction) plus [`CacheStats`] for hit-rate accounting and
//! [`EvictionPolicy`] for ablations.
//!
//! # Examples
//!
//! ```
//! use cde_cache::{CacheConfig, DnsCache, EvictionPolicy};
//! use cde_dns::Ttl;
//!
//! let cache = DnsCache::new(7, CacheConfig {
//!     capacity: 10_000,
//!     min_ttl: Ttl::from_secs(30),
//!     max_ttl: Ttl::from_secs(3_600),
//!     ..CacheConfig::default()
//! });
//! assert_eq!(cache.id(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod policy;
pub mod profile;
pub mod stats;

pub use cache::{CacheConfig, CacheKey, CacheLookup, DnsCache, NegativeKind};
pub use policy::EvictionPolicy;
pub use profile::SoftwareProfile;
pub use stats::CacheStats;
