//! The TTL-driven DNS cache.
//!
//! This models the hidden caches the paper enumerates. The behaviours the
//! CDE techniques rely on are implemented faithfully:
//!
//! * a record asked twice within its TTL produces exactly one upstream
//!   query (§II-C item 1),
//! * platforms may clamp TTLs into a `[min, max]` window (§II-C footnote),
//! * negative results (NXDOMAIN/NODATA) are cached per RFC 2308,
//! * when full, a victim is chosen by a pluggable [`EvictionPolicy`].

use crate::policy::EvictionPolicy;
use crate::stats::CacheStats;
use cde_dns::{Name, Record, RecordType, Ttl};
use cde_netsim::{DetRng, SimDuration, SimTime};
use rand::Rng;
use std::collections::HashMap;

/// Key identifying one cached RRset: owner name plus record type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Owner name.
    pub name: Name,
    /// Record type.
    pub rtype: RecordType,
}

impl CacheKey {
    /// Creates a key.
    pub fn new(name: Name, rtype: RecordType) -> CacheKey {
        CacheKey { name, rtype }
    }
}

/// Which kind of negative answer was cached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NegativeKind {
    /// The name does not exist at all.
    NxDomain,
    /// The name exists but lacks the queried type.
    NoData,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLookup {
    /// Fresh positive entry; records carry decayed TTLs.
    Hit(Vec<Record>),
    /// Fresh negative entry.
    NegativeHit(NegativeKind),
    /// Nothing usable; the resolver must ask upstream.
    Miss,
}

impl CacheLookup {
    /// `true` for either kind of hit.
    pub fn is_hit(&self) -> bool {
        !matches!(self, CacheLookup::Miss)
    }
}

#[derive(Debug, Clone)]
enum EntryData {
    Positive(Vec<Record>),
    Negative(NegativeKind),
}

#[derive(Debug, Clone)]
struct Entry {
    data: EntryData,
    stored_at: SimTime,
    expires_at: SimTime,
    inserted_seq: u64,
    last_used_seq: u64,
}

/// Configuration of one cache instance.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum number of RRset entries held.
    pub capacity: usize,
    /// Lower clamp applied to incoming TTLs; `Ttl::ZERO` disables it.
    pub min_ttl: Ttl,
    /// Upper clamp applied to incoming TTLs.
    pub max_ttl: Ttl,
    /// Whether negative answers are cached.
    pub negative_caching: bool,
    /// Separate upper clamp for negative-answer TTLs (resolver software
    /// caps negative caching much lower than positive: BIND's
    /// `max-ncache-ttl`, Windows DNS's `MaxNegativeCacheTtl`).
    pub negative_max_ttl: Ttl,
    /// Eviction policy once `capacity` is reached.
    pub policy: EvictionPolicy,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            capacity: 100_000,
            min_ttl: Ttl::ZERO,
            max_ttl: Ttl::from_secs(86_400),
            negative_caching: true,
            negative_max_ttl: Ttl::from_secs(10_800),
            policy: EvictionPolicy::Lru,
        }
    }
}

/// A single DNS cache.
///
/// # Examples
///
/// ```
/// use cde_cache::{CacheLookup, DnsCache};
/// use cde_dns::{Name, RData, Record, RecordType, Ttl};
/// use cde_netsim::SimTime;
/// use std::net::Ipv4Addr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut cache = DnsCache::with_defaults(1);
/// let name: Name = "name.cache.example".parse()?;
/// let now = SimTime::ZERO;
/// assert_eq!(cache.lookup(&name, RecordType::A, now), CacheLookup::Miss);
/// cache.insert(
///     name.clone(),
///     RecordType::A,
///     vec![Record::new(name.clone(), Ttl::from_secs(60), RData::A(Ipv4Addr::new(1, 2, 3, 4)))],
///     now,
/// );
/// assert!(cache.lookup(&name, RecordType::A, now).is_hit());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DnsCache {
    id: u64,
    config: CacheConfig,
    map: HashMap<CacheKey, Entry>,
    seq: u64,
    stats: CacheStats,
    rng: DetRng,
}

impl DnsCache {
    /// Creates a cache with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics when `config.capacity` is zero.
    pub fn new(id: u64, config: CacheConfig) -> DnsCache {
        assert!(config.capacity > 0, "cache capacity must be positive");
        DnsCache {
            id,
            rng: DetRng::seed(id ^ 0xCAC4E).fork("evict"),
            config,
            map: HashMap::new(),
            seq: 0,
            stats: CacheStats::default(),
        }
    }

    /// Creates a cache with default configuration.
    pub fn with_defaults(id: u64) -> DnsCache {
        DnsCache::new(id, CacheConfig::default())
    }

    /// Identifier assigned at construction (platforms use it to label
    /// ground truth; the measurement side never reads it).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of live entries (including expired-but-not-yet-purged ones).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `name`/`rtype` at virtual time `now`.
    ///
    /// A fresh positive entry returns records whose TTLs are decayed by the
    /// time elapsed since insertion, exactly as a resolver reports them.
    pub fn lookup(&mut self, name: &Name, rtype: RecordType, now: SimTime) -> CacheLookup {
        let key = CacheKey::new(name.clone(), rtype);
        self.seq += 1;
        let seq = self.seq;
        match self.map.get_mut(&key) {
            Some(entry) if entry.expires_at > now => {
                entry.last_used_seq = seq;
                match &entry.data {
                    EntryData::Positive(records) => {
                        self.stats.hits += 1;
                        let elapsed = now.since(entry.stored_at).as_micros() / 1_000_000;
                        let records = records
                            .iter()
                            .map(|r| r.with_ttl(r.ttl().saturating_sub(elapsed as u32)))
                            .collect();
                        CacheLookup::Hit(records)
                    }
                    EntryData::Negative(kind) => {
                        self.stats.hits += 1;
                        self.stats.negative_hits += 1;
                        CacheLookup::NegativeHit(*kind)
                    }
                }
            }
            Some(_) => {
                self.map.remove(&key);
                self.stats.expirations += 1;
                CacheLookup::Miss
            }
            None => {
                self.stats.misses += 1;
                CacheLookup::Miss
            }
        }
    }

    /// Non-mutating freshness probe (no statistics, no LRU update).
    pub fn contains_fresh(&self, name: &Name, rtype: RecordType, now: SimTime) -> bool {
        let key = CacheKey::new(name.clone(), rtype);
        self.map
            .get(&key)
            .is_some_and(|entry| entry.expires_at > now)
    }

    /// Non-mutating read of a fresh positive entry (no statistics, no LRU
    /// update); TTLs are decayed like in [`DnsCache::lookup`]. Resolvers use
    /// this to consult cached delegation (NS/glue) data while planning the
    /// next upstream hop.
    pub fn peek(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<Vec<Record>> {
        let key = CacheKey::new(name.clone(), rtype);
        let entry = self.map.get(&key)?;
        if entry.expires_at <= now {
            return None;
        }
        match &entry.data {
            EntryData::Positive(records) => {
                let elapsed = now.since(entry.stored_at).as_micros() / 1_000_000;
                Some(
                    records
                        .iter()
                        .map(|r| r.with_ttl(r.ttl().saturating_sub(elapsed as u32)))
                        .collect(),
                )
            }
            EntryData::Negative(_) => None,
        }
    }

    /// Inserts a positive RRset for `name`/`rtype`.
    ///
    /// The entry TTL is the minimum record TTL, clamped into the configured
    /// `[min_ttl, max_ttl]` window. Records with zero post-clamp TTL are
    /// not cached.
    pub fn insert(&mut self, name: Name, rtype: RecordType, records: Vec<Record>, now: SimTime) {
        if records.is_empty() {
            return;
        }
        let raw_ttl = records.iter().map(Record::ttl).min().unwrap_or(Ttl::ZERO);
        let ttl = raw_ttl.clamp(self.config.min_ttl, self.config.max_ttl);
        if ttl == Ttl::ZERO {
            return;
        }
        self.store(
            CacheKey::new(name, rtype),
            EntryData::Positive(records),
            ttl,
            now,
        );
    }

    /// Inserts a negative entry when negative caching is enabled.
    pub fn insert_negative(
        &mut self,
        name: Name,
        rtype: RecordType,
        kind: NegativeKind,
        negative_ttl: Ttl,
        now: SimTime,
    ) {
        if !self.config.negative_caching {
            return;
        }
        let cap = self.config.max_ttl.min(self.config.negative_max_ttl);
        let ttl = negative_ttl.clamp(self.config.min_ttl, cap);
        if ttl == Ttl::ZERO {
            return;
        }
        self.store(
            CacheKey::new(name, rtype),
            EntryData::Negative(kind),
            ttl,
            now,
        );
    }

    fn store(&mut self, key: CacheKey, data: EntryData, ttl: Ttl, now: SimTime) {
        if !self.map.contains_key(&key) && self.map.len() >= self.config.capacity {
            self.evict(now);
        }
        self.seq += 1;
        let entry = Entry {
            data,
            stored_at: now,
            expires_at: now + SimDuration::from_secs(ttl.as_secs() as u64),
            inserted_seq: self.seq,
            last_used_seq: self.seq,
        };
        self.map.insert(key, entry);
        self.stats.insertions += 1;
    }

    fn evict(&mut self, now: SimTime) {
        // Prefer purging an expired entry before sacrificing a live one.
        if let Some(key) = self
            .map
            .iter()
            .filter(|(_, e)| e.expires_at <= now)
            .min_by_key(|(_, e)| e.inserted_seq)
            .map(|(k, _)| k.clone())
        {
            self.map.remove(&key);
            self.stats.evictions += 1;
            return;
        }
        let victim = match self.config.policy {
            EvictionPolicy::Lru => self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used_seq)
                .map(|(k, _)| k.clone()),
            EvictionPolicy::Fifo => self
                .map
                .iter()
                .min_by_key(|(_, e)| e.inserted_seq)
                .map(|(k, _)| k.clone()),
            EvictionPolicy::EarliestExpiry => self
                .map
                .iter()
                .min_by_key(|(_, e)| (e.expires_at, e.inserted_seq))
                .map(|(k, _)| k.clone()),
            EvictionPolicy::Random => {
                // Select by insertion sequence, not HashMap iteration order,
                // to keep the choice deterministic across runs.
                let mut seqs: Vec<u64> = self.map.values().map(|e| e.inserted_seq).collect();
                seqs.sort_unstable();
                let chosen = seqs[self.rng.gen_range(0..seqs.len())];
                self.map
                    .iter()
                    .find(|(_, e)| e.inserted_seq == chosen)
                    .map(|(k, _)| k.clone())
            }
        };
        if let Some(key) = victim {
            self.map.remove(&key);
            self.stats.evictions += 1;
        }
    }

    /// Drops every entry (models a cache restart; the paper's resilience
    /// use case §II-B detects exactly this).
    pub fn flush(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cde_dns::RData;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn a_rec(name: &str, ttl: u32) -> Record {
        Record::new(
            n(name),
            Ttl::from_secs(ttl),
            RData::A(Ipv4Addr::new(192, 0, 2, 7)),
        )
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = DnsCache::with_defaults(1);
        assert_eq!(c.lookup(&n("a.b"), RecordType::A, t(0)), CacheLookup::Miss);
        c.insert(n("a.b"), RecordType::A, vec![a_rec("a.b", 60)], t(0));
        assert!(c.lookup(&n("a.b"), RecordType::A, t(0)).is_hit());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn entry_expires_after_ttl() {
        let mut c = DnsCache::with_defaults(1);
        c.insert(n("a.b"), RecordType::A, vec![a_rec("a.b", 60)], t(0));
        assert!(c.lookup(&n("a.b"), RecordType::A, t(59)).is_hit());
        assert_eq!(c.lookup(&n("a.b"), RecordType::A, t(60)), CacheLookup::Miss);
        assert_eq!(c.stats().expirations, 1);
    }

    #[test]
    fn returned_ttl_decays() {
        let mut c = DnsCache::with_defaults(1);
        c.insert(n("a.b"), RecordType::A, vec![a_rec("a.b", 60)], t(0));
        match c.lookup(&n("a.b"), RecordType::A, t(25)) {
            CacheLookup::Hit(rrs) => assert_eq!(rrs[0].ttl(), Ttl::from_secs(35)),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn min_ttl_clamp_raises_short_ttls() {
        let mut c = DnsCache::new(
            1,
            CacheConfig {
                min_ttl: Ttl::from_secs(30),
                ..CacheConfig::default()
            },
        );
        c.insert(n("a.b"), RecordType::A, vec![a_rec("a.b", 5)], t(0));
        // Still fresh at t=20 because the clamp lifted the TTL to 30.
        assert!(c.lookup(&n("a.b"), RecordType::A, t(20)).is_hit());
        assert_eq!(c.lookup(&n("a.b"), RecordType::A, t(30)), CacheLookup::Miss);
    }

    #[test]
    fn max_ttl_clamp_lowers_long_ttls() {
        let mut c = DnsCache::new(
            1,
            CacheConfig {
                max_ttl: Ttl::from_secs(100),
                ..CacheConfig::default()
            },
        );
        c.insert(n("a.b"), RecordType::A, vec![a_rec("a.b", 86400)], t(0));
        assert!(c.lookup(&n("a.b"), RecordType::A, t(99)).is_hit());
        assert_eq!(
            c.lookup(&n("a.b"), RecordType::A, t(100)),
            CacheLookup::Miss
        );
    }

    #[test]
    fn zero_ttl_records_are_not_cached() {
        let mut c = DnsCache::with_defaults(1);
        c.insert(n("a.b"), RecordType::A, vec![a_rec("a.b", 0)], t(0));
        assert_eq!(c.len(), 0);
        assert_eq!(c.lookup(&n("a.b"), RecordType::A, t(0)), CacheLookup::Miss);
    }

    #[test]
    fn negative_caching_roundtrip() {
        let mut c = DnsCache::with_defaults(1);
        c.insert_negative(
            n("missing.b"),
            RecordType::A,
            NegativeKind::NxDomain,
            Ttl::from_secs(300),
            t(0),
        );
        assert_eq!(
            c.lookup(&n("missing.b"), RecordType::A, t(10)),
            CacheLookup::NegativeHit(NegativeKind::NxDomain)
        );
        assert_eq!(c.stats().negative_hits, 1);
    }

    #[test]
    fn negative_caching_can_be_disabled() {
        let mut c = DnsCache::new(
            1,
            CacheConfig {
                negative_caching: false,
                ..CacheConfig::default()
            },
        );
        c.insert_negative(
            n("missing.b"),
            RecordType::A,
            NegativeKind::NoData,
            Ttl::from_secs(300),
            t(0),
        );
        assert_eq!(
            c.lookup(&n("missing.b"), RecordType::A, t(0)),
            CacheLookup::Miss
        );
    }

    #[test]
    fn types_are_cached_independently() {
        let mut c = DnsCache::with_defaults(1);
        c.insert(n("a.b"), RecordType::A, vec![a_rec("a.b", 60)], t(0));
        assert_eq!(c.lookup(&n("a.b"), RecordType::Mx, t(0)), CacheLookup::Miss);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = DnsCache::new(
            1,
            CacheConfig {
                capacity: 2,
                policy: EvictionPolicy::Lru,
                ..CacheConfig::default()
            },
        );
        c.insert(n("one.b"), RecordType::A, vec![a_rec("one.b", 600)], t(0));
        c.insert(n("two.b"), RecordType::A, vec![a_rec("two.b", 600)], t(1));
        // Touch `one` so `two` becomes LRU.
        assert!(c.lookup(&n("one.b"), RecordType::A, t(2)).is_hit());
        c.insert(
            n("three.b"),
            RecordType::A,
            vec![a_rec("three.b", 600)],
            t(3),
        );
        assert!(c.contains_fresh(&n("one.b"), RecordType::A, t(3)));
        assert!(!c.contains_fresh(&n("two.b"), RecordType::A, t(3)));
        assert!(c.contains_fresh(&n("three.b"), RecordType::A, t(3)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn fifo_evicts_oldest_insertion() {
        let mut c = DnsCache::new(
            1,
            CacheConfig {
                capacity: 2,
                policy: EvictionPolicy::Fifo,
                ..CacheConfig::default()
            },
        );
        c.insert(n("one.b"), RecordType::A, vec![a_rec("one.b", 600)], t(0));
        c.insert(n("two.b"), RecordType::A, vec![a_rec("two.b", 600)], t(1));
        assert!(c.lookup(&n("one.b"), RecordType::A, t(2)).is_hit());
        c.insert(
            n("three.b"),
            RecordType::A,
            vec![a_rec("three.b", 600)],
            t(3),
        );
        // FIFO ignores the touch: `one` goes despite being recently used.
        assert!(!c.contains_fresh(&n("one.b"), RecordType::A, t(3)));
        assert!(c.contains_fresh(&n("two.b"), RecordType::A, t(3)));
    }

    #[test]
    fn earliest_expiry_evicts_soonest_to_expire() {
        let mut c = DnsCache::new(
            1,
            CacheConfig {
                capacity: 2,
                policy: EvictionPolicy::EarliestExpiry,
                ..CacheConfig::default()
            },
        );
        c.insert(
            n("short.b"),
            RecordType::A,
            vec![a_rec("short.b", 10)],
            t(0),
        );
        c.insert(n("long.b"), RecordType::A, vec![a_rec("long.b", 600)], t(0));
        c.insert(n("new.b"), RecordType::A, vec![a_rec("new.b", 60)], t(1));
        assert!(!c.contains_fresh(&n("short.b"), RecordType::A, t(1)));
        assert!(c.contains_fresh(&n("long.b"), RecordType::A, t(1)));
    }

    #[test]
    fn expired_entries_are_purged_before_live_victims() {
        let mut c = DnsCache::new(
            1,
            CacheConfig {
                capacity: 2,
                policy: EvictionPolicy::Lru,
                ..CacheConfig::default()
            },
        );
        c.insert(n("dead.b"), RecordType::A, vec![a_rec("dead.b", 5)], t(0));
        c.insert(n("live.b"), RecordType::A, vec![a_rec("live.b", 600)], t(0));
        // At t=10 `dead` is expired; inserting must purge it, not `live`.
        c.insert(n("new.b"), RecordType::A, vec![a_rec("new.b", 600)], t(10));
        assert!(c.contains_fresh(&n("live.b"), RecordType::A, t(10)));
        assert!(c.contains_fresh(&n("new.b"), RecordType::A, t(10)));
    }

    #[test]
    fn random_eviction_is_deterministic_per_seed() {
        let run = || {
            let mut c = DnsCache::new(
                42,
                CacheConfig {
                    capacity: 4,
                    policy: EvictionPolicy::Random,
                    ..CacheConfig::default()
                },
            );
            for i in 0..32 {
                c.insert(
                    n(&format!("k{i}.b")),
                    RecordType::A,
                    vec![a_rec(&format!("k{i}.b"), 600)],
                    t(i),
                );
            }
            let mut alive: Vec<String> = (0..32)
                .filter(|i| c.contains_fresh(&n(&format!("k{i}.b")), RecordType::A, t(32)))
                .map(|i| i.to_string())
                .collect();
            alive.sort();
            alive
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reinserting_same_key_does_not_evict() {
        let mut c = DnsCache::new(
            1,
            CacheConfig {
                capacity: 1,
                ..CacheConfig::default()
            },
        );
        c.insert(n("a.b"), RecordType::A, vec![a_rec("a.b", 60)], t(0));
        c.insert(n("a.b"), RecordType::A, vec![a_rec("a.b", 120)], t(1));
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = DnsCache::with_defaults(1);
        c.insert(n("a.b"), RecordType::A, vec![a_rec("a.b", 60)], t(0));
        c.flush();
        assert!(c.is_empty());
        assert_eq!(c.lookup(&n("a.b"), RecordType::A, t(0)), CacheLookup::Miss);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        DnsCache::new(
            1,
            CacheConfig {
                capacity: 0,
                ..CacheConfig::default()
            },
        );
    }

    #[test]
    fn repeated_query_within_ttl_hits_once_inserted() {
        // The §II-C consistency property: one upstream fetch per TTL window.
        let mut c = DnsCache::with_defaults(1);
        let mut upstream_queries = 0;
        for second in 0..120u64 {
            let now = t(second);
            if !c.lookup(&n("a.b"), RecordType::A, now).is_hit() {
                upstream_queries += 1;
                c.insert(n("a.b"), RecordType::A, vec![a_rec("a.b", 60)], now);
            }
        }
        assert_eq!(upstream_queries, 2); // once at t=0, once at t=60
    }
}
