//! Property-based tests for cache invariants.

use cde_cache::{CacheConfig, CacheLookup, DnsCache, EvictionPolicy};
use cde_dns::{Name, RData, Record, RecordType, Ttl};
use cde_netsim::{SimDuration, SimTime};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

fn key_name(i: u8) -> Name {
    format!("k{i}.cache.example").parse().unwrap()
}

fn a_rec(name: &Name, ttl: u32) -> Record {
    Record::new(
        name.clone(),
        Ttl::from_secs(ttl),
        RData::A(Ipv4Addr::new(10, 0, 0, 1)),
    )
}

/// One scripted operation against the cache.
#[derive(Debug, Clone)]
enum Op {
    Insert { key: u8, ttl: u32 },
    Lookup { key: u8 },
    AdvanceSecs(u64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..24, 1u32..600).prop_map(|(key, ttl)| Op::Insert { key, ttl }),
        (0u8..24).prop_map(|key| Op::Lookup { key }),
        (0u64..120).prop_map(Op::AdvanceSecs),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The cache never exceeds its capacity, regardless of workload.
    #[test]
    fn capacity_is_never_exceeded(
        ops in proptest::collection::vec(op(), 1..200),
        capacity in 1usize..8,
        policy_idx in 0usize..4,
    ) {
        let mut cache = DnsCache::new(
            0,
            CacheConfig {
                capacity,
                policy: EvictionPolicy::all()[policy_idx],
                ..CacheConfig::default()
            },
        );
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::Insert { key, ttl } => {
                    let name = key_name(key);
                    let rec = a_rec(&name, ttl);
                    cache.insert(name, RecordType::A, vec![rec], t(now));
                }
                Op::Lookup { key } => {
                    let _ = cache.lookup(&key_name(key), RecordType::A, t(now));
                }
                Op::AdvanceSecs(s) => now += s,
            }
            prop_assert!(cache.len() <= capacity);
        }
    }

    /// A hit within the TTL returns a decayed TTL no larger than the
    /// inserted one, and a lookup after expiry always misses.
    #[test]
    fn ttl_decay_and_expiry(ttl in 1u32..1000, wait in 0u64..2000) {
        let mut cache = DnsCache::with_defaults(0);
        let name = key_name(0);
        cache.insert(name.clone(), RecordType::A, vec![a_rec(&name, ttl)], t(0));
        match cache.lookup(&name, RecordType::A, t(wait)) {
            CacheLookup::Hit(rrs) => {
                prop_assert!(wait < ttl as u64);
                prop_assert_eq!(rrs[0].ttl(), Ttl::from_secs(ttl - wait as u32));
            }
            CacheLookup::Miss => prop_assert!(wait >= ttl as u64),
            CacheLookup::NegativeHit(_) => prop_assert!(false, "no negative entries inserted"),
        }
    }

    /// Clamped TTLs always land inside the configured window.
    #[test]
    fn clamp_window_respected(ttl in 0u32..100_000, lo in 1u32..100, hi in 100u32..10_000) {
        let mut cache = DnsCache::new(
            0,
            CacheConfig {
                min_ttl: Ttl::from_secs(lo),
                max_ttl: Ttl::from_secs(hi),
                ..CacheConfig::default()
            },
        );
        let name = key_name(0);
        cache.insert(name.clone(), RecordType::A, vec![a_rec(&name, ttl)], t(0));
        // Entry must be alive until at least `lo` and at most `hi`.
        prop_assert!(cache.contains_fresh(&name, RecordType::A, t(lo as u64 - 1)));
        prop_assert!(!cache.contains_fresh(&name, RecordType::A, t(hi as u64)));
    }

    /// Two caches with the same id and workload behave identically
    /// (determinism of the whole structure, including random eviction).
    #[test]
    fn caches_are_deterministic(ops in proptest::collection::vec(op(), 1..150)) {
        let run = |ops: &[Op]| {
            let mut cache = DnsCache::new(
                9,
                CacheConfig {
                    capacity: 4,
                    policy: EvictionPolicy::Random,
                    ..CacheConfig::default()
                },
            );
            let mut now = 0u64;
            let mut log = Vec::new();
            for op in ops {
                match op {
                    Op::Insert { key, ttl } => {
                        let name = key_name(*key);
                        let rec = a_rec(&name, *ttl);
                        cache.insert(name, RecordType::A, vec![rec], t(now));
                    }
                    Op::Lookup { key } => {
                        log.push(cache.lookup(&key_name(*key), RecordType::A, t(now)).is_hit());
                    }
                    Op::AdvanceSecs(s) => now += s,
                }
            }
            (log, cache.stats())
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }
}
