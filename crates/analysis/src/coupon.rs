//! Coupon-collector analysis (paper §V-B).
//!
//! Enumerating caches behind an IP address under unpredictable (uniform
//! random) cache selection is the coupon-collector problem: each query
//! probes one of `n` caches uniformly; how many queries until all were
//! probed at least once?
//!
//! The paper's Theorem 5.1: `E[X] = n·H_n = n·ln n + O(n)`.
//! Its two-phase init/validate protocol sends `N` seeds; the expected
//! uncovered fraction is `≈ exp(−N/n)` and the expected success rate is
//! `N·(1 − exp(−N/n))²`.

use rand::Rng;

/// The `n`-th harmonic number `H_n = Σ_{i=1..n} 1/i`.
///
/// # Examples
///
/// ```
/// use cde_analysis::coupon::harmonic;
/// assert_eq!(harmonic(1), 1.0);
/// assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
/// ```
pub fn harmonic(n: u64) -> f64 {
    if n <= 100_000 {
        (1..=n).map(|i| 1.0 / i as f64).sum()
    } else {
        // Asymptotic expansion keeps large sweeps cheap.
        let nf = n as f64;
        nf.ln() + 0.577_215_664_901_532_9 + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
    }
}

/// Expected queries to probe all `n` caches under uniform random selection:
/// `E[X] = n·H_n` (Theorem 5.1).
///
/// # Examples
///
/// ```
/// use cde_analysis::coupon::expected_queries;
/// assert_eq!(expected_queries(1), 1.0);
/// assert!((expected_queries(2) - 3.0).abs() < 1e-12);
/// ```
pub fn expected_queries(n: u64) -> f64 {
    n as f64 * harmonic(n)
}

/// Variance of the coupon-collector count:
/// `Var[X] = Σ (1−p_i)/p_i²` with `p_i = (n−i+1)/n`.
pub fn variance(n: u64) -> f64 {
    let nf = n as f64;
    (1..=n)
        .map(|i| {
            let p = (n - i + 1) as f64 / nf;
            (1.0 - p) / (p * p)
        })
        .sum()
}

/// Union-bound tail: `P[X > t] ≤ n·(1 − 1/n)^t`.
///
/// Useful for choosing a query budget `q` that covers all caches with high
/// probability.
pub fn tail_bound(n: u64, t: u64) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let miss_one = 1.0 - 1.0 / n as f64;
    (n as f64 * miss_one.powf(t as f64)).min(1.0)
}

/// Smallest query budget `q` with `P[not all probed] ≤ failure` by the
/// union bound.
///
/// # Examples
///
/// ```
/// use cde_analysis::coupon::query_budget;
/// assert_eq!(query_budget(1, 0.01), 1);
/// let q = query_budget(4, 0.01);
/// // Must exceed the expectation 4·H_4 ≈ 8.33.
/// assert!(q > 8);
/// ```
pub fn query_budget(n: u64, failure: f64) -> u64 {
    assert!(
        failure > 0.0 && failure < 1.0,
        "failure probability must be in (0, 1)"
    );
    if n <= 1 {
        return 1;
    }
    let nf = n as f64;
    let t = (failure / nf).ln() / (1.0 - 1.0 / nf).ln();
    t.ceil().max(nf) as u64
}

/// Expected fraction of `n` caches left untouched after `seeds` uniform
/// probes: `(1 − 1/n)^N ≈ exp(−N/n)` (§V-B).
pub fn expected_uncovered_fraction(n: u64, seeds: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    (-(seeds as f64) / n as f64).exp()
}

/// The paper's expected success rate of the init/validate protocol with
/// `N` seeds over `n` caches: `N·(1 − exp(−N/n))²`.
pub fn expected_success_rate(n: u64, seeds: u64) -> f64 {
    let covered = 1.0 - expected_uncovered_fraction(n, seeds);
    seeds as f64 * covered * covered
}

/// Runs one coupon-collector experiment: draws uniformly from `n` caches
/// until all have been seen, returning the number of draws.
///
/// # Panics
///
/// Panics when `n` is zero.
pub fn simulate_collection<R: Rng + ?Sized>(n: u64, rng: &mut R) -> u64 {
    assert!(n > 0, "need at least one cache");
    let n = n as usize;
    let mut seen = vec![false; n];
    let mut remaining = n;
    let mut draws = 0u64;
    while remaining > 0 {
        draws += 1;
        let i = rng.gen_range(0..n);
        if !seen[i] {
            seen[i] = true;
            remaining -= 1;
        }
    }
    draws
}

/// Mean of `trials` simulated collections (Monte-Carlo check of
/// Theorem 5.1).
pub fn simulate_mean<R: Rng + ?Sized>(n: u64, trials: u64, rng: &mut R) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let total: u64 = (0..trials).map(|_| simulate_collection(n, rng)).sum();
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    // The analysis crate has no dependency on cde-netsim; use rand
    // directly with a fixed-seed SmallRng for deterministic tests.
    mod cde_netsim_shim {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        pub struct DetRng;

        impl DetRng {
            pub fn seed(seed: u64) -> SmallRng {
                SmallRng::seed_from_u64(seed)
            }
        }
    }

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(10) - 2.928_968_253_968_254).abs() < 1e-9);
    }

    #[test]
    fn harmonic_asymptotic_branch_is_continuous() {
        // Compare the exact sum and the expansion near the switch point.
        let exact: f64 = (1..=100_000u64).map(|i| 1.0 / i as f64).sum();
        let nf = 100_000f64;
        let approx = nf.ln() + 0.577_215_664_901_532_9 + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf);
        assert!((exact - approx).abs() < 1e-9);
    }

    #[test]
    fn expected_queries_matches_hand_values() {
        // n=3: 3·(1 + 1/2 + 1/3) = 5.5
        assert!((expected_queries(3) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn expectation_grows_n_log_n() {
        let e64 = expected_queries(64);
        let bound = 64.0 * (64f64.ln() + 1.0);
        assert!(e64 < bound);
        assert!(e64 > 64.0 * 64f64.ln());
    }

    #[test]
    fn monte_carlo_matches_theorem_5_1() {
        let mut rng = cde_netsim_shim::DetRng::seed(11);
        for n in [1u64, 2, 4, 8, 16, 32] {
            let sim = simulate_mean(n, 3000, &mut rng);
            let theory = expected_queries(n);
            let tolerance = 4.0 * (variance(n) / 3000.0).sqrt() + 0.05;
            assert!(
                (sim - theory).abs() < tolerance,
                "n={n}: sim {sim:.2} vs theory {theory:.2} (tol {tolerance:.2})"
            );
        }
    }

    #[test]
    fn tail_bound_decreases_in_t() {
        let mut prev = 1.0;
        for t in [10u64, 20, 40, 80, 160] {
            let p = tail_bound(8, t);
            assert!(p <= prev);
            prev = p;
        }
        assert!(tail_bound(1, 0) == 0.0);
    }

    #[test]
    fn query_budget_actually_covers() {
        let mut rng = cde_netsim_shim::DetRng::seed(13);
        let n = 6u64;
        let q = query_budget(n, 0.01);
        let trials = 2000;
        let failures = (0..trials)
            .filter(|_| simulate_collection_with_budget(n, q, &mut rng) < n)
            .count();
        // Union bound is conservative: observed failure rate must be below.
        assert!(
            (failures as f64 / trials as f64) < 0.01,
            "failures {failures}/{trials}"
        );

        fn simulate_collection_with_budget<R: rand::Rng + ?Sized>(
            n: u64,
            q: u64,
            rng: &mut R,
        ) -> u64 {
            let mut seen = vec![false; n as usize];
            for _ in 0..q {
                seen[rng.gen_range(0..n as usize)] = true;
            }
            seen.iter().filter(|s| **s).count() as u64
        }
    }

    #[test]
    #[should_panic(expected = "failure probability")]
    fn query_budget_rejects_bad_probability() {
        query_budget(4, 1.5);
    }

    #[test]
    fn uncovered_fraction_matches_simulation() {
        let mut rng = cde_netsim_shim::DetRng::seed(17);
        let n = 10u64;
        let seeds = 20u64; // N = 2n, the paper's working point
        let trials = 4000;
        let mut uncovered_total = 0u64;
        for _ in 0..trials {
            let mut seen = vec![false; n as usize];
            for _ in 0..seeds {
                seen[rng.gen_range(0..n as usize)] = true;
            }
            uncovered_total += seen.iter().filter(|s| !**s).count() as u64;
        }
        let observed = uncovered_total as f64 / (trials as f64 * n as f64);
        let theory = expected_uncovered_fraction(n, seeds);
        // exp(-2) ≈ 0.135; exact is (1-1/n)^N ≈ 0.122 — both near observed.
        assert!(
            (observed - theory).abs() < 0.03,
            "observed {observed:.3} theory {theory:.3}"
        );
    }

    #[test]
    fn success_rate_approaches_n_seeds() {
        // As N/n grows the success rate approaches N (paper §V-B).
        let n = 4;
        let big = expected_success_rate(n, 64);
        assert!(big > 63.0 && big <= 64.0);
        let small = expected_success_rate(n, 4);
        assert!(small < 2.5);
    }

    #[test]
    fn variance_positive_and_growing() {
        assert_eq!(variance(1), 0.0);
        assert!(variance(4) > 0.0);
        assert!(variance(32) > variance(8));
    }

    #[test]
    #[should_panic(expected = "at least one cache")]
    fn simulate_zero_caches_panics() {
        let mut rng = cde_netsim_shim::DetRng::seed(1);
        simulate_collection(0, &mut rng);
    }
}
