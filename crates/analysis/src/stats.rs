//! Descriptive statistics for the evaluation figures.
//!
//! Figures 3 and 4 are empirical CDFs; Figures 5, 7 and 8 are bubble
//! scatter plots (circle area = number of networks at that `(x, y)` cell);
//! Figure 6 is a categorical breakdown. [`Cdf`], [`Scatter`] and
//! [`Histogram`] regenerate those shapes from measured populations.

use std::collections::BTreeMap;

/// An empirical cumulative distribution function over `u64` samples.
///
/// # Examples
///
/// ```
/// use cde_analysis::stats::Cdf;
///
/// let cdf = Cdf::from_samples([1u64, 1, 2, 5, 20]);
/// assert_eq!(cdf.len(), 5);
/// assert!((cdf.fraction_at_or_below(2) - 0.6).abs() < 1e-12);
/// assert_eq!(cdf.percentile(50.0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cdf {
    sorted: Vec<u64>,
}

impl Cdf {
    /// Builds a CDF from samples.
    pub fn from_samples<I: IntoIterator<Item = u64>>(samples: I) -> Cdf {
        let mut sorted: Vec<u64> = samples.into_iter().collect();
        sorted.sort_unstable();
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `≤ x`.
    pub fn fraction_at_or_below(&self, x: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples `> x` — the form the paper quotes ("50% of the
    /// platforms use more than 20 IP addresses").
    pub fn fraction_above(&self, x: u64) -> f64 {
        1.0 - self.fraction_at_or_below(x)
    }

    /// The `p`-th percentile (nearest-rank).
    ///
    /// # Panics
    ///
    /// Panics when the CDF is empty or `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!(!self.sorted.is_empty(), "percentile of empty cdf");
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        let n = self.sorted.len();
        // Multiply before dividing: `(p / 100.0) * n` misrounds exact
        // ranks (0.1 × 10 = 1.0000000000000002 ceils to rank 2 instead
        // of 1), shifting every percentile that should land exactly on
        // a sample. The clamp also makes p = 0 the minimum without a
        // special case and keeps p = 100 in bounds.
        let rank = ((p * n as f64) / 100.0).ceil() as usize;
        self.sorted[rank.clamp(1, n) - 1]
    }

    /// Median (50th percentile).
    pub fn median(&self) -> u64 {
        self.percentile(50.0)
    }

    /// `(value, cumulative fraction)` steps for plotting.
    pub fn steps(&self) -> Vec<(u64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < self.sorted.len() {
            let v = self.sorted[i];
            let j = self.sorted.partition_point(|&x| x <= v);
            out.push((v, j as f64 / n));
            i = j;
        }
        out
    }
}

/// Running mean/variance accumulator (Welford).
///
/// # Examples
///
/// ```
/// use cde_analysis::stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Summary {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; `0.0` with fewer than two observations.
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (Bessel-corrected); `0.0` with fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Smallest observation; `NaN`-free: `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Summary {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// A 2-D bubble scatter: counts per `(x, y)` cell, as in Figures 5/7/8
/// where circle size is the number of networks at that coordinate.
///
/// # Examples
///
/// ```
/// use cde_analysis::stats::Scatter;
///
/// let mut sc = Scatter::new();
/// sc.add(1, 1);
/// sc.add(1, 1);
/// sc.add(500, 30);
/// assert_eq!(sc.count_at(1, 1), 2);
/// assert_eq!(sc.largest_cell(), Some(((1, 1), 2)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Scatter {
    cells: BTreeMap<(u64, u64), u64>,
    total: u64,
}

impl Scatter {
    /// Creates an empty scatter.
    pub fn new() -> Scatter {
        Scatter::default()
    }

    /// Adds one `(x, y)` observation.
    pub fn add(&mut self, x: u64, y: u64) {
        *self.cells.entry((x, y)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count at one cell.
    pub fn count_at(&self, x: u64, y: u64) -> u64 {
        self.cells.get(&(x, y)).copied().unwrap_or(0)
    }

    /// Fraction of observations at one cell.
    pub fn fraction_at(&self, x: u64, y: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count_at(x, y) as f64 / self.total as f64
        }
    }

    /// The cell with the most observations (the "largest circle").
    pub fn largest_cell(&self) -> Option<((u64, u64), u64)> {
        self.cells
            .iter()
            .max_by_key(|(coord, count)| (*count, std::cmp::Reverse(*coord)))
            .map(|(&coord, &count)| (coord, count))
    }

    /// All cells with counts, ordered by coordinate.
    pub fn cells(&self) -> impl Iterator<Item = ((u64, u64), u64)> + '_ {
        self.cells.iter().map(|(&c, &n)| (c, n))
    }

    /// Fraction of observations satisfying a predicate on `(x, y)` — used
    /// for Figure 6's quadrant percentages.
    pub fn fraction_where<F: Fn(u64, u64) -> bool>(&self, pred: F) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let matching: u64 = self
            .cells
            .iter()
            .filter(|(&(x, y), _)| pred(x, y))
            .map(|(_, &n)| n)
            .sum();
        matching as f64 / self.total as f64
    }
}

impl Extend<(u64, u64)> for Scatter {
    fn extend<T: IntoIterator<Item = (u64, u64)>>(&mut self, iter: T) {
        for (x, y) in iter {
            self.add(x, y);
        }
    }
}

impl FromIterator<(u64, u64)> for Scatter {
    fn from_iter<T: IntoIterator<Item = (u64, u64)>>(iter: T) -> Scatter {
        let mut s = Scatter::new();
        s.extend(iter);
        s
    }
}

/// An integer histogram with explicit bucket upper bounds.
///
/// # Examples
///
/// ```
/// use cde_analysis::stats::Histogram;
///
/// let mut h = Histogram::with_bounds(&[1, 2, 5, 10]);
/// for v in [1u64, 1, 2, 3, 7, 100] {
///     h.add(v);
/// }
/// assert_eq!(h.counts(), &[2, 1, 1, 1, 1]); // ≤1, ≤2, ≤5, ≤10, overflow
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds plus an
    /// implicit overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "need at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        }
    }

    /// Adds one value.
    pub fn add(&mut self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
    }

    /// Bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_fractions() {
        let cdf = Cdf::from_samples([1u64, 2, 2, 3, 10]);
        assert!((cdf.fraction_at_or_below(2) - 0.6).abs() < 1e-12);
        assert!((cdf.fraction_above(3) - 0.2).abs() < 1e-12);
        assert_eq!(cdf.fraction_at_or_below(0), 0.0);
        assert_eq!(cdf.fraction_above(10), 0.0);
    }

    #[test]
    fn cdf_percentiles() {
        let cdf = Cdf::from_samples(1..=100u64);
        assert_eq!(cdf.percentile(50.0), 50);
        assert_eq!(cdf.percentile(85.0), 85);
        assert_eq!(cdf.percentile(100.0), 100);
        assert_eq!(cdf.percentile(0.0), 1);
        assert_eq!(cdf.median(), 50);
    }

    #[test]
    fn cdf_steps_are_monotone_and_end_at_one() {
        let cdf = Cdf::from_samples([5u64, 1, 5, 9, 1, 1]);
        let steps = cdf.steps();
        assert_eq!(steps.len(), 3); // values 1, 5, 9
        assert!(steps.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert!((steps.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty cdf")]
    fn empty_cdf_percentile_panics() {
        Cdf::from_samples(std::iter::empty()).percentile(50.0);
    }

    #[test]
    fn percentile_exact_ranks_do_not_misround() {
        // (p / 100) * n accumulates float error on exact ranks: p = 10
        // of 10 samples must be rank 1 (the minimum), not rank 2.
        let cdf = Cdf::from_samples((1..=10u64).map(|v| v * 100));
        assert_eq!(cdf.percentile(10.0), 100);
        assert_eq!(cdf.percentile(20.0), 200);
        assert_eq!(cdf.percentile(30.0), 300);
        assert_eq!(cdf.percentile(70.0), 700);
    }

    #[test]
    fn percentile_single_sample_is_constant() {
        let cdf = Cdf::from_samples([42u64]);
        for p in [0.0, 0.1, 1.0, 50.0, 99.9, 100.0] {
            assert_eq!(cdf.percentile(p), 42, "p = {p}");
        }
    }

    #[test]
    fn percentile_handles_unsorted_duplicates_and_extremes() {
        let cdf = Cdf::from_samples([9u64, 1, 5, 5, 1, 9, 5]);
        assert_eq!(cdf.percentile(0.0), 1);
        assert_eq!(cdf.percentile(1.0), 1);
        assert_eq!(cdf.percentile(50.0), 5);
        assert_eq!(cdf.percentile(99.0), 9);
        assert_eq!(cdf.percentile(100.0), 9);
    }

    #[test]
    fn summary_accumulates() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn summary_empty_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn scatter_quadrant_fractions() {
        let mut sc = Scatter::new();
        for _ in 0..70 {
            sc.add(1, 1);
        }
        for _ in 0..30 {
            sc.add(4, 3);
        }
        assert!((sc.fraction_where(|x, y| x == 1 && y == 1) - 0.7).abs() < 1e-12);
        assert!((sc.fraction_where(|x, y| x > 1 && y > 1) - 0.3).abs() < 1e-12);
        assert_eq!(sc.largest_cell(), Some(((1, 1), 70)));
    }

    #[test]
    fn scatter_from_iterator() {
        let sc: Scatter = vec![(1u64, 2u64), (1, 2), (3, 4)].into_iter().collect();
        assert_eq!(sc.total(), 3);
        assert_eq!(sc.count_at(1, 2), 2);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::with_bounds(&[2, 4]);
        for v in [1u64, 2, 3, 4, 5, 6] {
            h.add(v);
        }
        assert_eq!(h.counts(), &[2, 2, 2]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::with_bounds(&[5, 3]);
    }
}

/// Wilson score interval for a binomial proportion.
///
/// Returns `(low, high)` bounds for the true success probability given
/// `successes` out of `trials` at confidence `z` standard deviations
/// (1.96 ≈ 95%). Used to put error bars on measured rates (enumeration
/// exactness, adoption fractions) in experiment reports.
///
/// # Examples
///
/// ```
/// use cde_analysis::stats::wilson_interval;
///
/// let (lo, hi) = wilson_interval(90, 100, 1.96);
/// assert!(lo < 0.9 && 0.9 < hi);
/// assert!(lo > 0.80 && hi < 0.97);
/// ```
///
/// # Panics
///
/// Panics when `successes > trials` or `trials` is zero.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "need at least one trial");
    assert!(successes <= trials, "successes cannot exceed trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

#[cfg(test)]
mod wilson_tests {
    use super::wilson_interval;

    #[test]
    fn interval_contains_point_estimate() {
        for (s, n) in [(0u64, 10u64), (5, 10), (10, 10), (950, 1000)] {
            let (lo, hi) = wilson_interval(s, n, 1.96);
            let p = s as f64 / n as f64;
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "{s}/{n}: [{lo}, {hi}]");
        }
    }

    #[test]
    fn interval_narrows_with_more_trials() {
        let (lo1, hi1) = wilson_interval(9, 10, 1.96);
        let (lo2, hi2) = wilson_interval(900, 1000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn extremes_stay_in_unit_interval() {
        let (lo, hi) = wilson_interval(0, 5, 1.96);
        assert!(lo >= 0.0 && hi <= 1.0 && hi > 0.0);
        let (lo, hi) = wilson_interval(5, 5, 1.96);
        assert!(lo < 1.0 && hi <= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        wilson_interval(0, 0, 1.96);
    }
}
