//! Analysis toolkit for the CDE reproduction.
//!
//! Implements the paper's §V-B mathematics and the descriptive statistics
//! behind every evaluation figure:
//!
//! * [`coupon`] — coupon-collector analysis: `E[X] = n·H_n`
//!   (Theorem 5.1), tail bounds, query budgets, the `exp(−N/n)` coverage
//!   estimate and the init/validate success rate,
//! * [`estimators`] — bias-corrected cache-count estimation and the
//!   carpet-bombing redundancy `K` as a function of packet loss,
//! * [`stats`] — empirical CDFs (Figs. 3–4), bubble scatters (Figs. 5, 7,
//!   8), quadrant fractions (Fig. 6), histograms and running summaries.
//!
//! # Examples
//!
//! ```
//! use cde_analysis::coupon::{expected_queries, query_budget};
//!
//! // Probing 4 caches takes ~8.3 queries in expectation...
//! assert!((expected_queries(4) - 4.0 * (1.0 + 0.5 + 1.0/3.0 + 0.25)).abs() < 1e-9);
//! // ...and 33 queries bound the failure probability by 1%.
//! assert!(query_budget(4, 0.01) >= 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coupon;
pub mod estimators;
pub mod stats;

pub use coupon::{
    expected_queries, expected_success_rate, expected_uncovered_fraction, harmonic, query_budget,
};
pub use estimators::{carpet_bombing_k, estimate_cache_count, recommended_seeds};
pub use stats::{wilson_interval, Cdf, Histogram, Scatter, Summary};
