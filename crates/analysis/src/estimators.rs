//! Estimators turning raw probe observations into cache counts.
//!
//! The enumeration procedures observe `ω` — distinct upstream fetches (or
//! uncached-latency responses) out of `q`/`N` probes. With enough probes
//! `ω = n` exactly; with a tight budget `ω` underestimates `n`, and the
//! occupancy relation `E[ω] = n·(1 − (1 − 1/n)^N)` can be inverted to
//! correct the bias. Carpet bombing (§V) picks the per-probe redundancy
//! `K` from the measured loss rate.

/// Maximum-likelihood-style inversion of the occupancy relation:
/// given `observed` distinct caches out of `probes` uniform probes,
/// estimate the true cache count `n`.
///
/// Solves `observed = n·(1 − (1 − 1/n)^probes)` for `n` by bisection.
/// Returns `observed` unchanged when the equation has no larger root
/// (i.e. the observation is already consistent with `n = observed`).
///
/// # Examples
///
/// ```
/// use cde_analysis::estimators::estimate_cache_count;
///
/// // 100 probes, 10 distinct: essentially everything was covered.
/// assert_eq!(estimate_cache_count(10, 100), 10);
/// // 8 probes, 6 distinct: real count is likely a little above 6.
/// assert!(estimate_cache_count(6, 8) >= 6);
/// ```
///
/// # Panics
///
/// Panics when `observed > probes` (impossible observation).
pub fn estimate_cache_count(observed: u64, probes: u64) -> u64 {
    assert!(
        observed <= probes,
        "cannot observe more distinct caches than probes"
    );
    if observed == 0 {
        return 0;
    }
    if observed == probes {
        // Every probe hit a new cache; n could be anything ≥ probes, the
        // conservative answer is the observation itself.
        return observed;
    }
    let expected = |n: f64| -> f64 { n * (1.0 - (1.0 - 1.0 / n).powf(probes as f64)) };
    // Bisect on n in [observed, observed * 64].
    let target = observed as f64;
    let mut lo = observed as f64;
    let mut hi = (observed as f64) * 64.0;
    if expected(lo.max(1.000001)) >= target - 1e-9 && expected(hi) <= target {
        return observed;
    }
    for _ in 0..96 {
        let mid = 0.5 * (lo + hi);
        if expected(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5f64.mul_add(lo + hi, 0.5).floor() as u64
}

/// Carpet-bombing redundancy: the smallest `K` such that the probability
/// that all `K` copies of a probe are lost is at most `residual`
/// (`loss^K ≤ residual`).
///
/// # Examples
///
/// ```
/// use cde_analysis::estimators::carpet_bombing_k;
///
/// assert_eq!(carpet_bombing_k(0.0, 0.001), 1);
/// assert_eq!(carpet_bombing_k(0.01, 0.001), 2); // 0.01² = 1e-4 ≤ 1e-3
/// assert_eq!(carpet_bombing_k(0.11, 0.001), 4); // 0.11³ ≈ 1.3e-3 > 1e-3
/// ```
///
/// # Panics
///
/// Panics when `loss` is outside `[0, 1)` or `residual` outside `(0, 1)`.
pub fn carpet_bombing_k(loss: f64, residual: f64) -> u64 {
    assert!(
        loss.is_finite() && (0.0..1.0).contains(&loss),
        "loss must be in [0, 1)"
    );
    assert!(
        residual > 0.0 && residual < 1.0,
        "residual must be in (0, 1)"
    );
    if loss == 0.0 {
        return 1;
    }
    let k = residual.ln() / loss.ln();
    (k.ceil() as u64).max(1)
}

/// Recommended seed count for the init/validate protocol: the paper uses
/// `N = 2·n_max` ("only a small fraction of caches may be missed with
/// N = 2·n"), scaled up under loss by the carpet-bombing factor.
pub fn recommended_seeds(n_max: u64, loss: f64) -> u64 {
    let base = 2 * n_max.max(1);
    base * carpet_bombing_k(loss, 0.001)
}

/// Estimates the loss rate from `sent` probes of which `answered` returned,
/// attributing all failures to loss (the measurement-side view).
pub fn observed_loss_rate(sent: u64, answered: u64) -> f64 {
    assert!(answered <= sent, "cannot answer more than was sent");
    if sent == 0 {
        return 0.0;
    }
    1.0 - answered as f64 / sent as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_is_exact_with_many_probes() {
        for n in [1u64, 2, 5, 10] {
            assert_eq!(estimate_cache_count(n, n * 50), n);
        }
    }

    #[test]
    fn estimate_corrects_upward_with_few_probes() {
        // True n = 10, N = 10 probes: E[ω] = 10·(1−0.9^10) ≈ 6.5.
        // Observing 6 or 7 should give back ≈ 9–11.
        let est = estimate_cache_count(7, 10);
        assert!((9..=14).contains(&est), "estimate {est}");
    }

    #[test]
    fn estimate_zero_observed() {
        assert_eq!(estimate_cache_count(0, 10), 0);
    }

    #[test]
    fn estimate_saturated_observation() {
        assert_eq!(estimate_cache_count(5, 5), 5);
    }

    #[test]
    #[should_panic(expected = "cannot observe")]
    fn estimate_rejects_impossible_observation() {
        estimate_cache_count(11, 10);
    }

    #[test]
    fn carpet_k_for_paper_loss_rates() {
        // Typical 1% → K=2 at 1e-3 residual; China 4% → 3; Iran 11% → 4.
        assert_eq!(carpet_bombing_k(0.01, 0.001), 2);
        assert_eq!(carpet_bombing_k(0.04, 0.001), 3);
        assert_eq!(carpet_bombing_k(0.11, 0.001), 4);
    }

    #[test]
    fn carpet_k_monotone_in_loss() {
        let ks: Vec<u64> = [0.0, 0.01, 0.04, 0.11, 0.5]
            .iter()
            .map(|&l| carpet_bombing_k(l, 0.001))
            .collect();
        for w in ks.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "loss must be")]
    fn carpet_k_rejects_certain_loss() {
        carpet_bombing_k(1.0, 0.001);
    }

    #[test]
    fn recommended_seeds_doubles_n_and_scales_with_loss() {
        assert_eq!(recommended_seeds(8, 0.0), 16);
        assert_eq!(recommended_seeds(8, 0.11), 64); // 16 × K=4
        assert_eq!(recommended_seeds(0, 0.0), 2);
    }

    #[test]
    fn observed_loss_rate_basics() {
        assert_eq!(observed_loss_rate(0, 0), 0.0);
        assert!((observed_loss_rate(100, 89) - 0.11).abs() < 1e-12);
    }
}
