//! Synthetic network populations calibrated to the paper's marginals.
//!
//! The paper's evaluation reports *distributions* over three populations
//! (open resolvers, enterprises probed via SMTP, ISPs probed via an
//! ad-network). We generate ground-truth platforms drawn from mixtures
//! calibrated to the published marginals — Fig. 3 (egress IPs), Fig. 4
//! (cache counts), Figs. 5–8 (ingress-vs-caches shapes) — and then run
//! the *measurement pipeline* against them. The pipeline never reads the
//! spec; experiments compare measured distributions against both the spec
//! and the paper's numbers.

use crate::operators::{
    sample_operator, AD_NETWORK_OPERATORS, EMAIL_SERVER_OPERATORS, OPEN_RESOLVER_OPERATORS,
};
use cde_cache::SoftwareProfile;
use cde_dns::Edns;
use cde_netsim::{CountryProfile, DetRng, LatencyModel, Link, LossModel, SimDuration};
use cde_platform::{ClusterConfig, PlatformBuilder, ResolutionPlatform, SelectorKind};
use rand::Rng;
use std::net::Ipv4Addr;

/// Which of the paper's three datasets a network belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PopulationKind {
    /// Alexa-top networks operating open resolvers (§III-A).
    OpenResolvers,
    /// Enterprises probed through their mail servers (§III-B).
    Enterprises,
    /// ISP networks probed through an ad-network (§III-C).
    Isps,
}

impl PopulationKind {
    /// All three populations.
    pub fn all() -> [PopulationKind; 3] {
        [
            PopulationKind::OpenResolvers,
            PopulationKind::Enterprises,
            PopulationKind::Isps,
        ]
    }

    /// The dataset size the paper reports (1K open-resolver networks, 1K
    /// enterprises, ~240 completed ad-network clients).
    pub fn paper_size(self) -> usize {
        match self {
            PopulationKind::OpenResolvers => 1000,
            PopulationKind::Enterprises => 1000,
            PopulationKind::Isps => 240,
        }
    }
}

impl std::fmt::Display for PopulationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PopulationKind::OpenResolvers => write!(f, "open-resolvers"),
            PopulationKind::Enterprises => write!(f, "enterprises"),
            PopulationKind::Isps => write!(f, "isps"),
        }
    }
}

/// Ground-truth description of one generated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkSpec {
    /// Unique index within the generated population.
    pub id: u64,
    /// Dataset this network belongs to.
    pub kind: PopulationKind,
    /// Operator label drawn from the Fig. 2 table.
    pub operator: &'static str,
    /// Country loss profile (§V).
    pub country: CountryProfile,
    /// Number of ingress addresses.
    pub ingress_count: usize,
    /// Number of egress addresses.
    pub egress_count: usize,
    /// Cache count per cluster.
    pub cluster_caches: Vec<usize>,
    /// Load-balancer strategy.
    pub selector: SelectorKind,
    /// Whether the platform's resolver software speaks EDNS (§II-C
    /// adoption studies; modern software overwhelmingly does).
    pub edns: bool,
    /// Behavioural software profile of the caches (§II-C software
    /// measurement; fingerprintable via `cde_core::fingerprint`).
    pub software: SoftwareProfile,
}

impl NetworkSpec {
    /// Total caches across clusters.
    pub fn total_caches(&self) -> usize {
        self.cluster_caches.iter().sum()
    }

    /// The ingress addresses this network announces (deterministic from
    /// `id`).
    pub fn ingress_ips(&self) -> Vec<Ipv4Addr> {
        let base = 0xAC10_0000u32 + self.id as u32 * 4096; // 172.16.0.0/12 slice
        (0..self.ingress_count as u32)
            .map(|i| Ipv4Addr::from(base + i))
            .collect()
    }

    /// The egress addresses (deterministic from `id`).
    pub fn egress_ips(&self) -> Vec<Ipv4Addr> {
        let base = 0x6440_0000u32 + self.id as u32 * 4096; // 100.64.0.0/10 slice
        (0..self.egress_count as u32)
            .map(|i| Ipv4Addr::from(base + i))
            .collect()
    }

    /// Client↔ingress link with this network's country loss profile.
    pub fn client_link(&self) -> Link {
        self.country.wan_link()
    }

    /// Builds the ground-truth platform. Upstream links carry realistic
    /// latency but no loss (client-side loss is the prober's link; see
    /// `DESIGN.md`).
    pub fn build(&self) -> ResolutionPlatform {
        let mut builder = PlatformBuilder::new(0xD5EE_D000 + self.id)
            .ingress(self.ingress_ips())
            .egress(self.egress_ips())
            .edns(if self.edns {
                Some(Edns::default())
            } else {
                None
            })
            .upstream_link(Link::new(LatencyModel::typical_wan(), LossModel::none()))
            .internal_latency(LatencyModel::Uniform {
                low: SimDuration::from_micros(150),
                high: SimDuration::from_micros(700),
            });
        for &caches in &self.cluster_caches {
            builder = builder.cluster_config(ClusterConfig {
                cache_count: caches,
                selector: self.selector,
                cache_config: self.software.cache_config(),
            });
        }
        builder.build()
    }
}

/// Generates a population of `size` networks for `kind`, deterministically
/// from `seed`.
pub fn generate_population(kind: PopulationKind, size: usize, seed: u64) -> Vec<NetworkSpec> {
    let master = DetRng::seed(seed);
    (0..size as u64)
        .map(|id| {
            let mut rng = master.fork_indexed(&kind.to_string(), id);
            sample_network(kind, id, &mut rng)
        })
        .collect()
}

fn sample_network<R: Rng + ?Sized>(kind: PopulationKind, id: u64, rng: &mut R) -> NetworkSpec {
    let (ingress_count, caches, egress_count) = match kind {
        PopulationKind::OpenResolvers => sample_open(rng),
        PopulationKind::Enterprises => sample_enterprise(rng),
        PopulationKind::Isps => sample_isp(rng),
    };
    let operator_table = match kind {
        PopulationKind::OpenResolvers => &OPEN_RESOLVER_OPERATORS[..],
        PopulationKind::Enterprises => &EMAIL_SERVER_OPERATORS[..],
        PopulationKind::Isps => &AD_NETWORK_OPERATORS[..],
    };
    NetworkSpec {
        id,
        kind,
        operator: sample_operator(rng, operator_table),
        country: sample_country(rng),
        ingress_count,
        egress_count,
        cluster_caches: split_into_clusters(caches, ingress_count, rng),
        selector: sample_selector(rng),
        // ~90% of resolver deployments spoke EDNS by the paper's time
        // (required for DNSSEC and large responses).
        edns: rng.gen::<f64>() < 0.9,
        software: sample_software(rng),
    }
}

/// Rough software shares of the era: BIND dominant, Unbound growing,
/// Windows DNS in enterprises, dnsmasq on small gateways.
fn sample_software<R: Rng + ?Sized>(rng: &mut R) -> SoftwareProfile {
    let x = rng.gen::<f64>();
    if x < 0.45 {
        SoftwareProfile::BindLike
    } else if x < 0.70 {
        SoftwareProfile::UnboundLike
    } else if x < 0.90 {
        SoftwareProfile::MsdnsLike
    } else {
        SoftwareProfile::DnsmasqLike
    }
}

/// Open resolvers (Fig. 5, Fig. 6 left bar, Fig. 3/4 "open" curves):
/// dominated by 1-IP/1-cache deployments, a tail of mid-size setups and a
/// few >500-IP/>30-cache giants; 85% use ≤5 egress addresses.
fn sample_open<R: Rng + ?Sized>(rng: &mut R) -> (usize, usize, usize) {
    let x = rng.gen::<f64>();
    let (ingress, caches) = if x < 0.68 {
        (1, 1)
    } else if x < 0.73 {
        (rng.gen_range(1..=4), 2)
    } else if x < 0.87 {
        (rng.gen_range(2..=10), rng.gen_range(2..=6))
    } else if x < 0.95 {
        (rng.gen_range(11..=100), rng.gen_range(4..=12))
    } else if x < 0.98 {
        (rng.gen_range(200..=500), rng.gen_range(15..=30))
    } else {
        (rng.gen_range(501..=1200), rng.gen_range(31..=64))
    };
    let egress = if rng.gen::<f64>() < 0.85 {
        rng.gen_range(1..=5)
    } else {
        rng.gen_range(6..=40)
    };
    (ingress, caches, egress)
}

/// Enterprises (Fig. 7, Fig. 3/4 "smtp" curves): under 5% single-single,
/// over 80% multi-IP *and* multi-cache, 65% with 1–4 caches, half with
/// more than 20 egress addresses.
fn sample_enterprise<R: Rng + ?Sized>(rng: &mut R) -> (usize, usize, usize) {
    let x = rng.gen::<f64>();
    let (ingress, caches) = if x < 0.04 {
        (1, 1)
    } else if x < 0.09 {
        (1, rng.gen_range(2..=4))
    } else if x < 0.14 {
        (rng.gen_range(2..=10), 1)
    } else if x < 0.66 {
        // multi-multi, small cache bank (keeps the 1–4 marginal at ~65%)
        (rng.gen_range(2..=60), rng.gen_range(2..=4))
    } else {
        (rng.gen_range(5..=80), rng.gen_range(5..=20))
    };
    let egress = if rng.gen::<f64>() < 0.5 {
        rng.gen_range(2..=20)
    } else {
        rng.gen_range(21..=80)
    };
    (ingress, caches, egress)
}

/// ISPs (Fig. 8, Fig. 3/4 "ads" curves): under 10% single-single, ~65%
/// multi-multi, ~60% with 1–3 caches (the fewest of the three
/// populations), half with more than 11 egress addresses.
fn sample_isp<R: Rng + ?Sized>(rng: &mut R) -> (usize, usize, usize) {
    let x = rng.gen::<f64>();
    let (ingress, caches) = if x < 0.08 {
        (1, 1)
    } else if x < 0.25 {
        (rng.gen_range(2..=8), 1)
    } else if x < 0.35 {
        (1, rng.gen_range(2..=3))
    } else if x < 0.78 {
        (rng.gen_range(2..=20), rng.gen_range(2..=3))
    } else {
        (rng.gen_range(3..=30), rng.gen_range(4..=8))
    };
    let egress = if rng.gen::<f64>() < 0.5 {
        rng.gen_range(1..=11)
    } else {
        rng.gen_range(12..=40)
    };
    (ingress, caches, egress)
}

/// §IV-A: "more than 80% of the networks in our dataset support
/// unpredictable cache selection".
fn sample_selector<R: Rng + ?Sized>(rng: &mut R) -> SelectorKind {
    let x = rng.gen::<f64>();
    if x < 0.82 {
        SelectorKind::Random
    } else if x < 0.88 {
        SelectorKind::RoundRobin
    } else if x < 0.93 {
        SelectorKind::LeastLoaded
    } else if x < 0.97 {
        SelectorKind::QnameHash
    } else {
        SelectorKind::SourceHash
    }
}

/// §V: highest loss in Iran (11%) and China (~4%); elsewhere ~1%.
fn sample_country<R: Rng + ?Sized>(rng: &mut R) -> CountryProfile {
    let x = rng.gen::<f64>();
    if x < 0.90 {
        CountryProfile::Typical
    } else if x < 0.96 {
        CountryProfile::China
    } else {
        CountryProfile::Iran
    }
}

/// Splits `caches` over clusters: most platforms run one cluster; larger
/// multi-ingress deployments sometimes shard into 2–3.
fn split_into_clusters<R: Rng + ?Sized>(
    caches: usize,
    ingress_count: usize,
    rng: &mut R,
) -> Vec<usize> {
    if caches >= 4 && ingress_count >= 4 && rng.gen::<f64>() < 0.3 {
        let parts = if caches >= 9 && rng.gen::<f64>() < 0.4 {
            3
        } else {
            2
        };
        let mut out = vec![caches / parts; parts];
        out[0] += caches % parts;
        out
    } else {
        vec![caches]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cde_analysis::stats::{Cdf, Scatter};

    fn population(kind: PopulationKind, n: usize) -> Vec<NetworkSpec> {
        generate_population(kind, n, 0xDA7A)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = population(PopulationKind::Isps, 50);
        let b = population(PopulationKind::Isps, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn open_population_matches_paper_marginals() {
        let pop = population(PopulationKind::OpenResolvers, 4000);
        let sc: Scatter = pop
            .iter()
            .map(|s| (s.ingress_count as u64, s.total_caches() as u64))
            .collect();
        // "Almost 70% of networks with open resolvers use ... one IP
        // address and one cache" (Fig. 6).
        let single_single = sc.fraction_where(|x, y| x == 1 && y == 1);
        assert!((0.64..0.74).contains(&single_single), "{single_single}");
        // "70% use 1-2 caches" (Fig. 4).
        let small_cache =
            pop.iter().filter(|s| s.total_caches() <= 2).count() as f64 / pop.len() as f64;
        assert!((0.65..0.80).contains(&small_cache), "{small_cache}");
        // "85% use 5 or less [egress] IP addresses" (Fig. 3).
        let egress = Cdf::from_samples(pop.iter().map(|s| s.egress_count as u64));
        let le5 = egress.fraction_at_or_below(5);
        assert!((0.80..0.90).contains(&le5), "{le5}");
        // A few giants exist (top-right circles in Fig. 5).
        assert!(pop
            .iter()
            .any(|s| s.ingress_count > 500 && s.total_caches() > 30));
    }

    #[test]
    fn enterprise_population_matches_paper_marginals() {
        let pop = population(PopulationKind::Enterprises, 4000);
        let sc: Scatter = pop
            .iter()
            .map(|s| (s.ingress_count as u64, s.total_caches() as u64))
            .collect();
        // "less than 5% of enterprises use a single address and cache".
        assert!(sc.fraction_where(|x, y| x == 1 && y == 1) < 0.05);
        // "more than 80% ... more than one address and more than one cache".
        assert!(sc.fraction_where(|x, y| x > 1 && y > 1) > 0.80);
        // "65% ... use 1-4 caches" (Fig. 4).
        let small = pop.iter().filter(|s| s.total_caches() <= 4).count() as f64 / pop.len() as f64;
        assert!((0.58..0.72).contains(&small), "{small}");
        // "50% of the platforms use more than 20 IP addresses" (Fig. 3).
        let egress = Cdf::from_samples(pop.iter().map(|s| s.egress_count as u64));
        let above20 = egress.fraction_above(20);
        assert!((0.42..0.58).contains(&above20), "{above20}");
    }

    #[test]
    fn isp_population_matches_paper_marginals() {
        let pop = population(PopulationKind::Isps, 4000);
        let sc: Scatter = pop
            .iter()
            .map(|s| (s.ingress_count as u64, s.total_caches() as u64))
            .collect();
        // "less than 10% of ISP networks" single-single.
        assert!(sc.fraction_where(|x, y| x == 1 && y == 1) < 0.10);
        // "almost 65% of ISPs" multi-multi.
        let multi = sc.fraction_where(|x, y| x > 1 && y > 1);
        assert!((0.55..0.72).contains(&multi), "{multi}");
        // "About 60% of DNS platforms operated by ISPs use 1-3 caches".
        let small = pop.iter().filter(|s| s.total_caches() <= 3).count() as f64 / pop.len() as f64;
        assert!((0.55..0.78).contains(&small), "{small}");
        // "50% use more than 11 IP addresses" (Fig. 3).
        let egress = Cdf::from_samples(pop.iter().map(|s| s.egress_count as u64));
        let above11 = egress.fraction_above(11);
        assert!((0.42..0.58).contains(&above11), "{above11}");
    }

    #[test]
    fn selector_mix_is_mostly_unpredictable() {
        let pop = population(PopulationKind::Enterprises, 4000);
        let unpredictable =
            pop.iter().filter(|s| s.selector.is_unpredictable()).count() as f64 / pop.len() as f64;
        assert!(unpredictable > 0.80, "{unpredictable}");
        assert!(unpredictable < 0.90, "{unpredictable}");
    }

    #[test]
    fn country_mix_includes_lossy_countries() {
        let pop = population(PopulationKind::OpenResolvers, 2000);
        let iran = pop
            .iter()
            .filter(|s| s.country == CountryProfile::Iran)
            .count();
        let china = pop
            .iter()
            .filter(|s| s.country == CountryProfile::China)
            .count();
        assert!(iran > 0 && china > 0);
        assert!(iran < pop.len() / 10);
    }

    #[test]
    fn address_blocks_do_not_overlap_between_networks() {
        let pop = population(PopulationKind::Enterprises, 100);
        let mut all: Vec<Ipv4Addr> = pop
            .iter()
            .flat_map(|s| s.ingress_ips().into_iter().chain(s.egress_ips()))
            .collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before);
    }

    #[test]
    fn build_produces_platform_matching_spec() {
        let pop = population(PopulationKind::Isps, 5);
        for spec in &pop {
            let platform = spec.build();
            let gt = platform.ground_truth();
            assert_eq!(gt.total_caches(), spec.total_caches());
            assert_eq!(platform.ingress_ips().len(), spec.ingress_count);
            assert_eq!(platform.egress_ips().len(), spec.egress_count);
            assert!(gt.selectors.iter().all(|&s| s == spec.selector));
        }
    }

    #[test]
    fn clusters_partition_cache_total() {
        let pop = population(PopulationKind::Enterprises, 500);
        for spec in &pop {
            assert!(!spec.cluster_caches.is_empty());
            assert!(spec.cluster_caches.iter().all(|&c| c >= 1));
            assert_eq!(
                spec.cluster_caches.iter().sum::<usize>(),
                spec.total_caches()
            );
        }
        // Some multi-cluster networks exist.
        assert!(pop.iter().any(|s| s.cluster_caches.len() > 1));
    }
}
