//! Network-operator tables (paper Fig. 2).
//!
//! The paper lists the top-ten operators per dataset with their share of
//! networks; everything else is "OTHER". These tables drive the synthetic
//! population's operator labels and regenerate Fig. 2.

use rand::Rng;

/// One operator row: name and share (percent of the dataset).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatorShare {
    /// Operator name as printed in the paper.
    pub name: &'static str,
    /// Share of networks, in percent.
    pub percent: f64,
}

/// Fig. 2, "Open Resolvers" column.
pub const OPEN_RESOLVER_OPERATORS: [OperatorShare; 11] = [
    OperatorShare {
        name: "Aruba S.p.A.",
        percent: 9.597,
    },
    OperatorShare {
        name: "Google Inc.",
        percent: 6.59,
    },
    OperatorShare {
        name: "Korea Telecom",
        percent: 4.095,
    },
    OperatorShare {
        name: "INTERNET CZ, a.s.",
        percent: 3.199,
    },
    OperatorShare {
        name: "tw telecom holdings, inc.",
        percent: 3.135,
    },
    OperatorShare {
        name: "LG DACOM Corporation",
        percent: 2.687,
    },
    OperatorShare {
        name: "Data Communication Business Group",
        percent: 2.175,
    },
    OperatorShare {
        name: "Getty Images",
        percent: 1.727,
    },
    OperatorShare {
        name: "CNCGROUP IP network China169 Beijing",
        percent: 1.536,
    },
    OperatorShare {
        name: "Level 3 Communications, Inc.",
        percent: 1.536,
    },
    OperatorShare {
        name: "OTHER",
        percent: 63.72,
    },
];

/// Fig. 2, "Email Servers" column.
pub const EMAIL_SERVER_OPERATORS: [OperatorShare; 11] = [
    OperatorShare {
        name: "Google Inc.",
        percent: 24.211,
    },
    OperatorShare {
        name: "Yandex LLC",
        percent: 10.526,
    },
    OperatorShare {
        name: "Amazon.com, Inc.",
        percent: 4.2105,
    },
    OperatorShare {
        name: "Hangzhou Alibaba Advertising Co.,Ltd.",
        percent: 4.2105,
    },
    OperatorShare {
        name: "Internet Initiative Japan Inc.",
        percent: 4.2105,
    },
    OperatorShare {
        name: "Websense Hosted Security Network",
        percent: 4.2105,
    },
    OperatorShare {
        name: "SAKURA Internet Inc.",
        percent: 3.1579,
    },
    OperatorShare {
        name: "ADVANCEDHOSTERS LIMITED",
        percent: 2.1053,
    },
    OperatorShare {
        name: "Dadeh Gostar Asr Novin P.J.S. Co.",
        percent: 2.1053,
    },
    OperatorShare {
        name: "Limited liability company Mail.Ru",
        percent: 2.1053,
    },
    OperatorShare {
        name: "OTHER",
        percent: 38.947,
    },
];

/// Fig. 2, "Ad-Network" column.
pub const AD_NETWORK_OPERATORS: [OperatorShare; 11] = [
    OperatorShare {
        name: "Comcast Cable Communications, Inc.",
        percent: 15.02,
    },
    OperatorShare {
        name: "Time Warner Cable Internet LLC",
        percent: 6.103,
    },
    OperatorShare {
        name: "Orange S.A.",
        percent: 5.634,
    },
    OperatorShare {
        name: "Google Inc.",
        percent: 4.695,
    },
    OperatorShare {
        name: "BT Public Internet Service",
        percent: 4.225,
    },
    OperatorShare {
        name: "MCI Communications Services, Inc. Verizon",
        percent: 3.286,
    },
    OperatorShare {
        name: "AT&T Services, Inc.",
        percent: 2.817,
    },
    OperatorShare {
        name: "OVH SAS",
        percent: 2.817,
    },
    OperatorShare {
        name: "Free SAS",
        percent: 2.347,
    },
    OperatorShare {
        name: "Qwest Communications Company, LLC",
        percent: 2.347,
    },
    OperatorShare {
        name: "OTHER",
        percent: 50.7,
    },
];

/// Samples an operator name according to a Fig. 2 column.
pub fn sample_operator<R: Rng + ?Sized>(rng: &mut R, table: &[OperatorShare]) -> &'static str {
    let total: f64 = table.iter().map(|o| o.percent).sum();
    let mut x = rng.gen::<f64>() * total;
    for o in table {
        if x < o.percent {
            return o.name;
        }
        x -= o.percent;
    }
    table.last().expect("tables are non-empty").name
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn tables_sum_to_about_100_percent() {
        for table in [
            &OPEN_RESOLVER_OPERATORS[..],
            &EMAIL_SERVER_OPERATORS[..],
            &AD_NETWORK_OPERATORS[..],
        ] {
            let total: f64 = table.iter().map(|o| o.percent).sum();
            assert!((total - 100.0).abs() < 1.0, "total {total}");
        }
    }

    #[test]
    fn other_is_the_largest_bucket_everywhere() {
        for table in [
            &OPEN_RESOLVER_OPERATORS[..],
            &EMAIL_SERVER_OPERATORS[..],
            &AD_NETWORK_OPERATORS[..],
        ] {
            let other = table.iter().find(|o| o.name == "OTHER").unwrap();
            for o in table.iter().filter(|o| o.name != "OTHER") {
                assert!(other.percent > o.percent);
            }
        }
    }

    #[test]
    fn sampling_matches_shares() {
        let mut rng = SmallRng::seed_from_u64(1);
        let trials = 100_000;
        let mut google = 0u64;
        for _ in 0..trials {
            if sample_operator(&mut rng, &EMAIL_SERVER_OPERATORS) == "Google Inc." {
                google += 1;
            }
        }
        let share = google as f64 / trials as f64 * 100.0;
        assert!((share - 24.211).abs() < 1.0, "share {share:.2}");
    }

    #[test]
    fn comcast_tops_the_ad_network_column() {
        assert_eq!(
            AD_NETWORK_OPERATORS[0].name,
            "Comcast Cable Communications, Inc."
        );
        assert!(AD_NETWORK_OPERATORS[0].percent > 15.0);
    }
}
