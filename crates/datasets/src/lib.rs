//! Synthetic datasets for the CDE reproduction, calibrated to the paper's
//! published marginals (see `DESIGN.md` §2 for the substitution
//! rationale).
//!
//! * [`operators`] — the Fig. 2 network-operator tables and sampling,
//! * [`populations`] — generators for the three network populations (open
//!   resolvers, enterprises, ISPs) with ground-truth [`NetworkSpec`]s that
//!   build ready-to-measure [`cde_platform::ResolutionPlatform`]s.
//!
//! # Examples
//!
//! ```
//! use cde_datasets::{generate_population, PopulationKind};
//!
//! let pop = generate_population(PopulationKind::Isps, 100, 7);
//! assert_eq!(pop.len(), 100);
//! let platform = pop[0].build();
//! assert_eq!(platform.ground_truth().total_caches(), pop[0].total_caches());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod operators;
pub mod populations;

pub use operators::{
    sample_operator, OperatorShare, AD_NETWORK_OPERATORS, EMAIL_SERVER_OPERATORS,
    OPEN_RESOLVER_OPERATORS,
};
pub use populations::{generate_population, NetworkSpec, PopulationKind};
