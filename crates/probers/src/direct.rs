//! The direct prober (paper §IV-B1, set-up 2 in Fig. 1).
//!
//! Open recursive resolvers let the prober send DNS queries straight to an
//! ingress address, controlling both the timing and the number of
//! repetitions — the easiest setting for enumeration. The prober also
//! measures response latency, which is the input to the §IV-B3 timing side
//! channel.

use cde_dns::{Name, RecordType};
use cde_netsim::{DetRng, Link, SimDuration, SimTime};
use cde_platform::{NameserverNet, PlatformError, ResolutionPlatform, ResolveResult};
use std::net::Ipv4Addr;

/// Outcome of one direct probe, as seen by the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeReply {
    /// A response arrived.
    Answered {
        /// Resolution status and records.
        result: ResolveResult,
        /// Round-trip latency the prober measured.
        latency: SimDuration,
        /// `true` when the platform answered from cache — GROUND TRUTH for
        /// validation; real probers infer this from `latency` only.
        truth_cache_hit: bool,
    },
    /// No response within the prober's timeout (packet lost on either
    /// direction).
    Timeout {
        /// Latency burned waiting.
        latency: SimDuration,
    },
}

impl ProbeReply {
    /// `true` when a response arrived.
    pub fn is_answered(&self) -> bool {
        matches!(self, ProbeReply::Answered { .. })
    }

    /// The measured latency, whichever way the probe went.
    pub fn latency(&self) -> SimDuration {
        match self {
            ProbeReply::Answered { latency, .. } | ProbeReply::Timeout { latency } => *latency,
        }
    }
}

/// A client probing ingress addresses directly.
///
/// # Examples
///
/// ```
/// use cde_probers::DirectProber;
/// use cde_platform::testnet::build_simple_world;
/// use cde_dns::RecordType;
/// use cde_netsim::{Link, SimTime};
/// use std::net::Ipv4Addr;
///
/// let mut world = build_simple_world(2, 3);
/// let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 8), Link::ideal(), 99);
/// let ingress = world.platform.ingress_ips()[0];
/// let reply = prober.probe(
///     &mut world.platform,
///     ingress,
///     &"name.cache.example".parse().unwrap(),
///     RecordType::A,
///     SimTime::ZERO,
///     &mut world.net,
/// );
/// assert!(reply.is_answered());
/// ```
#[derive(Debug)]
pub struct DirectProber {
    src: Ipv4Addr,
    link: Link,
    rng: DetRng,
    timeout: SimDuration,
    sent: u64,
    answered: u64,
    unreachable: u64,
}

impl DirectProber {
    /// Creates a prober at `src` reaching platforms over `link`.
    pub fn new(src: Ipv4Addr, link: Link, seed: u64) -> DirectProber {
        DirectProber {
            src,
            link,
            rng: DetRng::seed(seed).fork("direct-prober"),
            timeout: SimDuration::from_millis(2_000),
            sent: 0,
            answered: 0,
            unreachable: 0,
        }
    }

    /// Source address used in queries.
    pub fn src(&self) -> Ipv4Addr {
        self.src
    }

    /// Replaces the client-side timeout (default 2 s).
    pub fn set_timeout(&mut self, timeout: SimDuration) {
        self.timeout = timeout;
    }

    /// Probes sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Probes answered so far.
    pub fn answered(&self) -> u64 {
        self.answered
    }

    /// Probes that targeted an address that is not an ingress of the
    /// platform at all. These look like timeouts on the wire but carry no
    /// information about packet loss.
    pub fn unreachable(&self) -> u64 {
        self.unreachable
    }

    /// Loss rate observed by this prober (the input to carpet-bombing
    /// calibration).
    ///
    /// Probes to unknown ingresses are excluded from the denominator:
    /// they time out deterministically, so counting them as losses would
    /// inflate the estimate and push the §V carpet-bombing planner toward
    /// needlessly high redundancy.
    pub fn observed_loss_rate(&self) -> f64 {
        let lossy_sent = self.sent - self.unreachable;
        if lossy_sent == 0 {
            0.0
        } else {
            1.0 - self.answered as f64 / lossy_sent as f64
        }
    }

    /// Sends one query for `qname`/`qtype` to `ingress` of `platform`.
    ///
    /// Loss on the query direction means the platform never sees the probe;
    /// loss on the response direction means the platform's caches changed
    /// but the prober only observes a timeout — the asymmetry carpet
    /// bombing (§V) is designed around.
    pub fn probe(
        &mut self,
        platform: &mut ResolutionPlatform,
        ingress: Ipv4Addr,
        qname: &Name,
        qtype: RecordType,
        now: SimTime,
        net: &mut NameserverNet,
    ) -> ProbeReply {
        self.sent += 1;
        // Client → ingress.
        let Some(fwd) = self.link.transmit(&mut self.rng) else {
            return ProbeReply::Timeout {
                latency: self.timeout,
            };
        };
        let resp = match platform.handle_query(self.src, ingress, qname, qtype, now + fwd, net) {
            Ok(r) => r,
            Err(PlatformError::UnknownIngress(_)) => {
                // Indistinguishable from a timeout on the wire, but not a
                // loss event — tracked separately so it cannot distort
                // `observed_loss_rate`.
                self.unreachable += 1;
                return ProbeReply::Timeout {
                    latency: self.timeout,
                };
            }
        };
        // Ingress → client.
        let Some(back) = self.link.transmit(&mut self.rng) else {
            return ProbeReply::Timeout {
                latency: self.timeout,
            };
        };
        self.answered += 1;
        ProbeReply::Answered {
            result: resp.outcome.result,
            latency: fwd + resp.outcome.latency + back,
            truth_cache_hit: resp.outcome.cache_hit,
        }
    }

    /// Sends the same probe up to `k` times, returning the first answer
    /// (carpet bombing's per-probe redundancy).
    #[allow(clippy::too_many_arguments)]
    pub fn probe_with_redundancy(
        &mut self,
        platform: &mut ResolutionPlatform,
        ingress: Ipv4Addr,
        qname: &Name,
        qtype: RecordType,
        k: u64,
        now: SimTime,
        net: &mut NameserverNet,
    ) -> ProbeReply {
        assert!(k >= 1, "redundancy must be at least 1");
        let mut last = ProbeReply::Timeout {
            latency: self.timeout,
        };
        for _ in 0..k {
            last = self.probe(platform, ingress, qname, qtype, now, net);
            if last.is_answered() {
                return last;
            }
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cde_netsim::{LatencyModel, LossModel};
    use cde_platform::testnet::build_simple_world;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn probe_answers_and_counts() {
        let mut w = build_simple_world(1, 5);
        let mut p = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 1);
        let ing = w.platform.ingress_ips()[0];
        let r = p.probe(
            &mut w.platform,
            ing,
            &n("name.cache.example"),
            RecordType::A,
            SimTime::ZERO,
            &mut w.net,
        );
        assert!(r.is_answered());
        assert_eq!(p.sent(), 1);
        assert_eq!(p.answered(), 1);
        assert_eq!(p.observed_loss_rate(), 0.0);
    }

    #[test]
    fn lossy_link_times_out_sometimes() {
        let mut w = build_simple_world(1, 6);
        let link = Link::new(
            LatencyModel::Constant(SimDuration::from_millis(5)),
            LossModel::with_rate(0.5),
        );
        let mut p = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), link, 2);
        let ing = w.platform.ingress_ips()[0];
        let mut timeouts = 0;
        for _ in 0..200 {
            let r = p.probe(
                &mut w.platform,
                ing,
                &n("name.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut w.net,
            );
            if !r.is_answered() {
                timeouts += 1;
            }
        }
        // P(timeout) = 1 − 0.5·0.5 = 0.75.
        assert!((100..200).contains(&timeouts), "timeouts {timeouts}");
        assert!(p.observed_loss_rate() > 0.5);
    }

    #[test]
    fn unknown_ingress_times_out() {
        let mut w = build_simple_world(1, 7);
        let mut p = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 3);
        let r = p.probe(
            &mut w.platform,
            Ipv4Addr::new(8, 8, 8, 8),
            &n("name.cache.example"),
            RecordType::A,
            SimTime::ZERO,
            &mut w.net,
        );
        assert!(!r.is_answered());
    }

    #[test]
    fn unreachable_ingress_does_not_inflate_loss_rate() {
        let mut w = build_simple_world(1, 7);
        let mut p = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 3);
        let ing = w.platform.ingress_ips()[0];
        // Deterministic timeouts against a non-ingress address...
        for _ in 0..10 {
            let r = p.probe(
                &mut w.platform,
                Ipv4Addr::new(8, 8, 8, 8),
                &n("name.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut w.net,
            );
            assert!(!r.is_answered());
        }
        // ...and lossless answers from a real one.
        for _ in 0..10 {
            let r = p.probe(
                &mut w.platform,
                ing,
                &n("name.cache.example"),
                RecordType::A,
                SimTime::ZERO,
                &mut w.net,
            );
            assert!(r.is_answered());
        }
        assert_eq!(p.sent(), 20);
        assert_eq!(p.answered(), 10);
        assert_eq!(p.unreachable(), 10);
        // The ideal link lost nothing, and unreachable probes must not
        // masquerade as loss.
        assert_eq!(p.observed_loss_rate(), 0.0);
    }

    #[test]
    fn redundancy_overcomes_loss() {
        let mut w = build_simple_world(1, 8);
        let link = Link::new(
            LatencyModel::Constant(SimDuration::from_millis(5)),
            LossModel::with_rate(0.5),
        );
        let mut p = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), link, 4);
        let ing = w.platform.ingress_ips()[0];
        let mut answered = 0;
        for _ in 0..100 {
            let r = p.probe_with_redundancy(
                &mut w.platform,
                ing,
                &n("name.cache.example"),
                RecordType::A,
                8,
                SimTime::ZERO,
                &mut w.net,
            );
            if r.is_answered() {
                answered += 1;
            }
        }
        // 1 − 0.75⁸ ≈ 0.9, so near-total success.
        assert!(answered >= 85, "answered {answered}");
    }

    #[test]
    fn latency_reflects_cache_state() {
        let mut w = build_simple_world(1, 9);
        let link = Link::new(
            LatencyModel::Constant(SimDuration::from_millis(10)),
            LossModel::none(),
        );
        let mut p = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), link, 5);
        let ing = w.platform.ingress_ips()[0];
        let cold = p.probe(
            &mut w.platform,
            ing,
            &n("name.cache.example"),
            RecordType::A,
            SimTime::ZERO,
            &mut w.net,
        );
        let warm = p.probe(
            &mut w.platform,
            ing,
            &n("name.cache.example"),
            RecordType::A,
            SimTime::ZERO,
            &mut w.net,
        );
        assert!(cold.latency() > warm.latency());
    }
}
