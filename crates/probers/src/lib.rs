//! Direct and indirect DNS probers for the CDE reproduction.
//!
//! The paper collects data through three channels (§III), each modelled
//! here:
//!
//! * [`DirectProber`] — queries open recursive resolvers straight at their
//!   ingress addresses (controls timing and repetition; measures latency),
//! * [`SmtpProber`]/[`EnterpriseMailServer`] — triggers the enterprise
//!   MTA's SPF/DKIM/DMARC/MX lookups by mailing a non-existent mailbox
//!   (Table I query mix),
//! * [`AdNetProber`]/[`WebClient`] — drives a visitor's browser to URLs
//!   under the CDE domain through the browser/OS local caches, with the
//!   paper's ~1:50 completion rate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adnet;
pub mod direct;
pub mod smtp;

pub use adnet::{AdNetProber, ClientRun, WebClient, COMPLETION_RATE};
pub use direct::{DirectProber, ProbeReply};
pub use smtp::{
    EnterpriseMailServer, MailChecks, QueryKind, SmtpProber, TriggeredQuery, TABLE1_FRACTIONS,
};
