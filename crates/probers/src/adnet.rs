//! Indirect probing through an ad-network (paper §III-C).
//!
//! A measurement script embedded in an ad iframe makes the visitor's
//! browser navigate to URLs under the CDE domain, generating DNS queries
//! through the visitor's ISP resolution platform. The prober controls
//! neither the client's local caches (browser + OS stub) nor the timing;
//! the test runs as a pop-under over several minutes and only about 1 in
//! 50 executions completes (the paper's completion rate).

use cde_dns::{Name, RecordType};
use cde_netsim::{DetRng, SimDuration, SimTime};
use cde_platform::{LocalCacheChain, NameserverNet, ResolutionPlatform};
use rand::Rng;
use std::net::Ipv4Addr;

/// The fraction of ad impressions whose measurement run completes
/// (paper §III-C: "approximately 1:50 of the executions resulted in tests
/// that completed successfully").
pub const COMPLETION_RATE: f64 = 1.0 / 50.0;

/// One web client recruited through the ad network.
#[derive(Debug)]
pub struct WebClient {
    addr: Ipv4Addr,
    local: LocalCacheChain,
    ingress: Ipv4Addr,
}

impl WebClient {
    /// Creates a client at `addr` whose ISP resolver ingress is `ingress`.
    pub fn new(addr: Ipv4Addr, ingress: Ipv4Addr) -> WebClient {
        WebClient {
            addr,
            local: LocalCacheChain::browser_and_stub(),
            ingress,
        }
    }

    /// Client address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// The local cache chain in front of this client.
    pub fn local_caches(&self) -> &LocalCacheChain {
        &self.local
    }
}

/// Result of one client's measurement run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientRun {
    /// `false` when the visitor closed the pop-under before the script
    /// finished — no usable data.
    pub completed: bool,
    /// Hostnames whose queries actually reached the ISP platform.
    pub reached_platform: Vec<Name>,
    /// Hostnames answered by the client's local caches.
    pub blocked_locally: Vec<Name>,
    /// Virtual time the run consumed (pop-under dwell).
    pub duration: SimDuration,
}

/// The ad-network campaign driver.
///
/// # Examples
///
/// ```
/// use cde_probers::{AdNetProber, WebClient};
/// use cde_platform::testnet::build_simple_world;
/// use cde_netsim::SimTime;
/// use std::net::Ipv4Addr;
///
/// let mut world = build_simple_world(2, 50);
/// let ingress = world.platform.ingress_ips()[0];
/// let mut client = WebClient::new(Ipv4Addr::new(203, 0, 113, 60), ingress);
/// let mut prober = AdNetProber::new(5);
/// let urls: Vec<_> = (1..=4)
///     .map(|i| format!("x-{i}.cache.example").parse().unwrap())
///     .collect();
/// let run = prober.run_forced(&mut client, &mut world.platform, &mut world.net, &urls, SimTime::ZERO);
/// assert!(run.completed);
/// assert_eq!(run.reached_platform.len(), 4);
/// ```
#[derive(Debug)]
pub struct AdNetProber {
    rng: DetRng,
    impressions: u64,
    completions: u64,
}

impl AdNetProber {
    /// Creates a campaign driver.
    pub fn new(seed: u64) -> AdNetProber {
        AdNetProber {
            rng: DetRng::seed(seed).fork("adnet-prober"),
            impressions: 0,
            completions: 0,
        }
    }

    /// Ad impressions served so far.
    pub fn impressions(&self) -> u64 {
        self.impressions
    }

    /// Runs that completed so far.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Serves the measurement iframe to `client` and, with probability
    /// [`COMPLETION_RATE`], runs the full URL list; otherwise the visitor
    /// bails early after a random prefix.
    pub fn run(
        &mut self,
        client: &mut WebClient,
        platform: &mut ResolutionPlatform,
        net: &mut NameserverNet,
        urls: &[Name],
        now: SimTime,
    ) -> ClientRun {
        self.impressions += 1;
        let completes = self.rng.gen::<f64>() < COMPLETION_RATE;
        let visible = if completes {
            urls.len()
        } else {
            // Visitor closes the pop-under partway through.
            self.rng.gen_range(0..urls.len().max(1))
        };
        let mut run = self.fetch_urls(client, platform, net, &urls[..visible], now);
        run.completed = completes;
        if completes {
            self.completions += 1;
        }
        run
    }

    /// Runs the full URL list unconditionally (for studies that only use
    /// completed runs, matching the paper's post-filtering).
    pub fn run_forced(
        &mut self,
        client: &mut WebClient,
        platform: &mut ResolutionPlatform,
        net: &mut NameserverNet,
        urls: &[Name],
        now: SimTime,
    ) -> ClientRun {
        self.impressions += 1;
        self.completions += 1;
        let mut run = self.fetch_urls(client, platform, net, urls, now);
        run.completed = true;
        run
    }

    fn fetch_urls(
        &mut self,
        client: &mut WebClient,
        platform: &mut ResolutionPlatform,
        net: &mut NameserverNet,
        urls: &[Name],
        now: SimTime,
    ) -> ClientRun {
        let mut reached = Vec::new();
        let mut blocked = Vec::new();
        let mut elapsed = SimDuration::ZERO;
        for qname in urls {
            // Browser dwell between navigations: uncontrollable timing
            // (several-minute pop-under, §III-C).
            elapsed += SimDuration::from_millis(self.rng.gen_range(200..3_000));
            let at = now + elapsed;
            if client.local.lookup(qname, RecordType::A, at).is_some() {
                blocked.push(qname.clone());
                continue;
            }
            let resp =
                platform.handle_query(client.addr, client.ingress, qname, RecordType::A, at, net);
            if let Ok(r) = &resp {
                if let cde_platform::ResolveResult::Records(rrs) = &r.outcome.result {
                    client
                        .local
                        .store(qname.clone(), RecordType::A, rrs.clone(), at);
                }
            }
            reached.push(qname.clone());
        }
        ClientRun {
            completed: false,
            reached_platform: reached,
            blocked_locally: blocked,
            duration: elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cde_platform::testnet::{build_simple_world, CDE_ZONE_SERVER};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn urls(k: usize) -> Vec<Name> {
        (1..=k)
            .map(|i| n(&format!("x-{i}.cache.example")))
            .collect()
    }

    #[test]
    fn forced_run_reaches_platform_for_every_distinct_name() {
        let mut w = build_simple_world(2, 60);
        let ing = w.platform.ingress_ips()[0];
        let mut client = WebClient::new(Ipv4Addr::new(203, 0, 113, 61), ing);
        let mut prober = AdNetProber::new(1);
        let run = prober.run_forced(
            &mut client,
            &mut w.platform,
            &mut w.net,
            &urls(8),
            SimTime::ZERO,
        );
        assert_eq!(run.reached_platform.len(), 8);
        assert!(run.blocked_locally.is_empty());
        assert!(run.duration > SimDuration::ZERO);
    }

    #[test]
    fn repeated_names_are_blocked_by_browser_cache() {
        let mut w = build_simple_world(1, 61);
        let ing = w.platform.ingress_ips()[0];
        let mut client = WebClient::new(Ipv4Addr::new(203, 0, 113, 62), ing);
        let mut prober = AdNetProber::new(2);
        let list = vec![n("x-1.cache.example"), n("x-1.cache.example")];
        let run = prober.run_forced(
            &mut client,
            &mut w.platform,
            &mut w.net,
            &list,
            SimTime::ZERO,
        );
        assert_eq!(run.reached_platform.len(), 1);
        assert_eq!(run.blocked_locally.len(), 1);
    }

    #[test]
    fn completion_rate_is_about_one_in_fifty() {
        let mut w = build_simple_world(1, 62);
        let ing = w.platform.ingress_ips()[0];
        let mut prober = AdNetProber::new(3);
        let list = urls(2);
        for i in 0..5_000 {
            let mut client = WebClient::new(Ipv4Addr::new(203, 0, (i >> 8) as u8, i as u8), ing);
            prober.run(
                &mut client,
                &mut w.platform,
                &mut w.net,
                &list,
                SimTime::ZERO,
            );
        }
        let rate = prober.completions() as f64 / prober.impressions() as f64;
        assert!((rate - COMPLETION_RATE).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn queries_land_in_cde_nameserver_log() {
        let mut w = build_simple_world(1, 63);
        let ing = w.platform.ingress_ips()[0];
        let mut client = WebClient::new(Ipv4Addr::new(203, 0, 113, 64), ing);
        let mut prober = AdNetProber::new(4);
        prober.run_forced(
            &mut client,
            &mut w.platform,
            &mut w.net,
            &urls(3),
            SimTime::ZERO,
        );
        let server = w.net.server(CDE_ZONE_SERVER).unwrap();
        for i in 1..=3 {
            assert_eq!(
                server.count_queries_for(&n(&format!("x-{i}.cache.example"))),
                1
            );
        }
    }
}
