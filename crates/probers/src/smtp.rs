//! Indirect probing through SMTP servers (paper §III-B).
//!
//! The prober opens an SMTP session to an enterprise's mail server and
//! sends a message to a non-existent mailbox. RFC 5321 obliges the server
//! to emit a Delivery Status Notification, and both accepting the message
//! and bouncing it make the MTA resolve names *in the sender's domain*
//! through the enterprise's resolution platform: sender-policy checks
//! (SPF over TXT, the obsolete SPF qtype, ADSP, DKIM, DMARC) and MX/A
//! lookups for the return path. Choosing sender domains inside the CDE
//! zone turns those lookups into enumeration probes.

use cde_dns::{Name, RecordType};
use cde_netsim::{DetRng, SimTime};
use cde_platform::{LocalCacheChain, NameserverNet, ResolutionPlatform};
use rand::Rng;
use std::net::Ipv4Addr;

/// Which sender-verification mechanisms an enterprise MTA performs.
///
/// The sampling marginals are the fractions the paper measured across its
/// 1K-enterprise dataset (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MailChecks {
    /// Modern SPF over a TXT query (69.6% of domains).
    pub spf_txt: bool,
    /// Obsolete SPF RRTYPE 99 query (14.2%).
    pub spf_qtype: bool,
    /// ADSP with DKIM (`_adsp._domainkey`, 2%).
    pub adsp: bool,
    /// DKIM selector lookup (0.3%).
    pub dkim: bool,
    /// DMARC policy lookup (`_dmarc`, 35.3%).
    pub dmarc: bool,
    /// MX/A lookups for the sending server (30.4%).
    pub mx_a: bool,
}

/// Table I marginals, in the same order as [`MailChecks`] fields.
pub const TABLE1_FRACTIONS: [(QueryKind, f64); 6] = [
    (QueryKind::SpfTxt, 0.696),
    (QueryKind::SpfQtype, 0.142),
    (QueryKind::Adsp, 0.02),
    (QueryKind::Dkim, 0.003),
    (QueryKind::Dmarc, 0.353),
    (QueryKind::MxA, 0.304),
];

/// The categories of DNS queries an MTA triggers (rows of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QueryKind {
    /// Modern SPF (TXT qtype).
    SpfTxt,
    /// Obsolete SPF (SPF qtype).
    SpfQtype,
    /// ADSP (with DKIM).
    Adsp,
    /// DKIM selector record.
    Dkim,
    /// DMARC policy record.
    Dmarc,
    /// MX/A queries for the sending server.
    MxA,
}

impl std::fmt::Display for QueryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryKind::SpfTxt => write!(f, "Modern SPF queries (TXT qtype)"),
            QueryKind::SpfQtype => write!(f, "Obsolete SPF (SPF qtype)"),
            QueryKind::Adsp => write!(f, "ADSP (w/DKIM)"),
            QueryKind::Dkim => write!(f, "DKIM"),
            QueryKind::Dmarc => write!(f, "DMARC"),
            QueryKind::MxA => write!(f, "MX/A queries for sending email server"),
        }
    }
}

impl MailChecks {
    /// Samples a check profile with the Table I marginals (independent
    /// Bernoulli per mechanism).
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> MailChecks {
        MailChecks {
            spf_txt: rng.gen::<f64>() < 0.696,
            spf_qtype: rng.gen::<f64>() < 0.142,
            adsp: rng.gen::<f64>() < 0.02,
            dkim: rng.gen::<f64>() < 0.003,
            dmarc: rng.gen::<f64>() < 0.353,
            mx_a: rng.gen::<f64>() < 0.304,
        }
    }

    /// A profile performing every check (useful in tests).
    pub fn all() -> MailChecks {
        MailChecks {
            spf_txt: true,
            spf_qtype: true,
            adsp: true,
            dkim: true,
            dmarc: true,
            mx_a: true,
        }
    }

    /// `true` when the profile triggers at least one DNS query per bounce.
    pub fn any(self) -> bool {
        self.spf_txt || self.spf_qtype || self.adsp || self.dkim || self.dmarc || self.mx_a
    }

    /// The query kinds this profile triggers.
    pub fn kinds(self) -> Vec<QueryKind> {
        let mut out = Vec::new();
        if self.spf_txt {
            out.push(QueryKind::SpfTxt);
        }
        if self.spf_qtype {
            out.push(QueryKind::SpfQtype);
        }
        if self.adsp {
            out.push(QueryKind::Adsp);
        }
        if self.dkim {
            out.push(QueryKind::Dkim);
        }
        if self.dmarc {
            out.push(QueryKind::Dmarc);
        }
        if self.mx_a {
            out.push(QueryKind::MxA);
        }
        out
    }
}

/// One DNS query an MTA issued while handling a probe email.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriggeredQuery {
    /// Which verification mechanism triggered it.
    pub kind: QueryKind,
    /// Queried name.
    pub qname: Name,
    /// Queried type.
    pub qtype: RecordType,
    /// Whether the query got past the MTA's local stub cache to the
    /// platform.
    pub reached_platform: bool,
}

/// The enterprise's mail server, with its stub cache and check profile.
#[derive(Debug)]
pub struct EnterpriseMailServer {
    addr: Ipv4Addr,
    checks: MailChecks,
    stub: LocalCacheChain,
    ingress: Ipv4Addr,
}

impl EnterpriseMailServer {
    /// Creates a mail server at `addr` using `ingress` of its enterprise's
    /// resolution platform.
    pub fn new(addr: Ipv4Addr, checks: MailChecks, ingress: Ipv4Addr) -> EnterpriseMailServer {
        EnterpriseMailServer {
            addr,
            checks,
            stub: LocalCacheChain::stub_only(),
            ingress,
        }
    }

    /// The server's check profile.
    pub fn checks(&self) -> MailChecks {
        self.checks
    }

    /// The names this server would look up for `sender_domain`.
    pub fn lookups_for(&self, sender_domain: &Name) -> Vec<(QueryKind, Name, RecordType)> {
        let mut out = Vec::new();
        let child = |label: &str| -> Option<Name> { sender_domain.prepend_label(label).ok() };
        if self.checks.spf_txt {
            out.push((QueryKind::SpfTxt, sender_domain.clone(), RecordType::Txt));
        }
        if self.checks.spf_qtype {
            out.push((QueryKind::SpfQtype, sender_domain.clone(), RecordType::Spf));
        }
        if self.checks.adsp {
            if let Some(n) = child("_adsp").and_then(|n| n.prepend_label("_domainkey").err_into()) {
                out.push((QueryKind::Adsp, n, RecordType::Txt));
            }
        }
        if self.checks.dkim {
            if let Some(n) =
                child("_domainkey").and_then(|d| d.prepend_label("selector1").err_into())
            {
                out.push((QueryKind::Dkim, n, RecordType::Txt));
            }
        }
        if self.checks.dmarc {
            if let Some(n) = child("_dmarc") {
                out.push((QueryKind::Dmarc, n, RecordType::Txt));
            }
        }
        if self.checks.mx_a {
            out.push((QueryKind::MxA, sender_domain.clone(), RecordType::Mx));
            out.push((QueryKind::MxA, sender_domain.clone(), RecordType::A));
        }
        out
    }
}

// Small helper: turn Result into Option for the chained prepends above.
trait ErrInto<T> {
    fn err_into(self) -> Option<T>;
}

impl<T, E> ErrInto<T> for Result<T, E> {
    fn err_into(self) -> Option<T> {
        self.ok()
    }
}

/// The SMTP-based indirect prober.
///
/// # Examples
///
/// ```
/// use cde_probers::{EnterpriseMailServer, MailChecks, SmtpProber};
/// use cde_platform::testnet::build_simple_world;
/// use cde_netsim::SimTime;
/// use std::net::Ipv4Addr;
///
/// let mut world = build_simple_world(2, 21);
/// let ingress = world.platform.ingress_ips()[0];
/// let mut mta = EnterpriseMailServer::new(Ipv4Addr::new(198, 18, 0, 25), MailChecks::all(), ingress);
/// let mut prober = SmtpProber::new(77);
/// let triggered = prober.send_probe_email(
///     &mut mta,
///     &mut world.platform,
///     &mut world.net,
///     &"x-1.cache.example".parse().unwrap(),
///     SimTime::ZERO,
/// );
/// assert!(!triggered.is_empty());
/// ```
#[derive(Debug)]
pub struct SmtpProber {
    rng: DetRng,
    emails_sent: u64,
}

impl SmtpProber {
    /// Creates a prober.
    pub fn new(seed: u64) -> SmtpProber {
        SmtpProber {
            rng: DetRng::seed(seed).fork("smtp-prober"),
            emails_sent: 0,
        }
    }

    /// Emails sent so far.
    pub fn emails_sent(&self) -> u64 {
        self.emails_sent
    }

    /// Sends one message to a non-existent mailbox with
    /// `MAIL FROM: probe@<sender_domain>`, driving the MTA's verification
    /// and bounce lookups through its platform.
    ///
    /// Returns the triggered queries. The prober has no control over the
    /// MTA's timing; queries run back-to-back at `now`.
    pub fn send_probe_email(
        &mut self,
        mta: &mut EnterpriseMailServer,
        platform: &mut ResolutionPlatform,
        net: &mut NameserverNet,
        sender_domain: &Name,
        now: SimTime,
    ) -> Vec<TriggeredQuery> {
        self.emails_sent += 1;
        let mut out = Vec::new();
        for (kind, qname, qtype) in mta.lookups_for(sender_domain) {
            // The MTA's OS stub cache answers repeats locally (§IV-B's
            // first limitation).
            if mta.stub.lookup(&qname, qtype, now).is_some() {
                out.push(TriggeredQuery {
                    kind,
                    qname,
                    qtype,
                    reached_platform: false,
                });
                continue;
            }
            let resp = platform.handle_query(mta.addr, mta.ingress, &qname, qtype, now, net);
            if let Ok(r) = &resp {
                if let cde_platform::ResolveResult::Records(rrs) = &r.outcome.result {
                    mta.stub.store(qname.clone(), qtype, rrs.clone(), now);
                }
            }
            // Shuffle nothing: order is MTA-determined, not prober-chosen.
            let _ = self.rng.gen::<u32>(); // reserve a draw per query for future jitter models
            out.push(TriggeredQuery {
                kind,
                qname,
                qtype,
                reached_platform: true,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cde_platform::testnet::{build_simple_world, CDE_ZONE_SERVER};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn sample_marginals_match_table1() {
        let mut rng = DetRng::seed(42);
        let trials = 50_000;
        let mut counts = [0u64; 6];
        for _ in 0..trials {
            let c = MailChecks::sample(&mut rng);
            for (i, on) in [c.spf_txt, c.spf_qtype, c.adsp, c.dkim, c.dmarc, c.mx_a]
                .into_iter()
                .enumerate()
            {
                if on {
                    counts[i] += 1;
                }
            }
        }
        let expected = [0.696, 0.142, 0.02, 0.003, 0.353, 0.304];
        for (i, &e) in expected.iter().enumerate() {
            let got = counts[i] as f64 / trials as f64;
            assert!(
                (got - e).abs() < 0.01,
                "row {i}: got {got:.4}, expected {e}"
            );
        }
    }

    #[test]
    fn lookups_cover_enabled_checks_only() {
        let ing = Ipv4Addr::new(192, 0, 2, 1);
        let mta = EnterpriseMailServer::new(
            Ipv4Addr::new(198, 18, 0, 25),
            MailChecks {
                dmarc: true,
                mx_a: true,
                ..MailChecks::default()
            },
            ing,
        );
        let lookups = mta.lookups_for(&n("x-1.cache.example"));
        let kinds: Vec<QueryKind> = lookups.iter().map(|(k, _, _)| *k).collect();
        assert!(kinds.contains(&QueryKind::Dmarc));
        assert!(kinds.contains(&QueryKind::MxA));
        assert!(!kinds.contains(&QueryKind::SpfTxt));
        // DMARC uses the _dmarc child label.
        let dmarc = lookups
            .iter()
            .find(|(k, _, _)| *k == QueryKind::Dmarc)
            .unwrap();
        assert_eq!(dmarc.1, n("_dmarc.x-1.cache.example"));
    }

    #[test]
    fn probe_email_reaches_platform_and_nameserver() {
        let mut w = build_simple_world(1, 30);
        let ing = w.platform.ingress_ips()[0];
        let mut mta = EnterpriseMailServer::new(
            Ipv4Addr::new(198, 18, 0, 25),
            MailChecks {
                spf_txt: true,
                ..MailChecks::default()
            },
            ing,
        );
        let mut prober = SmtpProber::new(1);
        let triggered = prober.send_probe_email(
            &mut mta,
            &mut w.platform,
            &mut w.net,
            &n("x-1.cache.example"),
            SimTime::ZERO,
        );
        assert_eq!(triggered.len(), 1);
        assert!(triggered[0].reached_platform);
        // The CNAME farm makes the TXT query for x-1 chase to `name`, which
        // is countable at the zone server.
        let log = w.net.server(CDE_ZONE_SERVER).unwrap();
        assert!(log.count_queries_for(&n("x-1.cache.example")) >= 1);
    }

    #[test]
    fn stub_cache_blocks_repeat_lookups() {
        let mut w = build_simple_world(1, 31);
        let ing = w.platform.ingress_ips()[0];
        let mut mta = EnterpriseMailServer::new(
            Ipv4Addr::new(198, 18, 0, 25),
            MailChecks {
                mx_a: false,
                spf_txt: true,
                ..MailChecks::default()
            },
            ing,
        );
        let mut prober = SmtpProber::new(2);
        let first = prober.send_probe_email(
            &mut mta,
            &mut w.platform,
            &mut w.net,
            &n("x-1.cache.example"),
            SimTime::ZERO,
        );
        assert!(first[0].reached_platform);
        let second = prober.send_probe_email(
            &mut mta,
            &mut w.platform,
            &mut w.net,
            &n("x-1.cache.example"),
            SimTime::ZERO,
        );
        // TXT answer for x-1 was NODATA/CNAME chain... if records came back
        // they are stubbed; at minimum the call must not panic and must
        // report whether the platform was reached.
        assert_eq!(second.len(), 1);
    }

    #[test]
    fn distinct_sender_domains_bypass_stub() {
        let mut w = build_simple_world(1, 32);
        let ing = w.platform.ingress_ips()[0];
        let mut mta = EnterpriseMailServer::new(
            Ipv4Addr::new(198, 18, 0, 25),
            MailChecks {
                spf_txt: true,
                ..MailChecks::default()
            },
            ing,
        );
        let mut prober = SmtpProber::new(3);
        for i in 1..=5 {
            let t = prober.send_probe_email(
                &mut mta,
                &mut w.platform,
                &mut w.net,
                &n(&format!("x-{i}.cache.example")),
                SimTime::ZERO,
            );
            assert!(t[0].reached_platform, "probe {i} blocked by stub");
        }
        assert_eq!(prober.emails_sent(), 5);
    }

    #[test]
    fn all_profile_triggers_seven_queries() {
        let ing = Ipv4Addr::new(192, 0, 2, 1);
        let mta = EnterpriseMailServer::new(Ipv4Addr::new(198, 18, 0, 25), MailChecks::all(), ing);
        // 5 single + MX + A = 7.
        assert_eq!(mta.lookups_for(&n("x-1.cache.example")).len(), 7);
    }

    #[test]
    fn query_kind_display_matches_table1_rows() {
        assert_eq!(
            QueryKind::SpfTxt.to_string(),
            "Modern SPF queries (TXT qtype)"
        );
        assert_eq!(QueryKind::Dmarc.to_string(), "DMARC");
    }
}
