//! The telemetry hub: where emitters meet the drain.
//!
//! A [`TelemetryHub`] owns the event ring, the epoch all timestamps are
//! relative to, and the campaign-id allocator. It is designed to sit
//! behind an `Arc` shared by every layer of a measurement stack — the
//! reactor emits probe lifecycle events into it, campaign drivers open
//! [`CampaignSpan`]s, and one drainer periodically pulls JSONL out.
//!
//! A **disabled** hub (the default global) reduces every emit to a single
//! branch, so instrumented code pays nothing when nobody is listening.
//! Mirroring `tracing`'s global-subscriber shape (without the
//! dependency), [`install_global`] lets binaries opt whole-process
//! instrumentation in; library code reaches the hub via [`global`].

use crate::event::{Event, EventKind};
use crate::registry::{Collector, Metric};
use crate::ring::EventRing;
use parking_lot::RwLock;
use std::io;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Default ring capacity for [`TelemetryHub::new`] callers that do not
/// care: a 10k-probe campaign window's worth of lifecycle events.
pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

/// Shared event hub. See the module docs.
#[derive(Debug)]
pub struct TelemetryHub {
    ring: EventRing,
    epoch: Instant,
    enabled: bool,
    next_campaign: AtomicU32,
}

impl TelemetryHub {
    /// An enabled hub with a ring of `capacity` events.
    pub fn new(capacity: usize) -> Arc<TelemetryHub> {
        Arc::new(TelemetryHub {
            ring: EventRing::new(capacity),
            epoch: Instant::now(),
            enabled: true,
            next_campaign: AtomicU32::new(1),
        })
    }

    /// A no-op hub: every emit is a branch and nothing is stored.
    pub fn disabled() -> Arc<TelemetryHub> {
        Arc::new(TelemetryHub {
            ring: EventRing::new(1),
            epoch: Instant::now(),
            enabled: false,
            next_campaign: AtomicU32::new(1),
        })
    }

    /// `true` when events are actually recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Microseconds since this hub's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Emits one event tagged with `campaign` (0 = no span). Non-blocking;
    /// sheds oldest under backpressure.
    pub fn emit(&self, campaign: u32, kind: EventKind) {
        if !self.enabled {
            return;
        }
        self.ring.push(Event {
            at_us: self.now_us(),
            campaign,
            kind,
        });
    }

    /// Opens a campaign span: emits `campaign_begin` and returns the span
    /// handle that will emit `campaign_end` when closed (or dropped).
    pub fn begin_campaign(self: &Arc<Self>, name: &'static str, planned: u64) -> CampaignSpan {
        let id = self.next_campaign.fetch_add(1, Ordering::Relaxed);
        self.emit(id, EventKind::CampaignBegin { name, planned });
        CampaignSpan {
            hub: Arc::clone(self),
            id,
            completed: 0,
            answered: 0,
            timeouts: 0,
            ended: false,
        }
    }

    /// Drains queued events (oldest first) into `out`. If events were
    /// shed since the previous drain, an [`EventKind::EventsDropped`]
    /// record is appended so the stream itself shows the loss.
    pub fn drain_into(&self, out: &mut Vec<Event>) {
        self.ring.drain_into(out);
        let shed = self.ring.take_dropped();
        if shed > 0 {
            out.push(Event {
                at_us: self.now_us(),
                campaign: 0,
                kind: EventKind::EventsDropped { count: shed },
            });
        }
    }

    /// Drains queued events and returns them.
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Drains queued events as JSONL into `w`. Returns lines written.
    pub fn drain_jsonl<W: io::Write>(&self, w: &mut W) -> io::Result<usize> {
        let events = self.drain();
        let mut buf = String::new();
        for ev in &events {
            ev.write_jsonl(&mut buf);
        }
        w.write_all(buf.as_bytes())?;
        Ok(events.len())
    }

    /// Total events emitted into this hub.
    pub fn emitted(&self) -> u64 {
        self.ring.emitted()
    }

    /// Total events shed by the ring (drop-oldest backpressure).
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Events currently queued awaiting a drain.
    pub fn queued(&self) -> usize {
        self.ring.len()
    }
}

/// A hub exports its own health: emitted/dropped totals and the current
/// queue depth, so telemetry loss is itself observable.
impl Collector for TelemetryHub {
    fn collect(&self, out: &mut Vec<Metric>) {
        out.push(Metric::counter(
            "cde_telemetry_events_emitted_total",
            "Events emitted into the telemetry ring",
            self.emitted(),
        ));
        out.push(Metric::counter(
            "cde_telemetry_events_dropped_total",
            "Events shed by the ring under backpressure (drop-oldest)",
            self.dropped(),
        ));
        out.push(Metric::gauge(
            "cde_telemetry_queue_depth",
            "Events queued awaiting a drain",
            self.queued() as f64,
        ));
    }
}

/// An open campaign span. Emit progress through it as the campaign runs;
/// closing it (explicitly via [`CampaignSpan::end`], or implicitly on
/// drop) emits `campaign_end` with the last reported totals.
#[derive(Debug)]
pub struct CampaignSpan {
    hub: Arc<TelemetryHub>,
    id: u32,
    completed: u64,
    answered: u64,
    timeouts: u64,
    ended: bool,
}

impl CampaignSpan {
    /// An already-ended span on a disabled hub: emits nothing, ever.
    /// Useful as a placeholder when moving a span out of a struct field
    /// to [`CampaignSpan::end`] it.
    pub fn detached() -> CampaignSpan {
        CampaignSpan {
            hub: TelemetryHub::disabled(),
            id: 0,
            completed: 0,
            answered: 0,
            timeouts: 0,
            ended: true,
        }
    }

    /// The span id tagged onto its events.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The hub this span emits into.
    pub fn hub(&self) -> &Arc<TelemetryHub> {
        &self.hub
    }

    /// Emits a `campaign_progress` event and remembers the totals for
    /// the final `campaign_end`.
    pub fn progress(&mut self, submitted: u64, completed: u64, answered: u64, in_flight: u64) {
        self.completed = completed;
        self.answered = answered;
        self.timeouts = completed.saturating_sub(answered);
        self.hub.emit(
            self.id,
            EventKind::CampaignProgress {
                submitted,
                completed,
                answered,
                in_flight,
            },
        );
    }

    /// Emits a campaign-defined annotation (e.g. `estimated_caches`).
    pub fn note(&self, key: &'static str, value: u64) {
        self.hub
            .emit(self.id, EventKind::CampaignNote { key, value });
    }

    /// Tags this span with its owning tenant (emits `campaign_tenant`).
    /// Multi-tenant daemons call this right after opening the span.
    pub fn tenant(&self, tenant: &'static str) {
        self.hub.emit(self.id, EventKind::CampaignTenant { tenant });
    }

    /// Emits an arbitrary event tagged with this span's id — the hook
    /// campaign drivers use for probe lifecycle events they originate
    /// (e.g. `probe_planned` at submission time).
    pub fn event(&self, kind: EventKind) {
        self.hub.emit(self.id, kind);
    }

    /// Closes the span with explicit totals.
    pub fn end(mut self, completed: u64, answered: u64, timeouts: u64) {
        self.completed = completed;
        self.answered = answered;
        self.timeouts = timeouts;
        self.finish();
    }

    fn finish(&mut self) {
        if self.ended {
            return;
        }
        self.ended = true;
        self.hub.emit(
            self.id,
            EventKind::CampaignEnd {
                completed: self.completed,
                answered: self.answered,
                timeouts: self.timeouts,
            },
        );
    }
}

impl Drop for CampaignSpan {
    fn drop(&mut self) {
        // A span abandoned mid-flight (early return, panic unwind) still
        // closes with its last reported totals.
        self.finish();
    }
}

static GLOBAL: RwLock<Option<Arc<TelemetryHub>>> = RwLock::new(None);
static DISABLED: OnceLock<Arc<TelemetryHub>> = OnceLock::new();

/// The process-wide hub. Disabled (no-op) until [`install_global`] runs.
pub fn global() -> Arc<TelemetryHub> {
    if let Some(hub) = GLOBAL.read().as_ref() {
        return Arc::clone(hub);
    }
    Arc::clone(DISABLED.get_or_init(TelemetryHub::disabled))
}

/// Installs `hub` as the process-wide hub (replacing any previous one).
/// Library code that calls [`global`] starts emitting into it from the
/// next event on.
pub fn install_global(hub: Arc<TelemetryHub>) {
    *GLOBAL.write() = Some(hub);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropReason;

    #[test]
    fn span_emits_begin_progress_end() {
        let hub = TelemetryHub::new(64);
        let mut span = hub.begin_campaign("test_campaign", 10);
        span.progress(4, 2, 2, 2);
        span.note("estimated_caches", 7);
        span.end(10, 9, 1);
        let events = hub.drain();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            vec![
                "campaign_begin",
                "campaign_progress",
                "campaign_note",
                "campaign_end"
            ]
        );
        // All tagged with the same span id.
        assert!(events.iter().all(|e| e.campaign == events[0].campaign));
        assert!(matches!(
            events[3].kind,
            EventKind::CampaignEnd {
                completed: 10,
                answered: 9,
                timeouts: 1
            }
        ));
    }

    #[test]
    fn tenant_tag_lands_in_the_span_stream() {
        let hub = TelemetryHub::new(64);
        let span = hub.begin_campaign("tenant_tagged", 4);
        span.tenant("alice");
        span.end(4, 4, 0);
        let events = hub.drain();
        assert_eq!(events[1].kind.name(), "campaign_tenant");
        assert_eq!(events[1].campaign, events[0].campaign);
        let mut line = String::new();
        events[1].write_jsonl(&mut line);
        assert!(line.contains("\"tenant\": \"alice\""), "{line}");
    }

    #[test]
    fn dropped_span_still_ends() {
        let hub = TelemetryHub::new(64);
        {
            let mut span = hub.begin_campaign("abandoned", 0);
            span.progress(5, 3, 1, 2);
        }
        let events = hub.drain();
        assert_eq!(events.last().unwrap().kind.name(), "campaign_end");
        assert!(matches!(
            events.last().unwrap().kind,
            EventKind::CampaignEnd {
                completed: 3,
                answered: 1,
                timeouts: 2
            }
        ));
    }

    #[test]
    fn disabled_hub_records_nothing() {
        let hub = TelemetryHub::disabled();
        hub.emit(
            0,
            EventKind::ReplyDropped {
                reason: DropReason::Stray,
            },
        );
        let mut span = hub.begin_campaign("quiet", 1);
        span.progress(1, 1, 1, 0);
        drop(span);
        assert_eq!(hub.emitted(), 0);
        assert!(hub.drain().is_empty());
    }

    #[test]
    fn drain_surfaces_ring_loss() {
        let hub = TelemetryHub::new(2);
        for token in 0..5 {
            hub.emit(0, EventKind::ProbePlanned { token });
        }
        let events = hub.drain();
        match events.last().unwrap().kind {
            EventKind::EventsDropped { count } => assert_eq!(count, 3),
            other => panic!("expected events_dropped, got {other:?}"),
        }
    }

    #[test]
    fn global_defaults_to_disabled_then_installs() {
        assert!(!global().is_enabled() || global().is_enabled());
        let hub = TelemetryHub::new(8);
        install_global(Arc::clone(&hub));
        assert!(global().is_enabled());
        global().emit(0, EventKind::ProbePlanned { token: 1 });
        assert_eq!(hub.emitted(), 1);
    }
}
