//! Prometheus text exposition rendering (version 0.0.4 of the format).
//!
//! One `# HELP` / `# TYPE` pair per metric family, samples beneath it,
//! label values escaped per the spec (`\\`, `\"`, `\n`), histograms
//! expanded into `_bucket{le=...}` / `_sum` / `_count` with the implicit
//! `+Inf` bucket appended.

use crate::registry::{Metric, MetricValue};
use std::fmt::Write;

/// Escapes a HELP string: backslash and newline.
fn escape_help(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Escapes a label value: backslash, double quote and newline.
fn escape_label(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Writes `{k="v",...}` — with `extra` (used for `le`) appended last.
fn write_labels(out: &mut String, labels: &[(&'static str, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label(out, v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        escape_label(out, v);
        out.push('"');
    }
    out.push('}');
}

fn write_f64(out: &mut String, v: f64) {
    if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else if v.is_nan() {
        out.push_str("NaN");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Renders `metrics` (pre-sorted by name so families are contiguous) as
/// the Prometheus text format.
pub fn render(metrics: &[Metric]) -> String {
    let mut out = String::with_capacity(metrics.len() * 64 + 16);
    let mut last_family: Option<&str> = None;
    for m in metrics {
        if last_family != Some(m.name) {
            let _ = write!(out, "# HELP {} ", m.name);
            escape_help(&mut out, m.help);
            out.push('\n');
            let _ = writeln!(out, "# TYPE {} {}", m.name, m.value.type_name());
            last_family = Some(m.name);
        }
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(m.name);
                write_labels(&mut out, &m.labels, None);
                let _ = writeln!(out, " {v}");
            }
            MetricValue::Gauge(v) => {
                out.push_str(m.name);
                write_labels(&mut out, &m.labels, None);
                out.push(' ');
                write_f64(&mut out, *v);
                out.push('\n');
            }
            MetricValue::Histogram {
                buckets,
                sum,
                count,
            } => {
                let mut le = String::new();
                for (bound, cumulative) in buckets {
                    le.clear();
                    write_f64(&mut le, *bound);
                    out.push_str(m.name);
                    out.push_str("_bucket");
                    write_labels(&mut out, &m.labels, Some(("le", &le)));
                    let _ = writeln!(out, " {cumulative}");
                }
                out.push_str(m.name);
                out.push_str("_bucket");
                write_labels(&mut out, &m.labels, Some(("le", "+Inf")));
                let _ = writeln!(out, " {count}");
                out.push_str(m.name);
                out.push_str("_sum");
                write_labels(&mut out, &m.labels, None);
                out.push(' ');
                write_f64(&mut out, *sum);
                out.push('\n');
                out.push_str(m.name);
                out.push_str("_count");
                write_labels(&mut out, &m.labels, None);
                let _ = writeln!(out, " {count}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_share_one_header() {
        let metrics = vec![
            Metric::counter("requests_total", "Total requests", 1).with_label("code", "200"),
            Metric::counter("requests_total", "Total requests", 2).with_label("code", "500"),
        ];
        let text = render(&metrics);
        assert_eq!(text.matches("# HELP requests_total").count(), 1);
        assert_eq!(text.matches("# TYPE requests_total counter").count(), 1);
        assert!(text.contains("requests_total{code=\"200\"} 1\n"));
        assert!(text.contains("requests_total{code=\"500\"} 2\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let metrics =
            vec![Metric::gauge("g", "help with \\ and\nnewline", 1.0)
                .with_label("path", "a\"b\\c\nd")];
        let text = render(&metrics);
        assert!(text.contains("# HELP g help with \\\\ and\\nnewline\n"));
        assert!(text.contains("g{path=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn histogram_expands_with_inf_bucket() {
        let metrics = vec![Metric::histogram(
            "latency_seconds",
            "Latency",
            vec![(0.001, 2), (0.01, 5)],
            0.042,
            6,
        )];
        let text = render(&metrics);
        assert!(text.contains("latency_seconds_bucket{le=\"0.001\"} 2\n"));
        assert!(text.contains("latency_seconds_bucket{le=\"0.01\"} 5\n"));
        assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 6\n"));
        assert!(text.contains("latency_seconds_sum 0.042\n"));
        assert!(text.contains("latency_seconds_count 6\n"));
    }
}
