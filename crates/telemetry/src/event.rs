//! The structured event vocabulary: campaign spans and per-probe
//! lifecycle, serialized as one flat JSON object per line (JSONL).
//!
//! Events are `Copy` and carry no owned data — emitting one from the
//! reactor's hot path allocates nothing. Campaign names are `&'static
//! str` for the same reason.

use crate::json;
use std::fmt::Write;

/// Why the engine discarded a well-formed reply instead of matching it
/// to an outstanding probe. Mirrors the reactor's correlation checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// No outstanding probe with that query id — wrong or stale id, or a
    /// late/duplicate reply arriving after the attempt was retired.
    Stray,
    /// The query id matched but the source address did not: off-path
    /// spoofing.
    Spoofed,
    /// Id and source matched but the echoed question differed — a
    /// query-id collision duplicating someone else's answer onto ours.
    Duplicate,
}

impl DropReason {
    /// Stable wire name, used in JSONL and metric labels.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::Stray => "stray",
            DropReason::Spoofed => "spoofed",
            DropReason::Duplicate => "duplicate",
        }
    }
}

/// One telemetry event. The probe lifecycle runs
/// planned → sent → (retried → sent)* → matched | timed_out, with
/// `reply_dropped` recording replies rejected by the correlation checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A campaign span opened. `planned` is the campaign's own unit of
    /// work (probes, rounds, ingresses — span-defined).
    CampaignBegin {
        /// Static campaign name (e.g. `"enumerate_adaptive"`).
        name: &'static str,
        /// Planned units of work, 0 when unknown up front.
        planned: u64,
    },
    /// Periodic progress inside a campaign span.
    CampaignProgress {
        /// Probes handed to the engine so far.
        submitted: u64,
        /// Probes finished (answered or failed).
        completed: u64,
        /// Probes that got an answer.
        answered: u64,
        /// Probes currently outstanding.
        in_flight: u64,
    },
    /// A campaign-defined annotation (e.g. `estimated_caches`).
    CampaignNote {
        /// Static annotation key.
        key: &'static str,
        /// Annotation value.
        value: u64,
    },
    /// The tenant a campaign span belongs to — multi-tenant daemons tag
    /// each span right after `campaign_begin` so one JSONL stream can be
    /// split per tenant.
    CampaignTenant {
        /// Tenant name. `&'static str` keeps events `Copy`; daemons
        /// intern each tenant name once at registration (the tenant set
        /// is small and bounded).
        tenant: &'static str,
    },
    /// A campaign span closed.
    CampaignEnd {
        /// Units completed (same unit as `CampaignBegin::planned`).
        completed: u64,
        /// Units answered/successful.
        answered: u64,
        /// Units that failed every attempt.
        timeouts: u64,
    },
    /// A probe was admitted into the engine.
    ProbePlanned {
        /// Caller correlation token.
        token: u64,
    },
    /// A probe attempt went out on the wire.
    ProbeSent {
        /// Caller correlation token.
        token: u64,
        /// Attempt number, 0-based (0 = first send).
        attempt: u32,
    },
    /// An attempt's deadline passed and a retransmit was scheduled.
    ProbeRetried {
        /// Caller correlation token.
        token: u64,
        /// The attempt number about to be sent.
        attempt: u32,
    },
    /// A reply matched the probe (id, source and question all verified).
    ProbeMatched {
        /// Caller correlation token.
        token: u64,
        /// Attempt that was answered.
        attempt: u32,
        /// Round-trip time measured from the probe's *last* send,
        /// microseconds.
        rtt_us: u64,
        /// The probe had been retransmitted before this reply arrived,
        /// so `rtt_us` may belong to an earlier attempt than the one
        /// the reply answered — consumers doing timing analysis (the
        /// §IV-B3 latency side channel) should exclude such samples.
        retransmit_ambiguous: bool,
    },
    /// The probe exhausted every attempt without an answer.
    ProbeTimedOut {
        /// Caller correlation token.
        token: u64,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A well-formed reply was rejected by the correlation checks.
    ReplyDropped {
        /// Which check rejected it.
        reason: DropReason,
    },
    /// The telemetry ring shed `count` events since the last drain —
    /// emitted by the drain side so loss is visible in the stream itself.
    EventsDropped {
        /// Events shed (drop-oldest) since the previous drain.
        count: u64,
    },
}

impl EventKind {
    /// Stable wire name of the event kind.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::CampaignBegin { .. } => "campaign_begin",
            EventKind::CampaignProgress { .. } => "campaign_progress",
            EventKind::CampaignNote { .. } => "campaign_note",
            EventKind::CampaignTenant { .. } => "campaign_tenant",
            EventKind::CampaignEnd { .. } => "campaign_end",
            EventKind::ProbePlanned { .. } => "probe_planned",
            EventKind::ProbeSent { .. } => "probe_sent",
            EventKind::ProbeRetried { .. } => "probe_retried",
            EventKind::ProbeMatched { .. } => "probe_matched",
            EventKind::ProbeTimedOut { .. } => "probe_timed_out",
            EventKind::ReplyDropped { .. } => "reply_dropped",
            EventKind::EventsDropped { .. } => "events_dropped",
        }
    }
}

/// A timestamped event, tagged with the campaign span it belongs to
/// (`campaign == 0` means "no span": engine-level probe events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Microseconds since the hub's epoch.
    pub at_us: u64,
    /// Owning campaign span id, 0 for none.
    pub campaign: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Appends this event to `out` as one JSONL line (newline included).
    pub fn write_jsonl(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"at_us\": {}, \"campaign\": {}, \"kind\": ",
            self.at_us, self.campaign
        );
        json::write_str(out, self.kind.name());
        match self.kind {
            EventKind::CampaignBegin { name, planned } => {
                out.push_str(", \"name\": ");
                json::write_str(out, name);
                let _ = write!(out, ", \"planned\": {planned}");
            }
            EventKind::CampaignProgress {
                submitted,
                completed,
                answered,
                in_flight,
            } => {
                let _ = write!(
                    out,
                    ", \"submitted\": {submitted}, \"completed\": {completed}, \
                     \"answered\": {answered}, \"in_flight\": {in_flight}"
                );
            }
            EventKind::CampaignNote { key, value } => {
                out.push_str(", \"key\": ");
                json::write_str(out, key);
                let _ = write!(out, ", \"value\": {value}");
            }
            EventKind::CampaignTenant { tenant } => {
                out.push_str(", \"tenant\": ");
                json::write_str(out, tenant);
            }
            EventKind::CampaignEnd {
                completed,
                answered,
                timeouts,
            } => {
                let _ = write!(
                    out,
                    ", \"completed\": {completed}, \"answered\": {answered}, \
                     \"timeouts\": {timeouts}"
                );
            }
            EventKind::ProbePlanned { token } => {
                let _ = write!(out, ", \"token\": {token}");
            }
            EventKind::ProbeSent { token, attempt }
            | EventKind::ProbeRetried { token, attempt } => {
                let _ = write!(out, ", \"token\": {token}, \"attempt\": {attempt}");
            }
            EventKind::ProbeMatched {
                token,
                attempt,
                rtt_us,
                retransmit_ambiguous,
            } => {
                let _ = write!(
                    out,
                    ", \"token\": {token}, \"attempt\": {attempt}, \"rtt_us\": {rtt_us}, \
                     \"retransmit_ambiguous\": {retransmit_ambiguous}"
                );
            }
            EventKind::ProbeTimedOut { token, attempts } => {
                let _ = write!(out, ", \"token\": {token}, \"attempts\": {attempts}");
            }
            EventKind::ReplyDropped { reason } => {
                out.push_str(", \"reason\": ");
                json::write_str(out, reason.as_str());
            }
            EventKind::EventsDropped { count } => {
                let _ = write!(out, ", \"count\": {count}");
            }
        }
        out.push_str("}\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_is_flat_and_tagged() {
        let ev = Event {
            at_us: 1500,
            campaign: 3,
            kind: EventKind::ProbeMatched {
                token: 42,
                attempt: 1,
                rtt_us: 730,
                retransmit_ambiguous: true,
            },
        };
        let mut line = String::new();
        ev.write_jsonl(&mut line);
        assert_eq!(
            line,
            "{\"at_us\": 1500, \"campaign\": 3, \"kind\": \"probe_matched\", \
             \"token\": 42, \"attempt\": 1, \"rtt_us\": 730, \
             \"retransmit_ambiguous\": true}\n"
        );
    }

    #[test]
    fn every_kind_serializes_with_its_name() {
        let kinds = [
            EventKind::CampaignBegin {
                name: "x",
                planned: 1,
            },
            EventKind::CampaignProgress {
                submitted: 1,
                completed: 1,
                answered: 1,
                in_flight: 0,
            },
            EventKind::CampaignNote { key: "k", value: 9 },
            EventKind::CampaignTenant { tenant: "alice" },
            EventKind::CampaignEnd {
                completed: 1,
                answered: 1,
                timeouts: 0,
            },
            EventKind::ProbePlanned { token: 1 },
            EventKind::ProbeSent {
                token: 1,
                attempt: 0,
            },
            EventKind::ProbeRetried {
                token: 1,
                attempt: 1,
            },
            EventKind::ProbeMatched {
                token: 1,
                attempt: 0,
                rtt_us: 5,
                retransmit_ambiguous: false,
            },
            EventKind::ProbeTimedOut {
                token: 1,
                attempts: 3,
            },
            EventKind::ReplyDropped {
                reason: DropReason::Spoofed,
            },
            EventKind::EventsDropped { count: 7 },
        ];
        for kind in kinds {
            let mut line = String::new();
            Event {
                at_us: 0,
                campaign: 0,
                kind,
            }
            .write_jsonl(&mut line);
            assert!(line.contains(kind.name()), "{line}");
            assert!(line.ends_with("}\n"), "{line}");
        }
    }
}
