//! **cde-telemetry** — observability for the measurement stack, with no
//! external tracing or metrics dependency.
//!
//! The paper's CDE measurements live or die on operational judgment
//! calls: was a low cache estimate a real small platform, or packet
//! loss, or the rate limiter stalling the burst? Answering that needs
//! two complementary views, both provided here:
//!
//! * **Events** ([`event`], [`ring`], [`hub`]) — a structured
//!   event/span stream: campaign spans (`begin` / `progress` / `note` /
//!   `end`) and per-probe lifecycle events (`planned → sent → retried →
//!   matched | timed_out`, plus `reply_dropped` with the engine's
//!   stray/spoofed/duplicate taxonomy). Events are `Copy`, emission is
//!   non-blocking, and the ring sheds **oldest** events under
//!   backpressure with an exact shed counter — telemetry can never
//!   stall a probe.
//! * **Metrics** ([`registry`], [`prometheus`]) — a pull-model
//!   [`MetricsRegistry`] that components register [`Collector`]s into,
//!   exported as the Prometheus text format or a JSON snapshot.
//!
//! Binaries install a process-wide hub via [`install_global`]; library
//! code emits through [`global`], which is a no-op until then.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod hub;
pub mod json;
pub mod prometheus;
pub mod registry;
pub mod report;
pub mod ring;

pub use event::{DropReason, Event, EventKind};
pub use hub::{global, install_global, CampaignSpan, TelemetryHub, DEFAULT_RING_CAPACITY};
pub use json::strip_at_us;
pub use registry::{Collector, Metric, MetricValue, MetricsRegistry};
pub use report::ProgressReporter;
pub use ring::EventRing;
