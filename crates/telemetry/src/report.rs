//! The campaign progress reporter: a periodic drain from hub to sink.
//!
//! Emitters push into the hub's ring from the hot path; *somebody* has to
//! pull, or the ring sheds. A [`ProgressReporter`] is that somebody for
//! batch campaigns: call [`ProgressReporter::tick`] from the submission
//! loop (it rate-limits itself to the configured interval) and
//! [`ProgressReporter::flush`] once at the end. Every drained event goes
//! to the JSONL sink, and — when the TTY line is enabled — the latest
//! `campaign_progress` totals are redrawn in place on stderr.

use crate::event::EventKind;
use crate::hub::TelemetryHub;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default reporting cadence: frequent enough for a live TTY, far too
/// slow to matter next to probe I/O.
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(250);

/// Drains a [`TelemetryHub`] into a JSONL sink on a fixed cadence, with
/// an optional in-place TTY progress line. See the module docs.
pub struct ProgressReporter {
    hub: Arc<TelemetryHub>,
    sink: Option<Box<dyn io::Write + Send>>,
    tty: bool,
    interval: Duration,
    last_drain: Option<Instant>,
    /// Latest `campaign_progress` totals, for the TTY line:
    /// `(campaign, submitted, completed, answered, in_flight)`.
    last_progress: Option<(u32, u64, u64, u64, u64)>,
    tty_dirty: bool,
    buf: String,
    events_written: u64,
}

impl ProgressReporter {
    /// A reporter for `hub` with the default cadence, no sink, no TTY.
    pub fn new(hub: Arc<TelemetryHub>) -> ProgressReporter {
        ProgressReporter {
            hub,
            sink: None,
            tty: false,
            interval: DEFAULT_INTERVAL,
            last_drain: None,
            last_progress: None,
            tty_dirty: false,
            buf: String::new(),
            events_written: 0,
        }
    }

    /// Streams every drained event to `sink` as JSONL.
    pub fn to_sink(mut self, sink: impl io::Write + Send + 'static) -> ProgressReporter {
        self.sink = Some(Box::new(sink));
        self
    }

    /// Enables (or disables) the in-place progress line on stderr.
    pub fn with_tty(mut self, tty: bool) -> ProgressReporter {
        self.tty = tty;
        self
    }

    /// Sets the minimum interval between [`ProgressReporter::tick`]
    /// drains.
    pub fn every(mut self, interval: Duration) -> ProgressReporter {
        self.interval = interval;
        self
    }

    /// Drains if the interval has elapsed since the last drain. Cheap to
    /// call from a submission loop: off-cadence calls are one `Instant`
    /// comparison.
    pub fn tick(&mut self) -> io::Result<()> {
        if let Some(last) = self.last_drain {
            if last.elapsed() < self.interval {
                return Ok(());
            }
        }
        self.drain()
    }

    /// Drains unconditionally: every queued event to the sink, the TTY
    /// line finalized with a newline. Call once when the campaign ends.
    pub fn flush(&mut self) -> io::Result<()> {
        self.drain()?;
        if let Some(sink) = &mut self.sink {
            sink.flush()?;
        }
        if self.tty && self.tty_dirty {
            eprintln!();
            self.tty_dirty = false;
        }
        Ok(())
    }

    /// Events written to the sink so far.
    pub fn events_written(&self) -> u64 {
        self.events_written
    }

    fn drain(&mut self) -> io::Result<()> {
        self.last_drain = Some(Instant::now());
        let events = self.hub.drain();
        if events.is_empty() {
            return Ok(());
        }
        for ev in &events {
            if let EventKind::CampaignProgress {
                submitted,
                completed,
                answered,
                in_flight,
            } = ev.kind
            {
                self.last_progress = Some((ev.campaign, submitted, completed, answered, in_flight));
            }
        }
        if let Some(sink) = &mut self.sink {
            self.buf.clear();
            for ev in &events {
                ev.write_jsonl(&mut self.buf);
            }
            sink.write_all(self.buf.as_bytes())?;
            self.events_written += events.len() as u64;
        }
        if self.tty {
            if let Some((campaign, submitted, completed, answered, in_flight)) = self.last_progress
            {
                eprint!(
                    "\r[campaign {campaign}] submitted {submitted}  completed {completed}  \
                     answered {answered}  in-flight {in_flight}    "
                );
                self.tty_dirty = true;
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for ProgressReporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressReporter")
            .field("tty", &self.tty)
            .field("interval", &self.interval)
            .field("events_written", &self.events_written)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// An `io::Write` capturing into shared memory.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn flush_streams_all_events_as_jsonl() {
        let hub = TelemetryHub::new(128);
        let out = SharedBuf::default();
        let mut reporter = ProgressReporter::new(Arc::clone(&hub)).to_sink(out.clone());
        let mut span = hub.begin_campaign("report_test", 3);
        span.progress(2, 1, 1, 1);
        span.end(3, 2, 1);
        reporter.flush().unwrap();
        let text = String::from_utf8(out.0.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\": \"campaign_begin\""));
        assert!(lines[1].contains("\"kind\": \"campaign_progress\""));
        assert!(lines[2].contains("\"kind\": \"campaign_end\""));
        assert_eq!(reporter.events_written(), 3);
    }

    #[test]
    fn tick_respects_the_interval() {
        let hub = TelemetryHub::new(128);
        let out = SharedBuf::default();
        let mut reporter = ProgressReporter::new(Arc::clone(&hub))
            .to_sink(out.clone())
            .every(Duration::from_secs(3600));
        hub.emit(0, EventKind::ProbePlanned { token: 1 });
        reporter.tick().unwrap(); // first tick always drains
        hub.emit(0, EventKind::ProbePlanned { token: 2 });
        reporter.tick().unwrap(); // within the interval: no drain
        assert_eq!(reporter.events_written(), 1);
        reporter.flush().unwrap(); // flush ignores the interval
        assert_eq!(reporter.events_written(), 2);
    }
}
