//! Minimal JSON string escaping — the one piece of JSON machinery the
//! exporters need. Numbers are formatted with Rust's shortest-roundtrip
//! `Display`, which is already valid JSON.

use std::fmt::Write;

/// Appends `s` to `out` as a JSON string literal (quotes included),
/// escaping quotes, backslashes and control characters.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as a JSON number. Non-finite values (which JSON
/// cannot represent) are emitted as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Strips the `"at_us": N, ` field from each line of a JSONL event
/// export, leaving everything else byte-identical.
///
/// Two runs of the same seeded chaos plan produce the same probe-level
/// event *sequence* but not the same wall-clock timestamps; diffing
/// `strip_at_us(a) == strip_at_us(b)` is the replay-identity check.
pub fn strip_at_us(jsonl: &str) -> String {
    const FIELD: &str = "\"at_us\": ";
    let mut out = String::with_capacity(jsonl.len());
    for line in jsonl.lines() {
        match line.find(FIELD) {
            Some(at) => {
                let tail = &line[at + FIELD.len()..];
                let digits = tail.chars().take_while(char::is_ascii_digit).count();
                let rest = tail[digits..].strip_prefix(", ").unwrap_or(&tail[digits..]);
                out.push_str(&line[..at]);
                out.push_str(rest);
            }
            None => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_timestamps_only() {
        let a = "{\"at_us\": 12345, \"campaign\": 1, \"kind\": \"probe_sent\"}\n";
        let b = "{\"at_us\": 99, \"campaign\": 1, \"kind\": \"probe_sent\"}\n";
        assert_eq!(strip_at_us(a), strip_at_us(b));
        assert_eq!(
            strip_at_us(a),
            "{\"campaign\": 1, \"kind\": \"probe_sent\"}\n"
        );
        // Lines without the field pass through untouched.
        assert_eq!(strip_at_us("{\"x\": 1}\n"), "{\"x\": 1}\n");
    }

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn numbers_roundtrip() {
        let mut out = String::new();
        write_f64(&mut out, 1.5);
        out.push(' ');
        write_f64(&mut out, 3.0);
        out.push(' ');
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "1.5 3 null");
    }
}
