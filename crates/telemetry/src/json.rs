//! Minimal JSON string escaping — the one piece of JSON machinery the
//! exporters need. Numbers are formatted with Rust's shortest-roundtrip
//! `Display`, which is already valid JSON.

use std::fmt::Write;

/// Appends `s` to `out` as a JSON string literal (quotes included),
/// escaping quotes, backslashes and control characters.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as a JSON number. Non-finite values (which JSON
/// cannot represent) are emitted as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn numbers_roundtrip() {
        let mut out = String::new();
        write_f64(&mut out, 1.5);
        out.push(' ');
        write_f64(&mut out, 3.0);
        out.push(' ');
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "1.5 3 null");
    }
}
