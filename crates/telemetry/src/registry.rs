//! The metrics registry: pull-model collection with two exporters.
//!
//! Instrumented components implement [`Collector`] (or hand the registry
//! a closure via [`MetricsRegistry::register_fn`]) and are polled at
//! export time — registration costs nothing at runtime, and a component
//! keeps its own representation (atomics, histograms) between scrapes.
//! [`MetricsRegistry::prometheus_text`] renders the Prometheus text
//! exposition format; [`MetricsRegistry::json_snapshot`] renders the same
//! gather as one machine-readable JSON document.

use crate::json;
use crate::prometheus;
use parking_lot::Mutex;
use std::fmt::Write;
use std::sync::Arc;

/// One exported value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically non-decreasing count.
    Counter(u64),
    /// Point-in-time level.
    Gauge(f64),
    /// Cumulative histogram: `(upper_bound, cumulative_count)` pairs in
    /// increasing bound order; the implicit `+Inf` bucket is `count`.
    Histogram {
        /// Bucket upper bounds with cumulative counts.
        buckets: Vec<(f64, u64)>,
        /// Sum of all observed values.
        sum: f64,
        /// Number of observations.
        count: u64,
    },
}

impl MetricValue {
    /// Prometheus TYPE keyword for this value.
    pub fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram { .. } => "histogram",
        }
    }
}

/// One named metric sample, possibly labelled.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Full metric name (e.g. `cde_engine_sent_total`).
    pub name: &'static str,
    /// One-line help text.
    pub help: &'static str,
    /// Label pairs; values are escaped at render time.
    pub labels: Vec<(&'static str, String)>,
    /// The sample.
    pub value: MetricValue,
}

impl Metric {
    /// An unlabelled counter.
    pub fn counter(name: &'static str, help: &'static str, value: u64) -> Metric {
        Metric {
            name,
            help,
            labels: Vec::new(),
            value: MetricValue::Counter(value),
        }
    }

    /// An unlabelled gauge.
    pub fn gauge(name: &'static str, help: &'static str, value: f64) -> Metric {
        Metric {
            name,
            help,
            labels: Vec::new(),
            value: MetricValue::Gauge(value),
        }
    }

    /// An unlabelled histogram from cumulative buckets.
    pub fn histogram(
        name: &'static str,
        help: &'static str,
        buckets: Vec<(f64, u64)>,
        sum: f64,
        count: u64,
    ) -> Metric {
        Metric {
            name,
            help,
            labels: Vec::new(),
            value: MetricValue::Histogram {
                buckets,
                sum,
                count,
            },
        }
    }

    /// The same metric with one label attached.
    pub fn with_label(mut self, key: &'static str, value: impl Into<String>) -> Metric {
        self.labels.push((key, value.into()));
        self
    }
}

/// Anything that can report metrics when the registry is polled.
pub trait Collector: Send + Sync {
    /// Appends this component's current samples to `out`.
    fn collect(&self, out: &mut Vec<Metric>);
}

struct FnCollector<F>(F);

impl<F> Collector for FnCollector<F>
where
    F: Fn(&mut Vec<Metric>) + Send + Sync,
{
    fn collect(&self, out: &mut Vec<Metric>) {
        (self.0)(out)
    }
}

/// A set of registered collectors polled at export time.
#[derive(Default)]
pub struct MetricsRegistry {
    collectors: Mutex<Vec<Arc<dyn Collector>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("collectors", &self.collectors.lock().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry, ready to share behind an `Arc`.
    pub fn new() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::default())
    }

    /// Registers a collector; it is polled on every export.
    pub fn register(&self, collector: Arc<dyn Collector>) {
        self.collectors.lock().push(collector);
    }

    /// Registers a closure producing metrics on demand — the lightweight
    /// path for a single gauge or counter (e.g. a shared atomic).
    pub fn register_fn<F>(&self, f: F)
    where
        F: Fn(&mut Vec<Metric>) + Send + Sync + 'static,
    {
        self.register(Arc::new(FnCollector(f)));
    }

    /// Number of registered collectors.
    pub fn collector_count(&self) -> usize {
        self.collectors.lock().len()
    }

    /// Polls every collector and returns the samples sorted by name (then
    /// by labels), so exports are deterministic.
    pub fn gather(&self) -> Vec<Metric> {
        let collectors: Vec<Arc<dyn Collector>> = self.collectors.lock().clone();
        let mut out = Vec::new();
        for collector in collectors {
            collector.collect(&mut out);
        }
        out.sort_by(|a, b| a.name.cmp(b.name).then_with(|| a.labels.cmp(&b.labels)));
        out
    }

    /// Renders the current gather in the Prometheus text exposition
    /// format (`# HELP` / `# TYPE` per family, escaped label values).
    pub fn prometheus_text(&self) -> String {
        prometheus::render(&self.gather())
    }

    /// Renders the current gather as one JSON document:
    /// `{"metrics": [{"name", "type", "labels", ...value}]}`.
    pub fn json_snapshot(&self) -> String {
        let metrics = self.gather();
        let mut out = String::with_capacity(metrics.len() * 96 + 32);
        out.push_str("{\"metrics\": [");
        for (i, m) in metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"name\": ");
            json::write_str(&mut out, m.name);
            out.push_str(", \"type\": ");
            json::write_str(&mut out, m.value.type_name());
            if !m.labels.is_empty() {
                out.push_str(", \"labels\": {");
                for (j, (k, v)) in m.labels.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    json::write_str(&mut out, k);
                    out.push_str(": ");
                    json::write_str(&mut out, v);
                }
                out.push('}');
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, ", \"value\": {v}");
                }
                MetricValue::Gauge(v) => {
                    out.push_str(", \"value\": ");
                    json::write_f64(&mut out, *v);
                }
                MetricValue::Histogram {
                    buckets,
                    sum,
                    count,
                } => {
                    out.push_str(", \"sum\": ");
                    json::write_f64(&mut out, *sum);
                    let _ = write!(out, ", \"count\": {count}, \"buckets\": [");
                    for (j, (le, c)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str("{\"le\": ");
                        json::write_f64(&mut out, *le);
                        let _ = write!(out, ", \"count\": {c}}}");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn gather_is_sorted_and_polls_live_values() {
        let registry = MetricsRegistry::new();
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        registry.register_fn(move |out| {
            out.push(Metric::counter("zzz_total", "z", c.load(Ordering::Relaxed)));
            out.push(Metric::gauge("aaa", "a", 1.5));
        });
        counter.store(7, Ordering::Relaxed);
        let metrics = registry.gather();
        assert_eq!(metrics[0].name, "aaa");
        assert_eq!(metrics[1].value, MetricValue::Counter(7));
    }

    #[test]
    fn json_snapshot_shapes_all_kinds() {
        let registry = MetricsRegistry::new();
        registry.register_fn(|out| {
            out.push(Metric::counter("c_total", "c", 3).with_label("kind", "x\"y"));
            out.push(Metric::gauge("g", "g", 0.25));
            out.push(Metric::histogram(
                "h",
                "h",
                vec![(0.001, 1), (0.01, 4)],
                0.02,
                4,
            ));
        });
        let json = registry.json_snapshot();
        assert!(json.contains("\"name\": \"c_total\", \"type\": \"counter\""));
        assert!(json.contains("\"labels\": {\"kind\": \"x\\\"y\"}"));
        assert!(json.contains("\"value\": 0.25"));
        assert!(json.contains("\"buckets\": [{\"le\": 0.001, \"count\": 1}"));
    }
}
