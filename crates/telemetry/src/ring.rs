//! The telemetry ring: a bounded, non-blocking event queue.
//!
//! The contract the reactor's hot path needs is strict: an emitter must
//! *never* wait on the drain side, and under backpressure the ring sheds
//! the **oldest** events (the newest are the ones an operator diagnosing
//! a live campaign still cares about), counting every shed event exactly
//! once. Emitters only ever contend with each other for the short
//! push critical section; a stalled — or absent — drainer costs nothing.
//!
//! The queue is preallocated to capacity, so steady-state emission does
//! not touch the allocator.

use crate::event::Event;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bounded drop-oldest MPMC event queue. See the module docs.
#[derive(Debug)]
pub struct EventRing {
    queue: Mutex<VecDeque<Event>>,
    capacity: usize,
    /// Events pushed, shed or not (updated under the queue lock so the
    /// `emitted == drained + queued + dropped` invariant is exact).
    emitted: AtomicU64,
    /// Events shed by drop-oldest.
    dropped: AtomicU64,
    /// Dropped count already reported to a drainer (see `take_dropped`).
    dropped_reported: AtomicU64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing {
            queue: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            emitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            dropped_reported: AtomicU64::new(0),
        }
    }

    /// Pushes one event, shedding the oldest queued event when full.
    /// Never blocks on the drain side.
    pub fn push(&self, event: Event) {
        let mut queue = self.queue.lock();
        if queue.len() >= self.capacity {
            queue.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        queue.push_back(event);
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Moves every queued event into `out`, oldest first.
    pub fn drain_into(&self, out: &mut Vec<Event>) {
        let mut queue = self.queue.lock();
        out.extend(queue.drain(..));
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// `true` when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever pushed (including later-shed ones).
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Total events shed by drop-oldest.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events shed since the last call — lets a drainer surface loss in
    /// the output stream (as an `EventsDropped` record) without double
    /// counting across drains.
    pub fn take_dropped(&self) -> u64 {
        let total = self.dropped.load(Ordering::Relaxed);
        let prev = self.dropped_reported.swap(total, Ordering::Relaxed);
        total.saturating_sub(prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(token: u64) -> Event {
        Event {
            at_us: token,
            campaign: 0,
            kind: EventKind::ProbePlanned { token },
        }
    }

    #[test]
    fn drops_oldest_when_full() {
        let ring = EventRing::new(3);
        for t in 0..5 {
            ring.push(ev(t));
        }
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        let tokens: Vec<u64> = out.iter().map(|e| e.at_us).collect();
        assert_eq!(tokens, vec![2, 3, 4], "oldest must be shed first");
        assert_eq!(ring.emitted(), 5);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn accounting_is_exact() {
        let ring = EventRing::new(4);
        for t in 0..10 {
            ring.push(ev(t));
        }
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(
            ring.emitted(),
            out.len() as u64 + ring.dropped() + ring.len() as u64
        );
    }

    #[test]
    fn take_dropped_reports_each_loss_once() {
        let ring = EventRing::new(1);
        ring.push(ev(0));
        ring.push(ev(1));
        assert_eq!(ring.take_dropped(), 1);
        assert_eq!(ring.take_dropped(), 0);
        ring.push(ev(2));
        assert_eq!(ring.take_dropped(), 1);
    }
}
