//! Golden-file coverage of the Prometheus text exposition: the rendered
//! output is compared byte-for-byte against `tests/golden/registry.prom`,
//! pinning family headers, sort order, label escaping and histogram
//! expansion. A second test checks the counter contract across
//! consecutive gathers: counters never move backwards.

use cde_telemetry::{EventKind, Metric, MetricValue, MetricsRegistry, TelemetryHub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A registry covering every value kind, label escaping, and a family
/// with multiple labelled samples (which must share one HELP/TYPE pair
/// and sort by label value).
fn demo_registry() -> Arc<MetricsRegistry> {
    let registry = MetricsRegistry::new();
    registry.register_fn(|out| {
        // Deliberately unsorted: gather must order by name, then labels.
        out.push(
            Metric::counter("cde_probe_sent_total", "Datagrams handed to the OS", 1200)
                .with_label("engine", "reactor"),
        );
        out.push(
            Metric::counter("cde_probe_sent_total", "Datagrams handed to the OS", 45)
                .with_label("engine", "blocking"),
        );
        out.push(Metric::gauge(
            "cde_in_flight",
            "Probes awaiting a reply",
            128.0,
        ));
        out.push(Metric::gauge(
            "cde_fill_ratio",
            "Send-batch occupancy",
            0.875,
        ));
        out.push(Metric::histogram(
            "cde_probe_rtt_seconds",
            "Probe round-trip time",
            vec![(0.000256, 3), (0.001024, 90), (0.004096, 117)],
            0.162,
            120,
        ));
        out.push(
            Metric::counter("cde_dropped_total", "Replies dropped before correlation", 7)
                .with_label("reason", "path\\with\"quotes\nand newline"),
        );
    });
    registry
}

#[test]
fn prometheus_text_matches_golden_file() {
    let rendered = demo_registry().prometheus_text();
    let golden = include_str!("golden/registry.prom");
    assert_eq!(
        rendered, golden,
        "Prometheus text drifted from tests/golden/registry.prom"
    );
}

#[test]
fn counters_are_monotonic_across_snapshots() {
    let registry = MetricsRegistry::new();
    let hub = TelemetryHub::new(256);
    registry.register(Arc::clone(&hub) as Arc<dyn cde_telemetry::Collector>);
    let work = Arc::new(AtomicU64::new(0));
    let w = Arc::clone(&work);
    registry.register_fn(move |out| {
        out.push(Metric::counter(
            "test_work_total",
            "Units of work",
            w.load(Ordering::Relaxed),
        ));
    });

    type CounterSample = (&'static str, Vec<(&'static str, String)>, u64);
    let counters = |metrics: &[Metric]| -> Vec<CounterSample> {
        metrics
            .iter()
            .filter_map(|m| match m.value {
                MetricValue::Counter(v) => Some((m.name, m.labels.clone(), v)),
                _ => None,
            })
            .collect()
    };

    let mut previous = counters(&registry.gather());
    for round in 1..=5u64 {
        for token in 0..round * 10 {
            hub.emit(0, EventKind::ProbePlanned { token });
        }
        hub.drain();
        work.fetch_add(round, Ordering::Relaxed);

        let current = counters(&registry.gather());
        assert_eq!(current.len(), previous.len(), "counter set must be stable");
        for ((name, labels, now), (pname, plabels, before)) in current.iter().zip(&previous) {
            assert_eq!((name, &labels), (pname, &plabels));
            assert!(
                now >= before,
                "{name}{labels:?} went backwards: {before} -> {now}"
            );
        }
        previous = current;
    }
    // And they actually advanced — monotonic, not frozen.
    let emitted = previous
        .iter()
        .find(|(name, _, _)| *name == "cde_telemetry_events_emitted_total")
        .expect("hub collector present");
    assert_eq!(emitted.2, (1..=5u64).map(|r| r * 10).sum::<u64>());
}
