//! Ring contention: concurrent emitters against a deliberately slow
//! drain must never block, and every event must be accounted for exactly
//! once — `emitted == drained + queued + shed`, with the shed total also
//! surfaced in-stream via `events_dropped` records.

use cde_telemetry::{EventKind, TelemetryHub};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const EMITTERS: u64 = 4;
const PER_EMITTER: u64 = 50_000;
/// Far smaller than the event volume, so the drop-oldest path is
/// exercised constantly, not incidentally.
const RING_CAPACITY: usize = 512;

#[test]
fn concurrent_emitters_never_block_and_drops_are_exact() {
    let hub = TelemetryHub::new(RING_CAPACITY);
    let emitters_done = Arc::new(AtomicBool::new(false));

    let drainer = {
        let hub = Arc::clone(&hub);
        let emitters_done = Arc::clone(&emitters_done);
        thread::spawn(move || {
            let mut drained = 0u64;
            let mut shed_reported = 0u64;
            let mut tally = |events: Vec<cde_telemetry::Event>| {
                for ev in events {
                    match ev.kind {
                        EventKind::EventsDropped { count } => shed_reported += count,
                        _ => drained += 1,
                    }
                }
            };
            loop {
                tally(hub.drain());
                if emitters_done.load(Ordering::Acquire) {
                    // Emitters have stopped: one final sweep picks up the
                    // tail and any not-yet-reported shed count.
                    tally(hub.drain());
                    return (drained, shed_reported);
                }
                // Slow consumer: the ring overflows many times per sleep.
                thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let handles: Vec<_> = (0..EMITTERS)
        .map(|e| {
            let hub = Arc::clone(&hub);
            thread::spawn(move || {
                for i in 0..PER_EMITTER {
                    hub.emit(
                        0,
                        EventKind::ProbeSent {
                            token: (e << 32) | i,
                            attempt: 0,
                        },
                    );
                }
            })
        })
        .collect();
    // Emission is a bounded ring push — if any emitter blocked on the
    // slow drain, these joins would hang and the test harness time out.
    for h in handles {
        h.join().unwrap();
    }
    emitters_done.store(true, Ordering::Release);
    let (drained, shed_reported) = drainer.join().unwrap();

    let total = EMITTERS * PER_EMITTER;
    assert_eq!(hub.emitted(), total);
    assert_eq!(hub.queued(), 0, "final sweep must leave the ring empty");
    assert!(
        hub.dropped() > 0,
        "a {RING_CAPACITY}-slot ring under {total} events must shed"
    );
    // Every emitted event is either delivered or counted as shed — no
    // double counting, no silent loss.
    assert_eq!(drained + hub.dropped(), total);
    // And the in-stream `events_dropped` records agree with the counter.
    assert_eq!(shed_reported, hub.dropped());
}

#[test]
fn burst_then_drain_accounts_without_a_consumer_thread() {
    // Single-threaded worst case: nobody drains during the burst.
    let hub = TelemetryHub::new(64);
    for token in 0..1_000u64 {
        hub.emit(0, EventKind::ProbePlanned { token });
    }
    assert_eq!(hub.emitted(), 1_000);
    assert_eq!(hub.queued(), 64, "ring keeps the newest events");
    assert_eq!(hub.dropped(), 1_000 - 64);

    let events = hub.drain();
    let shed: u64 = events
        .iter()
        .filter_map(|ev| match ev.kind {
            EventKind::EventsDropped { count } => Some(count),
            _ => None,
        })
        .sum();
    let delivered = events.len() as u64 - 1; // minus the events_dropped record
    assert_eq!(delivered, 64);
    assert_eq!(shed, 1_000 - 64);
    // Drop-oldest: what survives is the newest tail, in order.
    match events[0].kind {
        EventKind::ProbePlanned { token } => assert_eq!(token, 1_000 - 64),
        ref other => panic!("expected probe_planned, got {other:?}"),
    }
}
