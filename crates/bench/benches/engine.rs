//! Engine benches: live-path building blocks the campaign hot loop hits
//! per probe — rate-limiter debits, retry-schedule computation, metrics
//! recording — plus a full round trip over real loopback UDP.

use cde_core::CdeInfra;
use cde_dns::RecordType;
use cde_engine::{
    EngineMetrics, RateConfig, RateLimiter, ReactorConfig, ReactorTransport, ResolverConfig,
    RetryPolicy, Transport, UdpTransport,
};
use cde_netsim::{DetRng, SimTime};
use cde_platform::{NameserverNet, PlatformBuilder, SelectorKind};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::net::Ipv4Addr;
use std::time::Duration;

fn bench_rate_limiter(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/rate_limiter_debit");
    for &targets in &[1usize, 16, 256] {
        // High budget so debits never compute a wait in the hot loop.
        let limiter = RateLimiter::new(
            RateConfig {
                per_second: 1e9,
                burst: 1e9,
            },
            Some(RateConfig {
                per_second: 1e9,
                burst: 1e9,
            }),
        );
        group.bench_with_input(BenchmarkId::from_parameter(targets), &targets, |b, &n| {
            let mut i = 0u32;
            b.iter(|| {
                let target = Ipv4Addr::new(192, 0, (i % n as u32) as u8, 1);
                i = i.wrapping_add(1);
                black_box(limiter.debit(target))
            });
        });
    }
    group.finish();
}

fn bench_retry_schedule(c: &mut Criterion) {
    let policy = RetryPolicy::default();
    c.bench_function("engine/retry_schedule", |b| {
        let mut rng = DetRng::seed(5);
        b.iter(|| {
            let mut total = Duration::ZERO;
            for attempt in 0..policy.attempts {
                total += policy.timeout_for(attempt) + policy.delay_before(attempt, &mut rng);
            }
            black_box(total)
        });
    });
}

fn bench_metrics_record(c: &mut Criterion) {
    let metrics = EngineMetrics::new();
    c.bench_function("engine/metrics_record", |b| {
        b.iter(|| {
            metrics.record_sent();
            metrics.record_received(Duration::from_micros(700));
        });
    });
    black_box(metrics.snapshot());
}

fn bench_live_probe_roundtrip(c: &mut Criterion) {
    // One full probe over real loopback UDP: transport → resolver
    // (platform resolution) → response. Dominated by socket syscalls and
    // the resolver's poll loop — the per-probe floor of a live campaign.
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let session = infra.new_session(&mut net, 0);
    let ingress = Ipv4Addr::new(192, 0, 2, 1);
    let platform = PlatformBuilder::new(3)
        .ingress(vec![ingress])
        .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
        .cluster(2, SelectorKind::Random)
        .build();
    let resolver = cde_engine::LoopbackResolver::launch(
        platform,
        net.clone(),
        None,
        ResolverConfig::default(),
        cde_engine::EngineClock::start(),
    )
    .expect("loopback sockets");
    let mut transport = UdpTransport::connect(
        &resolver,
        None,
        net,
        RetryPolicy::single(Duration::from_secs(1)),
        3,
    )
    .expect("transport sockets");

    c.bench_function("engine/live_probe_roundtrip", |b| {
        b.iter(|| {
            black_box(transport.query(ingress, &session.honey, RecordType::A, SimTime::ZERO))
        });
    });
}

fn bench_reactor_probe_roundtrip(c: &mut Criterion) {
    // The same full loopback round trip, but through the event-driven
    // reactor's blocking seam: submit → event loop → completion. One
    // probe at a time, so this measures the seam's overhead, not the
    // pipelining win (`make bench-json` measures that).
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let session = infra.new_session(&mut net, 0);
    let ingress = Ipv4Addr::new(192, 0, 2, 1);
    let platform = PlatformBuilder::new(3)
        .ingress(vec![ingress])
        .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
        .cluster(2, SelectorKind::Random)
        .build();
    let resolver = cde_engine::LoopbackResolver::launch(
        platform,
        net.clone(),
        None,
        ResolverConfig::default(),
        cde_engine::EngineClock::start(),
    )
    .expect("loopback sockets");
    let mut transport = ReactorTransport::connect(
        &resolver,
        None,
        net,
        ReactorConfig::with_policy(RetryPolicy::single(Duration::from_secs(1)), 3),
    )
    .expect("reactor sockets");

    c.bench_function("engine/reactor_probe_roundtrip", |b| {
        b.iter(|| {
            black_box(transport.query(ingress, &session.honey, RecordType::A, SimTime::ZERO))
        });
    });
}

criterion_group!(
    benches,
    bench_rate_limiter,
    bench_retry_schedule,
    bench_metrics_record,
    bench_live_probe_roundtrip,
    bench_reactor_probe_roundtrip
);
criterion_main!(benches);
