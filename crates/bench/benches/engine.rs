//! Engine benches: live-path building blocks the campaign hot loop hits
//! per probe — rate-limiter debits, retry-schedule computation, metrics
//! recording — plus a full round trip over real loopback UDP.

use cde_core::CdeInfra;
use cde_dns::RecordType;
use cde_engine::{
    EngineMetrics, RateConfig, RateLimiter, ReactorConfig, ReactorTransport, ResolverConfig,
    RetryPolicy, Transport, UdpTransport,
};
use cde_netsim::{DetRng, SimTime};
use cde_platform::{NameserverNet, PlatformBuilder, SelectorKind};
use cde_telemetry::{EventKind, MetricsRegistry, TelemetryHub};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::net::Ipv4Addr;
use std::time::Duration;

fn bench_rate_limiter(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/rate_limiter_debit");
    for &targets in &[1usize, 16, 256] {
        // High budget so debits never compute a wait in the hot loop.
        let limiter = RateLimiter::new(
            RateConfig {
                per_second: 1e9,
                burst: 1e9,
            },
            Some(RateConfig {
                per_second: 1e9,
                burst: 1e9,
            }),
        );
        group.bench_with_input(BenchmarkId::from_parameter(targets), &targets, |b, &n| {
            let mut i = 0u32;
            b.iter(|| {
                let target = Ipv4Addr::new(192, 0, (i % n as u32) as u8, 1);
                i = i.wrapping_add(1);
                black_box(limiter.debit(target))
            });
        });
    }
    group.finish();
}

fn bench_retry_schedule(c: &mut Criterion) {
    let policy = RetryPolicy::default();
    c.bench_function("engine/retry_schedule", |b| {
        let mut rng = DetRng::seed(5);
        b.iter(|| {
            let mut total = Duration::ZERO;
            for attempt in 0..policy.attempts {
                total += policy.timeout_for(attempt) + policy.delay_before(attempt, &mut rng);
            }
            black_box(total)
        });
    });
}

fn bench_shard_partition(c: &mut Criterion) {
    // The submit-path tax of sharding: one FNV hash of the target
    // ingress per probe, routing it to its owning shard. This has to
    // stay in the nanoseconds for the partition to be free relative to
    // the syscalls it sits in front of.
    let mut group = c.benchmark_group("engine/shard_partition");
    for &shards in &[1usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &n| {
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(cde_engine::shard_for_target(Ipv4Addr::from(i), n))
            });
        });
    }
    group.finish();
}

fn bench_metrics_record(c: &mut Criterion) {
    let metrics = EngineMetrics::new();
    c.bench_function("engine/metrics_record", |b| {
        b.iter(|| {
            metrics.record_sent();
            metrics.record_received(Duration::from_micros(700));
        });
    });
    black_box(metrics.snapshot());
}

fn bench_live_probe_roundtrip(c: &mut Criterion) {
    // One full probe over real loopback UDP: transport → resolver
    // (platform resolution) → response. Dominated by socket syscalls and
    // the resolver's poll loop — the per-probe floor of a live campaign.
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let session = infra.new_session(&mut net, 0);
    let ingress = Ipv4Addr::new(192, 0, 2, 1);
    let platform = PlatformBuilder::new(3)
        .ingress(vec![ingress])
        .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
        .cluster(2, SelectorKind::Random)
        .build();
    let resolver = cde_engine::LoopbackResolver::launch(
        platform,
        net.clone(),
        None,
        ResolverConfig::default(),
        cde_engine::EngineClock::start(),
    )
    .expect("loopback sockets");
    let mut transport = UdpTransport::connect(
        &resolver,
        None,
        net,
        RetryPolicy::single(Duration::from_secs(1)),
        3,
    )
    .expect("transport sockets");

    c.bench_function("engine/live_probe_roundtrip", |b| {
        b.iter(|| {
            black_box(transport.query(ingress, &session.honey, RecordType::A, SimTime::ZERO))
        });
    });
}

fn bench_telemetry_emit(c: &mut Criterion) {
    // Per-event cost of the telemetry seam the reactor's hot path pays:
    // a disabled hub is one branch, an enabled one is a clock read plus
    // a ring push under an uncontended mutex.
    let mut group = c.benchmark_group("engine/telemetry_emit");
    let disabled = TelemetryHub::disabled();
    group.bench_function("disabled", |b| {
        let mut token = 0u64;
        b.iter(|| {
            token = token.wrapping_add(1);
            disabled.emit(0, EventKind::ProbeSent { token, attempt: 0 });
        });
    });
    let enabled = TelemetryHub::new(64 * 1024);
    group.bench_function("enabled", |b| {
        let mut token = 0u64;
        b.iter(|| {
            token = token.wrapping_add(1);
            enabled.emit(0, EventKind::ProbeSent { token, attempt: 0 });
        });
    });
    group.finish();
    black_box(enabled.emitted());
}

fn bench_reactor_probe_roundtrip(c: &mut Criterion) {
    // The same full loopback round trip, but through the event-driven
    // reactor's blocking seam: submit → event loop → completion. One
    // probe at a time, so this measures the seam's overhead, not the
    // pipelining win (`make bench-json` measures that). Run once with
    // telemetry disabled and once with a hub + registry attached — the
    // acceptance bar is that streaming probe lifecycle events costs the
    // reactor hot path within noise (≤2%).
    let mut group = c.benchmark_group("engine/reactor_probe_roundtrip");
    for telemetry_on in [false, true] {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let session = infra.new_session(&mut net, 0);
        let ingress = Ipv4Addr::new(192, 0, 2, 1);
        let platform = PlatformBuilder::new(3)
            .ingress(vec![ingress])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(2, SelectorKind::Random)
            .build();
        let resolver = cde_engine::LoopbackResolver::launch(
            platform,
            net.clone(),
            None,
            ResolverConfig::default(),
            cde_engine::EngineClock::start(),
        )
        .expect("loopback sockets");
        let hub = telemetry_on.then(|| TelemetryHub::new(64 * 1024));
        let registry = telemetry_on.then(MetricsRegistry::new);
        let mut transport = ReactorTransport::connect(
            &resolver,
            None,
            net,
            ReactorConfig {
                telemetry: hub.clone(),
                registry,
                ..ReactorConfig::with_policy(RetryPolicy::single(Duration::from_secs(1)), 3)
            },
        )
        .expect("reactor sockets");

        let label = if telemetry_on {
            "telemetry_on"
        } else {
            "telemetry_off"
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                // Keep the ring from saturating so the telemetry-on run
                // pays the steady-state push, not the drop-oldest path.
                if let Some(hub) = &hub {
                    if hub.queued() > 32 * 1024 {
                        black_box(hub.drain().len());
                    }
                }
                black_box(transport.query(ingress, &session.honey, RecordType::A, SimTime::ZERO))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rate_limiter,
    bench_retry_schedule,
    bench_shard_partition,
    bench_metrics_record,
    bench_telemetry_emit,
    bench_live_probe_roundtrip,
    bench_reactor_probe_roundtrip
);
criterion_main!(benches);
