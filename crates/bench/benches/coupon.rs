//! §V-B analysis benches: closed-form coupon-collector math vs
//! Monte-Carlo simulation cost across cache counts.

use cde_analysis::coupon::{expected_queries, query_budget, simulate_collection};
use cde_netsim::DetRng;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_closed_form(c: &mut Criterion) {
    let mut group = c.benchmark_group("coupon/closed_form");
    for n in [4u64, 64, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(expected_queries(black_box(n))));
        });
    }
    group.finish();
}

fn bench_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("coupon/query_budget");
    for n in [4u64, 64, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(query_budget(black_box(n), 0.001)));
        });
    }
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("coupon/simulate_collection");
    for n in [4u64, 64, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = DetRng::seed(1);
            b.iter(|| black_box(simulate_collection(black_box(n), &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_closed_form, bench_budget, bench_simulation);
criterion_main!(benches);
