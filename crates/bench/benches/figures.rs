//! Whole-figure benches: time to survey a miniature population (the unit
//! of work behind Figs. 3–8).

use cde_bench::runner::{measure_network, survey_population};
use cde_datasets::{generate_population, PopulationKind};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_measure_one(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/measure_network");
    for kind in PopulationKind::all() {
        let spec = generate_population(kind, 1, 42).remove(0);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &spec, |b, spec| {
            b.iter(|| black_box(measure_network(spec)));
        });
    }
    group.finish();
}

fn bench_survey_small_population(c: &mut Criterion) {
    c.bench_function("figures/survey_population_20", |b| {
        b.iter(|| black_box(survey_population(PopulationKind::Isps, 20, 7)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_measure_one, bench_survey_small_population
}
criterion_main!(benches);
