//! DNS wire-format benches: message encode/decode with compression.

use cde_dns::{Message, Name, Question, RData, Record, RecordType, Ttl};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::net::Ipv4Addr;

fn sample_response(answers: usize) -> Message {
    let qname: Name = "x-1.cache.example".parse().unwrap();
    let q = Message::query(0x1234, Question::new(qname.clone(), RecordType::A));
    let mut resp = Message::response_to(&q);
    resp.answers.push(Record::new(
        qname,
        Ttl::from_secs(60),
        RData::Cname("name.cache.example".parse().unwrap()),
    ));
    for i in 0..answers {
        resp.answers.push(Record::new(
            "name.cache.example".parse().unwrap(),
            Ttl::from_secs(60),
            RData::A(Ipv4Addr::new(198, 51, 100, i as u8)),
        ));
    }
    resp
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/encode");
    for answers in [1usize, 8, 32] {
        let msg = sample_response(answers);
        group.bench_with_input(BenchmarkId::from_parameter(answers), &msg, |b, msg| {
            b.iter(|| black_box(msg.encode().unwrap()));
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/decode");
    for answers in [1usize, 8, 32] {
        let bytes = sample_response(answers).encode().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(answers), &bytes, |b, bytes| {
            b.iter(|| black_box(Message::decode(bytes).unwrap()));
        });
    }
    group.finish();
}

fn bench_name_parse(c: &mut Criterion) {
    c.bench_function("wire/name_parse", |b| {
        b.iter(|| black_box("x-1234.sub-9.cache.example".parse::<Name>().unwrap()));
    });
}

criterion_group!(benches, bench_encode, bench_decode, bench_name_parse);
criterion_main!(benches);
