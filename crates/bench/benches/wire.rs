//! DNS wire-format benches: message encode/decode with compression, plus
//! an allocation-counting proof that the probe hot path (reusable-writer
//! encode + peek decode) touches the heap zero times after warm-up.

use cde_dns::wire::WireWriter;
use cde_dns::{Message, MessagePeek, Name, Question, RData, Record, RecordType, Ttl};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap allocation so the zero-alloc bench can *assert* the
/// property it measures, not just time it.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter has no
// effect on layout or pointers.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn sample_response(answers: usize) -> Message {
    let qname: Name = "x-1.cache.example".parse().unwrap();
    let q = Message::query(0x1234, Question::new(qname.clone(), RecordType::A));
    let mut resp = Message::response_to(&q);
    resp.answers.push(Record::new(
        qname,
        Ttl::from_secs(60),
        RData::Cname("name.cache.example".parse().unwrap()),
    ));
    for i in 0..answers {
        resp.answers.push(Record::new(
            "name.cache.example".parse().unwrap(),
            Ttl::from_secs(60),
            RData::A(Ipv4Addr::new(198, 51, 100, i as u8)),
        ));
    }
    resp
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/encode");
    for answers in [1usize, 8, 32] {
        let msg = sample_response(answers);
        group.bench_with_input(BenchmarkId::from_parameter(answers), &msg, |b, msg| {
            b.iter(|| black_box(msg.encode().unwrap()));
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/decode");
    for answers in [1usize, 8, 32] {
        let bytes = sample_response(answers).encode().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(answers), &bytes, |b, bytes| {
            b.iter(|| black_box(Message::decode(bytes).unwrap()));
        });
    }
    group.finish();
}

fn bench_name_parse(c: &mut Criterion) {
    c.bench_function("wire/name_parse", |b| {
        b.iter(|| black_box("x-1234.sub-9.cache.example".parse::<Name>().unwrap()));
    });
}

fn bench_zero_alloc_probe(c: &mut Criterion) {
    // A typical CDE probe cycle: encode a honey-name query through the
    // reusable writer, then peek-decode the response and verify the
    // echoed question — exactly what the reactor does per probe.
    let qname: Name = "x-1234.sub-9.cache.example".parse().unwrap();
    let response_bytes = {
        let query = Message::query(7, Question::new(qname.clone(), RecordType::A));
        let mut resp = Message::response_to(&query);
        resp.answers.push(Record::new(
            qname.clone(),
            Ttl::from_secs(60),
            RData::A(Ipv4Addr::new(198, 51, 100, 1)),
        ));
        resp.encode().unwrap()
    };
    let mut writer = WireWriter::new();
    // Warm up: the first encode sizes the writer's buffers.
    Message::encode_query_into(&mut writer, 1, &qname, RecordType::A);

    // The property itself, asserted (not just timed): one full
    // encode + peek + question check performs zero heap allocations.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for id in 0..64u16 {
        Message::encode_query_into(&mut writer, id, &qname, RecordType::A);
        let peek = MessagePeek::parse(&response_bytes).unwrap();
        assert!(peek.is_response());
        assert!(peek.question_matches(&qname, RecordType::A).unwrap());
    }
    let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocated, 0,
        "probe encode+decode must not touch the heap after warm-up"
    );

    c.bench_function("wire/zero_alloc_probe", |b| {
        b.iter(|| {
            Message::encode_query_into(&mut writer, black_box(3), &qname, RecordType::A);
            let peek = MessagePeek::parse(black_box(&response_bytes)).unwrap();
            black_box(peek.question_matches(&qname, RecordType::A).unwrap())
        });
    });
}

criterion_group!(
    benches,
    bench_encode,
    bench_decode,
    bench_name_parse,
    bench_zero_alloc_probe
);
criterion_main!(benches);
