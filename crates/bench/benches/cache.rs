//! Cache benches: lookup/insert throughput and eviction-policy cost.

use cde_cache::{CacheConfig, DnsCache, EvictionPolicy};
use cde_dns::{Name, RData, Record, RecordType, Ttl};
use cde_netsim::SimTime;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::net::Ipv4Addr;

fn names(count: usize) -> Vec<Name> {
    (0..count)
        .map(|i| format!("k{i}.cache.example").parse().unwrap())
        .collect()
}

fn rec(name: &Name) -> Record {
    Record::new(
        name.clone(),
        Ttl::from_secs(300),
        RData::A(Ipv4Addr::new(10, 0, 0, 1)),
    )
}

fn bench_hit(c: &mut Criterion) {
    let keys = names(1024);
    let mut cache = DnsCache::with_defaults(0);
    for k in &keys {
        cache.insert(k.clone(), RecordType::A, vec![rec(k)], SimTime::ZERO);
    }
    let mut i = 0usize;
    c.bench_function("cache/hit", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(cache.lookup(&keys[i], RecordType::A, SimTime::ZERO))
        });
    });
}

fn bench_insert_with_eviction(c: &mut Criterion) {
    let keys = names(4096);
    let mut group = c.benchmark_group("cache/insert_evicting");
    for policy in EvictionPolicy::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy),
            &policy,
            |b, &policy| {
                let mut cache = DnsCache::new(
                    0,
                    CacheConfig {
                        capacity: 512,
                        policy,
                        ..CacheConfig::default()
                    },
                );
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % keys.len();
                    cache.insert(
                        keys[i].clone(),
                        RecordType::A,
                        vec![rec(&keys[i])],
                        SimTime::ZERO,
                    );
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hit, bench_insert_with_eviction);
criterion_main!(benches);
