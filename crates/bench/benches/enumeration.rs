//! End-to-end enumeration benches: full CDE enumeration of one platform
//! as the hidden cache count grows (the cost side of Theorem 5.1).

use cde_core::access::DirectAccess;
use cde_core::enumerate::{enumerate_cname_farm, enumerate_identical, EnumerateOptions};
use cde_core::CdeInfra;
use cde_netsim::{Link, SimTime};
use cde_platform::{NameserverNet, PlatformBuilder, SelectorKind};
use cde_probers::DirectProber;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::net::Ipv4Addr;

fn bench_enumerate_identical(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate/identical");
    for n in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let q = cde_analysis::coupon::query_budget(n as u64, 0.001);
            b.iter(|| {
                let mut net = NameserverNet::new();
                let mut infra = CdeInfra::install(&mut net);
                let mut platform = PlatformBuilder::new(n as u64)
                    .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
                    .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
                    .cluster(n, SelectorKind::Random)
                    .build();
                let session = infra.new_session(&mut net, 0);
                let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 1);
                let mut access = DirectAccess::new(
                    &mut prober,
                    &mut platform,
                    Ipv4Addr::new(192, 0, 2, 1),
                    &mut net,
                );
                black_box(enumerate_identical(
                    &mut access,
                    &infra,
                    &session,
                    EnumerateOptions::with_probes(q),
                    SimTime::ZERO,
                ))
            });
        });
    }
    group.finish();
}

fn bench_enumerate_farm(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate/cname_farm");
    for n in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let q = cde_analysis::coupon::query_budget(n as u64, 0.001);
            b.iter(|| {
                let mut net = NameserverNet::new();
                let mut infra = CdeInfra::install(&mut net);
                let mut platform = PlatformBuilder::new(n as u64)
                    .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
                    .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
                    .cluster(n, SelectorKind::Random)
                    .build();
                let session = infra.new_session(&mut net, q as usize);
                let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 1);
                let mut access = DirectAccess::new(
                    &mut prober,
                    &mut platform,
                    Ipv4Addr::new(192, 0, 2, 1),
                    &mut net,
                );
                black_box(enumerate_cname_farm(
                    &mut access,
                    &infra,
                    &session,
                    EnumerateOptions::with_probes(q),
                    SimTime::ZERO,
                ))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_enumerate_identical, bench_enumerate_farm
}
criterion_main!(benches);
