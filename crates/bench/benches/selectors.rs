//! Load-balancer benches: cache-selection cost per strategy (§IV-A
//! ablation companion).

use cde_netsim::DetRng;
use cde_platform::{LoadBalancer, SelectorKind};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::net::Ipv4Addr;

fn bench_select(c: &mut Criterion) {
    let qname: cde_dns::Name = "x-1.cache.example".parse().unwrap();
    let src = Ipv4Addr::new(203, 0, 113, 5);
    let mut group = c.benchmark_group("selector/select");
    for kind in SelectorKind::all() {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            let mut lb = LoadBalancer::new(kind, 16);
            let mut rng = DetRng::seed(1);
            b.iter(|| black_box(lb.select(&qname, src, &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_select);
criterion_main!(benches);
