//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (see `DESIGN.md` §4 for the experiment index).
//!
//! * [`runner`] — parallel population surveys (generate ground truth, run
//!   the CDE pipeline, keep both for comparison),
//! * [`experiments`] — one function per table/figure plus the §V-B
//!   analysis and the design ablations.
//!
//! The `experiments` binary drives everything:
//!
//! ```text
//! cargo run --release -p cde-bench --bin experiments -- all
//! cargo run --release -p cde-bench --bin experiments -- fig4 --scale 0.2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod runner;

pub use experiments::{Scale, SurveyedPopulations};
pub use runner::{measure_network, survey_population, MeasuredNetwork};
