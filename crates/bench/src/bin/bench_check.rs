//! Bench-regression gate: compares a fresh `BENCH_engine.json` against
//! the committed baseline and fails when the reactor regresses.
//!
//! ```text
//! bench_check <baseline.json> <fresh.json> [--max-regress 0.25] [--absolute] [--timing-only]
//! ```
//!
//! The default comparison is the `reactor_vs_blocking` *speedup ratio*
//! per probe count — both backends run on the same box in the same
//! process, so the ratio cancels machine speed and is stable enough to
//! gate in CI. `--absolute` compares raw reactor `probes_per_sec`
//! instead (useful on pinned hardware). Exit codes: 0 pass, 1 regression
//! found, 2 unreadable/unparseable input.
//!
//! The parser is deliberately line-oriented (the workspace carries no
//! JSON parser): `engine_bench` writes one run object per line.

use std::process::ExitCode;

/// Extracts the number after `"key": ` on `line`, if present.
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let at = line.find(&needle)? + needle.len();
    let tail = &line[at..];
    let end = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

/// `(probes, value)` pairs to gate on, extracted from one report.
fn extract(json: &str, absolute: bool) -> Vec<(u64, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let value = if absolute {
            if !line.contains("\"backend\": \"reactor\"") {
                continue;
            }
            field_f64(line, "probes_per_sec")
        } else {
            field_f64(line, "reactor_vs_blocking")
        };
        if let (Some(value), Some(probes)) = (value, field_f64(line, "probes")) {
            out.push((probes as u64, value));
        }
    }
    out
}

/// `(probes, ratio)` pairs for the insight-overhead gate: throughput
/// with RTT digests + phase timers on, over the digests-off reactor run.
/// Absent from reports older than the `"insight"` array.
fn extract_insight(json: &str) -> Vec<(u64, f64)> {
    json.lines()
        .filter_map(|line| {
            Some((
                field_f64(line, "probes")? as u64,
                field_f64(line, "digests_on_vs_off")?,
            ))
        })
        .collect()
}

/// `(probes, ratio)` pairs for the pulse-overhead gate: throughput with
/// the health engine's observation path live (exemplar reservoir,
/// shard-runtime counters, rolling-window sampler) over the pulse-off
/// reactor run. Absent from reports older than the `"pulse"` array.
fn extract_pulse(json: &str) -> Vec<(u64, f64)> {
    json.lines()
        .filter_map(|line| {
            Some((
                field_f64(line, "probes")? as u64,
                field_f64(line, "pulse_on_vs_off")?,
            ))
        })
        .collect()
}

/// `(probes, ratio)` pairs for the flight-overhead gate: throughput
/// with the always-on flight recorder live (one seqlocked lifecycle
/// record per probe completion) over the flight-off reactor run.
/// Absent from reports older than the `"flight"` array.
fn extract_flight(json: &str) -> Vec<(u64, f64)> {
    json.lines()
        .filter_map(|line| {
            Some((
                field_f64(line, "probes")? as u64,
                field_f64(line, "flight_on_vs_off")?,
            ))
        })
        .collect()
}

/// `(shards, aggregate probes_per_sec)` pairs from the shard-scaling
/// curve. Absent from reports older than the `"scaling"` array.
fn extract_scaling(json: &str) -> Vec<(u64, f64)> {
    json.lines()
        .filter_map(|line| {
            if !line.contains("\"per_shard_probes_per_sec\"") {
                return None;
            }
            Some((
                field_f64(line, "shards")? as u64,
                field_f64(line, "probes_per_sec")?,
            ))
        })
        .collect()
}

/// One `timing` line: the time-to-exact-count comparison of the
/// adaptive loop (per-ingress RTO + sequential stopping) against the
/// static fixed-budget plan, both under the same seeded bursty-loss
/// recipe. Absent from reports older than the `"timing"` array.
#[derive(Debug, PartialEq)]
struct TimingLine {
    seed: u64,
    time_ratio: f64,
    retx_ratio: f64,
    exact: bool,
}

fn extract_timing(json: &str) -> Vec<TimingLine> {
    json.lines()
        .filter_map(|line| {
            Some(TimingLine {
                seed: field_f64(line, "seed")? as u64,
                time_ratio: field_f64(line, "adaptive_vs_static_time")?,
                retx_ratio: field_f64(line, "adaptive_vs_static_retransmits")?,
                exact: field_f64(line, "exact")? == 1.0,
            })
        })
        .collect()
}

/// Time-to-exact-count gates, active once the committed baseline
/// carries a `timing` line. Per recipe (matched by seed):
///
/// * both runs must have recovered the planted cache count exactly
///   (`exact` = 1) — a faster wrong count is a failure, not a win;
/// * the adaptive loop must beat the static plan outright: duration
///   and retransmit ratios under [`MAX_TIMING_RATIO`];
/// * neither ratio may rise past the baseline's by more than twice
///   `max_regress` (a timing ratio compounds two wall-clock
///   measurements, so it gets double the throughput allowance).
fn gate_timing(baseline: &str, fresh: &str, max_regress: f64) -> bool {
    let base = extract_timing(baseline);
    if base.is_empty() {
        return false; // pre-adaptive baseline: the timing gates are off
    }
    let new = extract_timing(fresh);
    let mut failed = false;
    for was in &base {
        let Some(now) = new.iter().find(|l| l.seed == was.seed) else {
            eprintln!(
                "FAIL timing: baseline has seed {} but fresh run lacks it",
                was.seed
            );
            failed = true;
            continue;
        };
        if !now.exact {
            eprintln!(
                "FAIL timing: seed {}: a run missed the planted cache count",
                now.seed
            );
            failed = true;
        }
        for (name, now_v, was_v) in [
            ("time", now.time_ratio, was.time_ratio),
            ("retransmit", now.retx_ratio, was.retx_ratio),
        ] {
            let ceiling = (was_v * (1.0 + 2.0 * max_regress)).min(MAX_TIMING_RATIO);
            let verdict = if now_v > ceiling { "FAIL" } else { "ok  " };
            eprintln!(
                "{verdict} timing: seed {} adaptive/static {name} ratio {now_v:.2} vs \
                 baseline {was_v:.2} (ceiling {ceiling:.2})",
                now.seed
            );
            failed |= now_v > ceiling;
        }
    }
    failed
}

/// Hard upper bound on both timing ratios: whatever the baseline says,
/// the adaptive loop must stay measurably cheaper than the static plan.
const MAX_TIMING_RATIO: f64 = 0.95;

/// The core count `engine_bench` detected when it wrote the report.
fn detected_parallelism(json: &str) -> Option<u64> {
    json.lines()
        .find_map(|line| field_f64(line, "available_parallelism"))
        .map(|v| v as u64)
}

/// Shard-scaling gates, active once the committed baseline carries a
/// `"scaling"` curve:
///
/// * on a host with ≥ 2 cores, the fresh 2-shard run must reach at
///   least 1.6× the fresh single-shard run (compared within one report,
///   so machine speed cancels; single-core hosts skip this — there is
///   no parallelism for a second shard to claim);
/// * per-shard *efficiency* — per-shard throughput over the same
///   report's single-shard throughput — must not fall more than 10%
///   below the baseline's efficiency at the same shard count.
fn gate_scaling(baseline: &str, fresh: &str) -> bool {
    const MIN_TWO_SHARD_SPEEDUP: f64 = 1.6;
    const MAX_EFFICIENCY_REGRESS: f64 = 0.10;
    let base = extract_scaling(baseline);
    if base.is_empty() {
        return false; // pre-sharding baseline: the scaling gates are off
    }
    let new = extract_scaling(fresh);
    let single = |curve: &[(u64, f64)]| curve.iter().find(|(s, _)| *s == 1).map(|(_, p)| *p);
    let (Some(new_single), Some(base_single)) = (single(&new), single(&base)) else {
        eprintln!("FAIL scaling: baseline has a shard curve but fresh run lacks one");
        return true;
    };
    let mut failed = false;

    let cores = detected_parallelism(fresh).unwrap_or(1);
    if cores >= 2 {
        if let Some((_, two)) = new.iter().find(|(s, _)| *s == 2) {
            let need = new_single * MIN_TWO_SHARD_SPEEDUP;
            let verdict = if *two < need { "FAIL" } else { "ok  " };
            eprintln!(
                "{verdict} scaling: 2 shards {two:.0} probes/s vs 1 shard {new_single:.0} \
                 (need {MIN_TWO_SHARD_SPEEDUP}x = {need:.0} on a {cores}-core host)"
            );
            failed |= *two < need;
        } else {
            eprintln!("FAIL scaling: fresh curve has no 2-shard run");
            failed = true;
        }
    } else {
        eprintln!("ok   scaling: single-core host, the 2-shard speedup gate is skipped");
    }

    for (shards, base_pps) in &base {
        let Some((_, new_pps)) = new.iter().find(|(s, _)| s == shards) else {
            eprintln!("FAIL scaling: baseline has {shards} shard(s) but fresh run lacks it");
            failed = true;
            continue;
        };
        let base_eff = (base_pps / *shards as f64) / base_single;
        let new_eff = (new_pps / *shards as f64) / new_single;
        let floor = base_eff * (1.0 - MAX_EFFICIENCY_REGRESS);
        let verdict = if new_eff < floor { "FAIL" } else { "ok  " };
        eprintln!(
            "{verdict} scaling: {shards} shard(s) per-shard efficiency {new_eff:.2} vs \
             baseline {base_eff:.2} (floor {floor:.2} at -{:.0}%)",
            MAX_EFFICIENCY_REGRESS * 100.0
        );
        failed |= new_eff < floor;
    }
    failed
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_check <baseline.json> <fresh.json> \
         [--max-regress 0.25] [--absolute] [--timing-only]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut max_regress = 0.25f64;
    let mut absolute = false;
    let mut timing_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-regress" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                max_regress = v;
            }
            "--absolute" => absolute = true,
            "--timing-only" => timing_only = true,
            _ => paths.push(arg),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        return usage();
    };
    if !(0.0..1.0).contains(&max_regress) {
        eprintln!("--max-regress must be in [0, 1), got {max_regress}");
        return ExitCode::from(2);
    }

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(err) => {
            eprintln!("bench_check: cannot read {path}: {err}");
            None
        }
    };
    let (Some(baseline), Some(fresh)) = (read(baseline_path), read(fresh_path)) else {
        return ExitCode::from(2);
    };

    // The dedicated timing lane: gate only the time-to-exact-count
    // section (the fresh report may carry nothing else). Unlike the
    // baseline-activated pass below, asking for it explicitly with no
    // timing baseline is an input error, not a silent pass.
    if timing_only {
        if extract_timing(&baseline).is_empty() {
            eprintln!("bench_check: --timing-only but {baseline_path} has no timing lines");
            return ExitCode::from(2);
        }
        return if gate_timing(&baseline, &fresh, max_regress) {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        };
    }

    let metric = if absolute {
        "reactor probes/sec"
    } else {
        "reactor-vs-blocking speedup"
    };
    let base = extract(&baseline, absolute);
    let new = extract(&fresh, absolute);
    if base.is_empty() || new.is_empty() {
        eprintln!("bench_check: no {metric} entries found (baseline {base:?}, fresh {new:?})");
        return ExitCode::from(2);
    }

    let mut failed = gate(metric, &base, &new, max_regress);

    // Insight-overhead gate, active only once the committed baseline
    // records a `digests_on_vs_off` ratio (older baselines skip it).
    let base_insight = extract_insight(&baseline);
    if !base_insight.is_empty() {
        failed |= gate(
            "insight digests-on/off ratio",
            &base_insight,
            &extract_insight(&fresh),
            max_regress,
        );
    }

    // Pulse-overhead gate, likewise active only once the committed
    // baseline records a `pulse_on_vs_off` ratio.
    let base_pulse = extract_pulse(&baseline);
    if !base_pulse.is_empty() {
        failed |= gate(
            "pulse on/off ratio",
            &base_pulse,
            &extract_pulse(&fresh),
            max_regress,
        );
    }

    // Flight-recorder-overhead gate, likewise active only once the
    // committed baseline records a `flight_on_vs_off` ratio.
    let base_flight = extract_flight(&baseline);
    if !base_flight.is_empty() {
        failed |= gate(
            "flight on/off ratio",
            &base_flight,
            &extract_flight(&fresh),
            max_regress,
        );
    }

    // Shard-scaling gates (2-shard speedup on multi-core hosts,
    // per-shard efficiency vs baseline), likewise baseline-activated.
    failed |= gate_scaling(&baseline, &fresh);

    // Time-to-exact-count gates (exactness, adaptive-beats-static,
    // ratio regression), likewise baseline-activated.
    failed |= gate_timing(&baseline, &fresh, max_regress);

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Compares fresh `(probes, value)` pairs against the baseline's; prints
/// a verdict per probe count and returns whether any regressed past the
/// `max_regress` floor (or went missing).
fn gate(metric: &str, base: &[(u64, f64)], new: &[(u64, f64)], max_regress: f64) -> bool {
    let mut failed = false;
    for (probes, was) in base {
        let Some((_, now)) = new.iter().find(|(p, _)| p == probes) else {
            eprintln!("FAIL {probes} probes: baseline has {metric} but fresh run lacks it");
            failed = true;
            continue;
        };
        let floor = was * (1.0 - max_regress);
        let verdict = if *now < floor { "FAIL" } else { "ok  " };
        eprintln!(
            "{verdict} {probes} probes: {metric} {now:.2} vs baseline {was:.2} \
             (floor {floor:.2} at -{:.0}%)",
            max_regress * 100.0
        );
        failed |= *now < floor;
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "seed": 11,
  "available_parallelism": 4,
  "runs": [
    {"backend": "blocking", "probes": 1000, "probes_per_sec": 13710.8, "latency_p50_us": 312},
    {"backend": "reactor", "probes": 1000, "probes_per_sec": 75976.2, "latency_p50_us": 690},
    {"backend": "reactor", "probes": 10000, "probes_per_sec": 79818.3, "latency_p50_us": 839},
    {"backend": "reactor_insight", "probes": 10000, "probes_per_sec": 77424.1, "latency_p50_us": 845}
  ],
  "speedup": [
    {"probes": 1000, "reactor_vs_blocking": 5.54},
    {"probes": 10000, "reactor_vs_blocking": 6.05}
  ],
  "insight": [
    {"probes": 10000, "digests_on_vs_off": 0.97}
  ],
  "pulse": [
    {"probes": 10000, "pulse_on_vs_off": 0.98}
  ],
  "flight": [
    {"probes": 10000, "flight_on_vs_off": 0.97}
  ],
  "scaling": [
    {"shards": 1, "probes": 10000, "probes_per_sec": 80000.0, "per_shard_probes_per_sec": 80000.0},
    {"shards": 2, "probes": 10000, "probes_per_sec": 150000.0, "per_shard_probes_per_sec": 75000.0},
    {"shards": 4, "probes": 10000, "probes_per_sec": 260000.0, "per_shard_probes_per_sec": 65000.0}
  ],
  "timing": [
    {"seed": 17, "caches": 5, "static_elapsed_s": 6.5000, "static_retransmits": 66, "static_spent": 155, "adaptive_elapsed_s": 1.3000, "adaptive_retransmits": 24, "adaptive_spent": 52, "adaptive_vs_static_time": 0.20, "adaptive_vs_static_retransmits": 0.36, "exact": 1}
  ]
}"#;

    #[test]
    fn extracts_speedup_ratios() {
        assert_eq!(extract(REPORT, false), vec![(1000, 5.54), (10000, 6.05)]);
    }

    #[test]
    fn extracts_absolute_reactor_throughput() {
        assert_eq!(
            extract(REPORT, true),
            vec![(1000, 75976.2), (10000, 79818.3)]
        );
    }

    #[test]
    fn extracts_insight_overhead_ratio() {
        assert_eq!(extract_insight(REPORT), vec![(10000, 0.97)]);
        assert!(extract_insight(r#"{"speedup": []}"#).is_empty());
    }

    #[test]
    fn insight_lines_do_not_leak_into_speedup_extraction() {
        assert_eq!(extract(REPORT, false), vec![(1000, 5.54), (10000, 6.05)]);
    }

    #[test]
    fn extracts_pulse_overhead_ratio() {
        assert_eq!(extract_pulse(REPORT), vec![(10000, 0.98)]);
        assert!(extract_pulse(r#"{"speedup": []}"#).is_empty());
    }

    /// The pulse ratio gates like any other metric: a fresh run whose
    /// pulse-on throughput collapses past the regression floor fails.
    #[test]
    fn pulse_ratio_regression_fails_the_gate() {
        assert!(!gate(
            "pulse on/off ratio",
            &extract_pulse(REPORT),
            &extract_pulse(REPORT),
            0.25
        ));
        let regressed = REPORT.replace("\"pulse_on_vs_off\": 0.98", "\"pulse_on_vs_off\": 0.60");
        assert!(gate(
            "pulse on/off ratio",
            &extract_pulse(REPORT),
            &extract_pulse(&regressed),
            0.25
        ));
    }

    #[test]
    fn extracts_flight_overhead_ratio() {
        assert_eq!(extract_flight(REPORT), vec![(10000, 0.97)]);
        assert!(extract_flight(r#"{"speedup": []}"#).is_empty());
    }

    /// The flight-recorder ratio gates like pulse and insight: a fresh
    /// run whose flight-on throughput collapses past the floor fails,
    /// and a pre-flight baseline (no `"flight"` array) keeps it off.
    #[test]
    fn flight_ratio_regression_fails_the_gate() {
        assert!(!gate(
            "flight on/off ratio",
            &extract_flight(REPORT),
            &extract_flight(REPORT),
            0.25
        ));
        let regressed = REPORT.replace("\"flight_on_vs_off\": 0.97", "\"flight_on_vs_off\": 0.50");
        assert!(gate(
            "flight on/off ratio",
            &extract_flight(REPORT),
            &extract_flight(&regressed),
            0.25
        ));
    }

    #[test]
    fn extracts_scaling_curve_and_parallelism() {
        assert_eq!(
            extract_scaling(REPORT),
            vec![(1, 80000.0), (2, 150000.0), (4, 260000.0)]
        );
        assert_eq!(detected_parallelism(REPORT), Some(4));
        assert!(extract_scaling(r#"{"speedup": []}"#).is_empty());
    }

    /// `"shards"` on a scaling line must not leak into the run/speedup
    /// extractors (no `probes_per_sec` confusion across arrays).
    #[test]
    fn scaling_lines_do_not_leak_into_other_extractors() {
        assert_eq!(extract(REPORT, false), vec![(1000, 5.54), (10000, 6.05)]);
        assert_eq!(
            extract(REPORT, true),
            vec![(1000, 75976.2), (10000, 79818.3)]
        );
    }

    #[test]
    fn scaling_gate_passes_on_identical_reports() {
        assert!(!gate_scaling(REPORT, REPORT));
    }

    #[test]
    fn scaling_gate_is_off_without_a_baseline_curve() {
        assert!(!gate_scaling(r#"{"speedup": []}"#, REPORT));
    }

    #[test]
    fn scaling_gate_fails_when_two_shards_stop_scaling() {
        // 2 shards at 1.1x single-shard on a 4-core host: below 1.6x.
        let fresh = REPORT.replace(
            "\"shards\": 2, \"probes\": 10000, \"probes_per_sec\": 150000.0",
            "\"shards\": 2, \"probes\": 10000, \"probes_per_sec\": 88000.0",
        );
        assert!(gate_scaling(REPORT, &fresh));
    }

    #[test]
    fn scaling_gate_skips_speedup_but_keeps_efficiency_on_one_core() {
        let single_core = REPORT.replace(
            "\"available_parallelism\": 4",
            "\"available_parallelism\": 1",
        );
        // Same curve: efficiency unchanged, speedup gate skipped — pass.
        assert!(!gate_scaling(REPORT, &single_core));
        // Collapsed 4-shard throughput: efficiency regresses past 10%
        // even though the speedup gate is off.
        let regressed = single_core.replace(
            "\"shards\": 4, \"probes\": 10000, \"probes_per_sec\": 260000.0",
            "\"shards\": 4, \"probes\": 10000, \"probes_per_sec\": 200000.0",
        );
        assert!(gate_scaling(REPORT, &regressed));
    }

    #[test]
    fn scaling_gate_fails_when_fresh_run_drops_the_curve() {
        assert!(gate_scaling(REPORT, r#"{"speedup": []}"#));
    }

    #[test]
    fn extracts_timing_line_but_not_the_top_level_seed() {
        let lines = extract_timing(REPORT);
        assert_eq!(
            lines,
            vec![TimingLine {
                seed: 17,
                time_ratio: 0.20,
                retx_ratio: 0.36,
                exact: true,
            }],
            "only the timing line carries both ratios"
        );
        assert!(extract_timing(r#"{"speedup": []}"#).is_empty());
    }

    #[test]
    fn timing_gate_passes_on_identical_reports() {
        assert!(!gate_timing(REPORT, REPORT, 0.25));
    }

    #[test]
    fn timing_gate_is_off_without_a_baseline_line() {
        assert!(!gate_timing(r#"{"speedup": []}"#, REPORT, 0.25));
    }

    #[test]
    fn timing_gate_fails_when_a_run_misses_the_count() {
        let inexact = REPORT.replace("\"exact\": 1", "\"exact\": 0");
        assert!(gate_timing(REPORT, &inexact, 0.25));
    }

    #[test]
    fn timing_gate_fails_when_adaptive_stops_beating_static() {
        // Even with an absurdly lax regression allowance, the hard
        // MAX_TIMING_RATIO ceiling keeps adaptive >= static a failure.
        let slow = REPORT.replace(
            "\"adaptive_vs_static_time\": 0.20",
            "\"adaptive_vs_static_time\": 0.97",
        );
        assert!(gate_timing(REPORT, &slow, 10.0));
    }

    #[test]
    fn timing_gate_fails_on_ratio_regression() {
        // Baseline 0.20, allowance 2 x 25% -> ceiling 0.30; 0.36 fails.
        let regressed = REPORT.replace(
            "\"adaptive_vs_static_time\": 0.20",
            "\"adaptive_vs_static_time\": 0.36",
        );
        assert!(gate_timing(REPORT, &regressed, 0.25));
        // The same drift within the allowance passes.
        let drifted = REPORT.replace(
            "\"adaptive_vs_static_time\": 0.20",
            "\"adaptive_vs_static_time\": 0.28",
        );
        assert!(!gate_timing(REPORT, &drifted, 0.25));
    }

    #[test]
    fn timing_gate_fails_when_fresh_run_drops_the_line() {
        assert!(gate_timing(REPORT, r#"{"speedup": []}"#, 0.25));
    }

    #[test]
    fn timing_lines_do_not_leak_into_other_extractors() {
        assert_eq!(extract(REPORT, false), vec![(1000, 5.54), (10000, 6.05)]);
        assert_eq!(
            extract_scaling(REPORT),
            vec![(1, 80000.0), (2, 150000.0), (4, 260000.0)]
        );
        assert_eq!(extract_insight(REPORT), vec![(10000, 0.97)]);
    }

    #[test]
    fn parses_terminal_field_before_closing_brace() {
        assert_eq!(field_f64(r#"{"probes": 7}"#, "probes"), Some(7.0));
        assert_eq!(field_f64(r#"{"probes": 7, "x": 1}"#, "probes"), Some(7.0));
        assert_eq!(field_f64(r#"{"x": 1}"#, "probes"), None);
    }
}
