//! Bench-regression gate: compares a fresh `BENCH_engine.json` against
//! the committed baseline and fails when the reactor regresses.
//!
//! ```text
//! bench_check <baseline.json> <fresh.json> [--max-regress 0.25] [--absolute]
//! ```
//!
//! The default comparison is the `reactor_vs_blocking` *speedup ratio*
//! per probe count — both backends run on the same box in the same
//! process, so the ratio cancels machine speed and is stable enough to
//! gate in CI. `--absolute` compares raw reactor `probes_per_sec`
//! instead (useful on pinned hardware). Exit codes: 0 pass, 1 regression
//! found, 2 unreadable/unparseable input.
//!
//! The parser is deliberately line-oriented (the workspace carries no
//! JSON parser): `engine_bench` writes one run object per line.

use std::process::ExitCode;

/// Extracts the number after `"key": ` on `line`, if present.
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let at = line.find(&needle)? + needle.len();
    let tail = &line[at..];
    let end = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

/// `(probes, value)` pairs to gate on, extracted from one report.
fn extract(json: &str, absolute: bool) -> Vec<(u64, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let value = if absolute {
            if !line.contains("\"backend\": \"reactor\"") {
                continue;
            }
            field_f64(line, "probes_per_sec")
        } else {
            field_f64(line, "reactor_vs_blocking")
        };
        if let (Some(value), Some(probes)) = (value, field_f64(line, "probes")) {
            out.push((probes as u64, value));
        }
    }
    out
}

/// `(probes, ratio)` pairs for the insight-overhead gate: throughput
/// with RTT digests + phase timers on, over the digests-off reactor run.
/// Absent from reports older than the `"insight"` array.
fn extract_insight(json: &str) -> Vec<(u64, f64)> {
    json.lines()
        .filter_map(|line| {
            Some((
                field_f64(line, "probes")? as u64,
                field_f64(line, "digests_on_vs_off")?,
            ))
        })
        .collect()
}

fn usage() -> ExitCode {
    eprintln!("usage: bench_check <baseline.json> <fresh.json> [--max-regress 0.25] [--absolute]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut max_regress = 0.25f64;
    let mut absolute = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-regress" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                max_regress = v;
            }
            "--absolute" => absolute = true,
            _ => paths.push(arg),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        return usage();
    };
    if !(0.0..1.0).contains(&max_regress) {
        eprintln!("--max-regress must be in [0, 1), got {max_regress}");
        return ExitCode::from(2);
    }

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(err) => {
            eprintln!("bench_check: cannot read {path}: {err}");
            None
        }
    };
    let (Some(baseline), Some(fresh)) = (read(baseline_path), read(fresh_path)) else {
        return ExitCode::from(2);
    };

    let metric = if absolute {
        "reactor probes/sec"
    } else {
        "reactor-vs-blocking speedup"
    };
    let base = extract(&baseline, absolute);
    let new = extract(&fresh, absolute);
    if base.is_empty() || new.is_empty() {
        eprintln!("bench_check: no {metric} entries found (baseline {base:?}, fresh {new:?})");
        return ExitCode::from(2);
    }

    let mut failed = gate(metric, &base, &new, max_regress);

    // Insight-overhead gate, active only once the committed baseline
    // records a `digests_on_vs_off` ratio (older baselines skip it).
    let base_insight = extract_insight(&baseline);
    if !base_insight.is_empty() {
        failed |= gate(
            "insight digests-on/off ratio",
            &base_insight,
            &extract_insight(&fresh),
            max_regress,
        );
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Compares fresh `(probes, value)` pairs against the baseline's; prints
/// a verdict per probe count and returns whether any regressed past the
/// `max_regress` floor (or went missing).
fn gate(metric: &str, base: &[(u64, f64)], new: &[(u64, f64)], max_regress: f64) -> bool {
    let mut failed = false;
    for (probes, was) in base {
        let Some((_, now)) = new.iter().find(|(p, _)| p == probes) else {
            eprintln!("FAIL {probes} probes: baseline has {metric} but fresh run lacks it");
            failed = true;
            continue;
        };
        let floor = was * (1.0 - max_regress);
        let verdict = if *now < floor { "FAIL" } else { "ok  " };
        eprintln!(
            "{verdict} {probes} probes: {metric} {now:.2} vs baseline {was:.2} \
             (floor {floor:.2} at -{:.0}%)",
            max_regress * 100.0
        );
        failed |= *now < floor;
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "runs": [
    {"backend": "blocking", "probes": 1000, "probes_per_sec": 13710.8, "latency_p50_us": 312},
    {"backend": "reactor", "probes": 1000, "probes_per_sec": 75976.2, "latency_p50_us": 690},
    {"backend": "reactor", "probes": 10000, "probes_per_sec": 79818.3, "latency_p50_us": 839},
    {"backend": "reactor_insight", "probes": 10000, "probes_per_sec": 77424.1, "latency_p50_us": 845}
  ],
  "speedup": [
    {"probes": 1000, "reactor_vs_blocking": 5.54},
    {"probes": 10000, "reactor_vs_blocking": 6.05}
  ],
  "insight": [
    {"probes": 10000, "digests_on_vs_off": 0.97}
  ]
}"#;

    #[test]
    fn extracts_speedup_ratios() {
        assert_eq!(extract(REPORT, false), vec![(1000, 5.54), (10000, 6.05)]);
    }

    #[test]
    fn extracts_absolute_reactor_throughput() {
        assert_eq!(
            extract(REPORT, true),
            vec![(1000, 75976.2), (10000, 79818.3)]
        );
    }

    #[test]
    fn extracts_insight_overhead_ratio() {
        assert_eq!(extract_insight(REPORT), vec![(10000, 0.97)]);
        assert!(extract_insight(r#"{"speedup": []}"#).is_empty());
    }

    #[test]
    fn insight_lines_do_not_leak_into_speedup_extraction() {
        assert_eq!(extract(REPORT, false), vec![(1000, 5.54), (10000, 6.05)]);
    }

    #[test]
    fn parses_terminal_field_before_closing_brace() {
        assert_eq!(field_f64(r#"{"probes": 7}"#, "probes"), Some(7.0));
        assert_eq!(field_f64(r#"{"probes": 7, "x": 1}"#, "probes"), Some(7.0));
        assert_eq!(field_f64(r#"{"x": 1}"#, "probes"), None);
    }
}
