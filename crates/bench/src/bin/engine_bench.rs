//! Campaign throughput: blocking worker pool vs. the probe reactor.
//!
//! Launches one loopback resolver (real UDP, simulated cache platform
//! behind it), then pushes identical probe campaigns through both
//! engines and writes `BENCH_engine.json`:
//!
//! * **blocking** — [`run_campaign`]: a worker-thread pool, one probe per
//!   worker in flight, each parked in `recv` for its probe's round trip;
//! * **reactor** — [`run_campaign_pipelined`]: a single event loop
//!   multiplexing hundreds of probes over batched syscalls.
//!
//! Same sockets, same resolver, same retry policy — the delta is purely
//! the engine. Usage: `engine_bench [output.json] [--metrics-out metrics.json]`.
//!
//! With `--metrics-out`, the final reactor run's metrics registry
//! (engine counters, reactor health gauges, buffer-pool and telemetry
//! stats) is written as a JSON snapshot alongside the bench results.
//!
//! A final `timing` section measures time-to-exact-count under a
//! fixed-seed 30% Gilbert–Elliott fault plan: the static fixed-budget
//! enumeration against the adaptive loop (per-ingress RTO table plus
//! the sequential stopping planner), both required to recover the
//! planted cache count exactly. `--timing-only` runs just that section
//! (the dedicated CI timing lane).
//!
//! Every run in the report shares one process-wide ephemeral port
//! range and warm platform state, so execution order is part of the
//! measurement. The order is fixed — runs/speedup, insight, pulse,
//! flight, scaling (1→2→4→8 shards, stamped with an explicit `order`),
//! timing — and the RNG seeds are stamped into the JSON so a re-run is
//! bit-comparable.

use cde_core::{
    enumerate_identical, enumerate_sequential, AccessProvider, CdeInfra, EnumerateOptions,
    ProbePlan,
};
use cde_engine::scheduler::{run_campaign, run_campaign_pipelined, CampaignOptions, Probe};
use cde_engine::{
    AdaptiveRtoConfig, CampaignReport, EngineClock, FlightOptions, InsightOptions, LiveTestbed,
    LoopbackResolver, PulseOptions, Reactor, ReactorConfig, ResolverConfig, RetryPolicy, Transport,
    UdpTransport,
};
use cde_faults::FaultPlan;
use cde_netsim::SimTime;
use cde_platform::{NameserverNet, PlatformBuilder, SelectorKind};
use std::net::{Ipv4Addr, SocketAddr};
use std::time::{Duration, Instant};

const INGRESS: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
/// Seed for the throughput runs (platform build, retry jitter).
const BENCH_SEED: u64 = 11;
/// Seed for the shard-scaling platform (distinct so its cache state
/// never aliases the throughput platform's).
const SCALING_SEED: u64 = 13;
/// Fixed seed of the time-to-exact-count recipe: platform, fault plan
/// and reactor RNG all derive from it, so the loss bursts land on the
/// same probes every run.
const TIMING_SEED: u64 = 17;
/// Caches actually planted behind the timing ingress.
const TIMING_CACHES: usize = 5;
/// The `n_max` upper bound the static plan must budget for — the
/// operator doesn't know the true count, which is what the sequential
/// planner exploits.
const TIMING_N_MAX: u64 = 16;
/// Gilbert–Elliott loss rate / mean burst length on the query path.
const TIMING_LOSS: f64 = 0.30;
const TIMING_BURST: f64 = 3.0;
/// Residual failure probability for the sequential stopping rule.
const TIMING_EPSILON: f64 = 0.001;
/// Probes the reactor keeps in flight. Enough to hide the resolver's
/// per-datagram service time, yet small enough that the resolver's
/// receive queue stays under the default kernel socket buffer
/// (~270 small datagrams) — deeper windows overflow it and turn the
/// measurement into a retransmission bench.
const REACTOR_WINDOW: usize = 128;

/// Loopback should be lossless, but a loaded burst can still shed the
/// odd datagram at a socket buffer; a short first timeout keeps any such
/// retransmission from dominating the tail of a run.
fn bench_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 4,
        timeout: Duration::from_millis(250),
        backoff: 2.0,
        base_delay: Duration::from_millis(2),
        jitter: 0.5,
    }
}

struct RunStats {
    backend: &'static str,
    probes: usize,
    threads: usize,
    shards: usize,
    elapsed: Duration,
    answered: usize,
    retries: u64,
    p50_us: u64,
    p99_us: u64,
}

impl RunStats {
    fn probes_per_sec(&self) -> f64 {
        self.probes as f64 / self.elapsed.as_secs_f64()
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"backend\": \"{}\", \"probes\": {}, \"threads\": {}, \"shards\": {}, ",
                "\"elapsed_s\": {:.4}, \"probes_per_sec\": {:.1}, ",
                "\"answered\": {}, \"retries\": {}, ",
                "\"latency_p50_us\": {}, \"latency_p99_us\": {}}}"
            ),
            self.backend,
            self.probes,
            self.threads,
            self.shards,
            self.elapsed.as_secs_f64(),
            self.probes_per_sec(),
            self.answered,
            self.retries,
            self.p50_us,
            self.p99_us,
        )
    }
}

fn stats(
    backend: &'static str,
    threads: usize,
    shards: usize,
    probes: usize,
    elapsed: Duration,
    report: &CampaignReport,
) -> RunStats {
    let mut latencies: Vec<u64> = report
        .outcomes
        .iter()
        .filter_map(|o| match &o.reply {
            cde_engine::TransportReply::Answered { latency, .. } => latency.map(|l| l.as_micros()),
            cde_engine::TransportReply::TimedOut => None,
        })
        .collect();
    latencies.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 * p) as usize).min(latencies.len() - 1);
        latencies[idx]
    };
    RunStats {
        backend,
        probes,
        threads,
        shards,
        elapsed,
        answered: report.answered(),
        retries: report.retries,
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
    }
}

fn probe_batch(honey: &cde_dns::Name, count: usize) -> Vec<Probe> {
    (0..count)
        .map(|_| Probe::a(INGRESS, honey.clone()))
        .collect()
}

/// Conservative static policy for the timing lane: the timeout an
/// operator would pick without RTT knowledge. The adaptive RTO table
/// can only tighten per-attempt deadlines below it, never past it.
fn timing_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 6,
        timeout: Duration::from_millis(100),
        backoff: 1.0,
        base_delay: Duration::from_millis(1),
        jitter: 0.0,
    }
}

struct TimingStats {
    elapsed: Duration,
    retransmits: u64,
    spent: u64,
    observed: u64,
}

/// One time-to-exact-count run: a fresh planted platform, real loopback
/// UDP, and the fixed-seed bursty fault plan in front of the reactor.
/// `adaptive` switches on both halves of the adaptive loop — the
/// per-ingress RTO table (retransmit deadlines learned from live RTT)
/// and the sequential stopping planner (the campaign ends the moment
/// the exact-count criterion holds instead of spending the full
/// worst-case budget). Both variants see identical platforms and fault
/// sequences because everything derives from `TIMING_SEED`.
fn timing_run(adaptive: bool) -> TimingStats {
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let session = infra.new_session(&mut net, 0);
    let platform = PlatformBuilder::new(TIMING_SEED)
        .ingress(vec![INGRESS])
        .egress((1..=3).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
        .cluster(TIMING_CACHES, SelectorKind::Random)
        .build();
    let testbed =
        LiveTestbed::launch(platform, net, ResolverConfig::default()).expect("timing testbed");
    let config = ReactorConfig {
        faults: Some(FaultPlan::bursty(TIMING_SEED, TIMING_LOSS, TIMING_BURST)),
        adaptive: adaptive.then(AdaptiveRtoConfig::default),
        ..ReactorConfig::with_policy(timing_policy(), TIMING_SEED)
    };
    let mut transport = testbed.reactor_transport(config).expect("timing transport");
    // The plan an operator would run blind: budget for `n_max` caches
    // at the hinted loss, even though only `TIMING_CACHES` exist.
    let plan = ProbePlan::for_bursty_target(TIMING_N_MAX, TIMING_LOSS, TIMING_BURST);
    let opts = EnumerateOptions {
        probes: plan.probes,
        redundancy: plan.redundancy,
        ..EnumerateOptions::default()
    };
    let start = Instant::now();
    let (spent, observed) = {
        let mut access = transport.channel(INGRESS);
        if adaptive {
            let r = enumerate_sequential(
                &mut access,
                &infra,
                &session,
                opts,
                TIMING_EPSILON,
                SimTime::ZERO,
            );
            (r.enumeration.probes, r.enumeration.observed)
        } else {
            let e = enumerate_identical(&mut access, &infra, &session, opts, SimTime::ZERO);
            (e.probes, e.observed)
        }
    };
    TimingStats {
        elapsed: start.elapsed(),
        retransmits: transport.metrics().snapshot().retries,
        spent,
        observed,
    }
}

/// Runs the static baseline then the adaptive variant (order fixed:
/// the lane's two testbeds bind from the same ephemeral port range)
/// and renders the one-line `timing` JSON entry.
fn timing_section() -> String {
    let fixed = timing_run(false);
    let adaptive = timing_run(true);
    let time_ratio = adaptive.elapsed.as_secs_f64() / fixed.elapsed.as_secs_f64();
    let retx_ratio = adaptive.retransmits as f64 / fixed.retransmits.max(1) as f64;
    let exact = (fixed.observed == TIMING_CACHES as u64
        && adaptive.observed == TIMING_CACHES as u64) as u32;
    eprintln!(
        "timing    static    {:>6.2}s  {:>4} retransmits  {:>4} spent  observed {}",
        fixed.elapsed.as_secs_f64(),
        fixed.retransmits,
        fixed.spent,
        fixed.observed,
    );
    eprintln!(
        "timing    adaptive  {:>6.2}s  {:>4} retransmits  {:>4} spent  observed {}",
        adaptive.elapsed.as_secs_f64(),
        adaptive.retransmits,
        adaptive.spent,
        adaptive.observed,
    );
    eprintln!(
        "timing    adaptive/static  time {time_ratio:.2}x  retransmits {retx_ratio:.2}x  exact {exact}"
    );
    format!(
        concat!(
            "    {{\"seed\": {}, \"caches\": {}, \"n_max_hint\": {}, ",
            "\"loss\": {}, \"mean_burst\": {}, \"epsilon\": {}, ",
            "\"static_elapsed_s\": {:.4}, \"static_retransmits\": {}, \"static_spent\": {}, ",
            "\"adaptive_elapsed_s\": {:.4}, \"adaptive_retransmits\": {}, \"adaptive_spent\": {}, ",
            "\"adaptive_vs_static_time\": {:.4}, \"adaptive_vs_static_retransmits\": {:.4}, ",
            "\"exact\": {}}}"
        ),
        TIMING_SEED,
        TIMING_CACHES,
        TIMING_N_MAX,
        TIMING_LOSS,
        TIMING_BURST,
        TIMING_EPSILON,
        fixed.elapsed.as_secs_f64(),
        fixed.retransmits,
        fixed.spent,
        adaptive.elapsed.as_secs_f64(),
        adaptive.retransmits,
        adaptive.spent,
        time_ratio,
        retx_ratio,
        exact,
    )
}

fn main() {
    let mut out_path = "BENCH_engine.json".to_string();
    let mut metrics_out: Option<String> = None;
    let mut timing_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-out" => {
                metrics_out = Some(args.next().expect("--metrics-out needs a path"));
            }
            "--timing-only" => timing_only = true,
            other => out_path = other.to_string(),
        }
    }

    // The dedicated CI timing lane: just the time-to-exact-count
    // comparison, written as a report `bench_check --timing-only` can
    // hold against the committed baseline's `timing` section.
    if timing_only {
        let timing_json = timing_section();
        let json = format!(
            "{{\n  \"bench\": \"engine_time_to_exact_count\",\n  \
             \"description\": \"static fixed-budget enumeration vs adaptive RTO + sequential stopping under bursty loss\",\n  \
             \"seed\": {TIMING_SEED},\n  \"timing\": [\n{timing_json}\n  ]\n}}\n",
        );
        std::fs::write(&out_path, &json).expect("write bench output");
        eprintln!("wrote {out_path}");
        return;
    }

    // One resolver serves every run: a platform with a couple of caches
    // and a standing session whose honey record all probes hit (cached
    // after the first, so throughput is front-end-bound, as in a real
    // enumeration burst).
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let session = infra.new_session(&mut net, 0);
    let platform = PlatformBuilder::new(BENCH_SEED)
        .ingress(vec![INGRESS])
        .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
        .cluster(2, SelectorKind::Random)
        .build();
    let resolver = LoopbackResolver::launch(
        platform,
        net.clone(),
        None,
        ResolverConfig::default(),
        EngineClock::start(),
    )
    .expect("loopback resolver");
    let addrs = resolver.ingress_addrs().clone();

    // Warmup: one short unmeasured reactor campaign so the resolver's
    // cache holds the honey record and both sides' page/branch state is
    // hot before anything is timed — otherwise the first measured run
    // pays the platform's cache-miss path that no later run sees.
    {
        let reactor = Reactor::launch(
            addrs.clone(),
            ReactorConfig {
                shards: 1,
                ..ReactorConfig::with_policy(bench_policy(), BENCH_SEED)
            },
        )
        .expect("warmup reactor");
        run_campaign_pipelined(&reactor, probe_batch(&session.honey, 2_000), REACTOR_WINDOW);
    }

    let blocking_opts = CampaignOptions::default();
    let mut runs: Vec<RunStats> = Vec::new();
    let mut speedups: Vec<(usize, f64)> = Vec::new();
    let mut insight_ratios: Vec<(usize, f64)> = Vec::new();
    let mut pulse_ratios: Vec<(usize, f64)> = Vec::new();
    let mut flight_ratios: Vec<(usize, f64)> = Vec::new();
    let mut last_registry: Option<std::sync::Arc<cde_telemetry::MetricsRegistry>> = None;

    for count in [1_000usize, 10_000] {
        // Blocking worker pool.
        let opts = blocking_opts.clone();
        let addrs_for_worker: std::collections::HashMap<Ipv4Addr, SocketAddr> = addrs.clone();
        let start = Instant::now();
        let report = run_campaign(
            move |_worker| {
                UdpTransport::direct(
                    addrs_for_worker.clone(),
                    NameserverNet::new(),
                    bench_policy(),
                    BENCH_SEED,
                )
                .expect("blocking transport")
            },
            probe_batch(&session.honey, count),
            &opts,
        );
        let blocking = stats("blocking", opts.workers, 1, count, start.elapsed(), &report);
        eprintln!(
            "blocking  {:>6} probes  {:>10.0} probes/s  p50 {:>6} us  p99 {:>6} us",
            count,
            blocking.probes_per_sec(),
            blocking.p50_us,
            blocking.p99_us
        );

        // Reactor (fresh per run so its metrics are this run's; a fresh
        // registry likewise, so `--metrics-out` reflects the last run).
        // Pinned to one shard: this series is the single-core baseline
        // the scaling curve below is measured against.
        let registry = cde_telemetry::MetricsRegistry::new();
        let reactor = Reactor::launch(
            addrs.clone(),
            ReactorConfig {
                shards: 1,
                registry: Some(std::sync::Arc::clone(&registry)),
                ..ReactorConfig::with_policy(bench_policy(), BENCH_SEED)
            },
        )
        .expect("reactor");
        last_registry = Some(registry);
        let start = Instant::now();
        let report =
            run_campaign_pipelined(&reactor, probe_batch(&session.honey, count), REACTOR_WINDOW);
        let reactor_stats = stats("reactor", 1, 1, count, start.elapsed(), &report);
        eprintln!(
            "reactor   {:>6} probes  {:>10.0} probes/s  p50 {:>6} us  p99 {:>6} us",
            count,
            reactor_stats.probes_per_sec(),
            reactor_stats.p50_us,
            reactor_stats.p99_us
        );

        let speedup = reactor_stats.probes_per_sec() / blocking.probes_per_sec();
        eprintln!("          {count:>6} probes  reactor speedup {speedup:.2}x");
        speedups.push((count, speedup));

        let reactor_pps = reactor_stats.probes_per_sec();
        runs.push(blocking);
        runs.push(reactor_stats);

        // Insight capture overhead: the same reactor campaign with RTT
        // digests and phase timers live, at the largest probe count
        // only. The ratio against the digests-off run above gates the
        // capture tier's hot-path cost in CI.
        if count == 10_000 {
            let reactor = Reactor::launch(
                addrs.clone(),
                ReactorConfig {
                    shards: 1,
                    insight: Some(InsightOptions::default()),
                    ..ReactorConfig::with_policy(bench_policy(), BENCH_SEED)
                },
            )
            .expect("insight reactor");
            let start = Instant::now();
            let report = run_campaign_pipelined(
                &reactor,
                probe_batch(&session.honey, count),
                REACTOR_WINDOW,
            );
            let insight_stats = stats("reactor_insight", 1, 1, count, start.elapsed(), &report);
            let ratio = insight_stats.probes_per_sec() / reactor_pps;
            eprintln!(
                "insight   {:>6} probes  {:>10.0} probes/s  digests on/off {ratio:.2}x",
                count,
                insight_stats.probes_per_sec(),
            );
            insight_ratios.push((count, ratio));
            runs.push(insight_stats);
        }

        // Pulse overhead: the same campaign with the health engine's
        // full observation path live — exemplar reservoir on every
        // completion, shard-runtime counters, and a sampler thread
        // snapshotting the merged metrics into rolling windows at the
        // daemon's cadence. The ratio against the pulse-off run gates
        // the health tier's hot-path cost in CI.
        if count == 10_000 {
            let reactor = Reactor::launch(
                addrs.clone(),
                ReactorConfig {
                    shards: 1,
                    pulse: Some(PulseOptions::default()),
                    ..ReactorConfig::with_policy(bench_policy(), BENCH_SEED)
                },
            )
            .expect("pulse reactor");
            let pulse = std::sync::Arc::new(
                cde_pulse::Pulse::new(cde_pulse::SloSpec::default())
                    .with_exemplars(reactor.exemplars().expect("pulse reservoir")),
            );
            let metrics = reactor.metrics();
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let sampler = {
                let pulse = std::sync::Arc::clone(&pulse);
                let stop = std::sync::Arc::clone(&stop);
                let epoch = Instant::now();
                std::thread::spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                        let snap = metrics.snapshot();
                        pulse.observe(cde_pulse::CounterSample {
                            at_ms: epoch.elapsed().as_millis() as u64,
                            sent: snap.sent,
                            received: snap.received,
                            timeouts: snap.timeouts,
                            retries: snap.retries,
                            strays: snap.stray_replies,
                            in_flight: snap.in_flight,
                            ..cde_pulse::CounterSample::default()
                        });
                        std::thread::sleep(Duration::from_millis(10));
                    }
                })
            };
            let start = Instant::now();
            let report = run_campaign_pipelined(
                &reactor,
                probe_batch(&session.honey, count),
                REACTOR_WINDOW,
            );
            let pulse_stats = stats("reactor_pulse", 1, 1, count, start.elapsed(), &report);
            stop.store(true, std::sync::atomic::Ordering::SeqCst);
            sampler.join().expect("pulse sampler");
            let ratio = pulse_stats.probes_per_sec() / reactor_pps;
            eprintln!(
                "pulse     {:>6} probes  {:>10.0} probes/s  pulse on/off {ratio:.2}x",
                count,
                pulse_stats.probes_per_sec(),
            );
            pulse_ratios.push((count, ratio));
            runs.push(pulse_stats);
        }

        // Flight-recorder overhead: the same campaign with the always-on
        // flight ring live — every shard writes one seqlocked lifecycle
        // record per probe completion (send/match/expiry timestamps, RTO,
        // disposition, wire size). The ratio against the flight-off run
        // gates the recorder's hot-path cost in CI.
        if count == 10_000 {
            let reactor = Reactor::launch(
                addrs.clone(),
                ReactorConfig {
                    shards: 1,
                    flight: Some(FlightOptions::default()),
                    ..ReactorConfig::with_policy(bench_policy(), BENCH_SEED)
                },
            )
            .expect("flight reactor");
            let start = Instant::now();
            let report = run_campaign_pipelined(
                &reactor,
                probe_batch(&session.honey, count),
                REACTOR_WINDOW,
            );
            let flight_stats = stats("reactor_flight", 1, 1, count, start.elapsed(), &report);
            let ratio = flight_stats.probes_per_sec() / reactor_pps;
            eprintln!(
                "flight    {:>6} probes  {:>10.0} probes/s  flight on/off {ratio:.2}x",
                count,
                flight_stats.probes_per_sec(),
            );
            flight_ratios.push((count, ratio));
            runs.push(flight_stats);
        }
    }

    // Shard scaling curve: the same 10k-probe campaign through 1, 2, 4
    // and 8 shards. Eight ingresses (each its own resolver socket) give
    // the target-hash partition something to spread, and the pipeline
    // window grows with the shard count so no shard is starved by the
    // submitter. On a single-core host the curve is flat-to-declining —
    // `bench_check` reads the recorded `available_parallelism` and only
    // expects speedup where cores exist.
    let scaling_ingresses: Vec<Ipv4Addr> = (11..=18).map(|d| Ipv4Addr::new(192, 0, 2, d)).collect();
    let scaling_platform = PlatformBuilder::new(SCALING_SEED)
        .ingress(scaling_ingresses.clone())
        .egress(vec![Ipv4Addr::new(192, 0, 3, 2)])
        .cluster(2, SelectorKind::Random)
        .build();
    let scaling_resolver = LoopbackResolver::launch(
        scaling_platform,
        net.clone(),
        None,
        ResolverConfig::default(),
        EngineClock::start(),
    )
    .expect("scaling resolver");
    let scaling_addrs = scaling_resolver.ingress_addrs().clone();
    let scaling_count = 10_000usize;
    let scaling_probes = |count: usize| -> Vec<Probe> {
        (0..count)
            .map(|i| {
                Probe::a(
                    scaling_ingresses[i % scaling_ingresses.len()],
                    session.honey.clone(),
                )
            })
            .collect()
    };
    // Unmeasured warm pass for the second platform's caches.
    {
        let reactor = Reactor::launch(
            scaling_addrs.clone(),
            ReactorConfig {
                shards: 1,
                ..ReactorConfig::with_policy(bench_policy(), BENCH_SEED)
            },
        )
        .expect("scaling warmup reactor");
        run_campaign_pipelined(&reactor, scaling_probes(2_000), REACTOR_WINDOW);
    }
    let mut scaling: Vec<(usize, usize, f64)> = Vec::new();
    for (order, shards) in [1usize, 2, 4, 8].into_iter().enumerate() {
        let reactor = Reactor::launch(
            scaling_addrs.clone(),
            ReactorConfig {
                shards,
                sockets: 2 * shards,
                max_in_flight: 256 * shards,
                ..ReactorConfig::with_policy(bench_policy(), BENCH_SEED)
            },
        )
        .expect("scaling reactor");
        let start = Instant::now();
        let report = run_campaign_pipelined(
            &reactor,
            scaling_probes(scaling_count),
            REACTOR_WINDOW * shards,
        );
        let elapsed = start.elapsed();
        let pps = scaling_count as f64 / elapsed.as_secs_f64();
        eprintln!(
            "scaling   {:>6} probes  {:>10.0} probes/s  {} shard(s)  \
             {:>10.0} probes/s/shard  answered {}",
            scaling_count,
            pps,
            shards,
            pps / shards as f64,
            report.answered(),
        );
        scaling.push((order, shards, pps));
    }

    // Time-to-exact-count lane, last: its testbeds draw from the same
    // process-wide port range as every run above, so its place in the
    // order is part of the recipe.
    let timing_json = timing_section();

    let runs_json: Vec<String> = runs
        .iter()
        .map(|r| format!("    {}", r.to_json()))
        .collect();
    let speedups_json: Vec<String> = speedups
        .iter()
        .map(|(count, s)| format!("    {{\"probes\": {count}, \"reactor_vs_blocking\": {s:.2}}}"))
        .collect();
    let insight_json: Vec<String> = insight_ratios
        .iter()
        .map(|(count, r)| format!("    {{\"probes\": {count}, \"digests_on_vs_off\": {r:.2}}}"))
        .collect();
    let pulse_json: Vec<String> = pulse_ratios
        .iter()
        .map(|(count, r)| format!("    {{\"probes\": {count}, \"pulse_on_vs_off\": {r:.2}}}"))
        .collect();
    let flight_json: Vec<String> = flight_ratios
        .iter()
        .map(|(count, r)| format!("    {{\"probes\": {count}, \"flight_on_vs_off\": {r:.2}}}"))
        .collect();
    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|(order, shards, pps)| {
            format!(
                "    {{\"order\": {order}, \"shards\": {shards}, \"probes\": {scaling_count}, \
                 \"probes_per_sec\": {pps:.1}, \
                 \"per_shard_probes_per_sec\": {:.1}}}",
                pps / *shards as f64
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"engine_campaign_throughput\",\n  \
         \"description\": \"loopback probe campaigns, blocking worker pool vs event-driven reactor\",\n  \
         \"seed\": {},\n  \"available_parallelism\": {},\n  \"reactor_window\": {},\n  \
         \"runs\": [\n{}\n  ],\n  \"speedup\": [\n{}\n  ],\n  \"insight\": [\n{}\n  ],\n  \
         \"pulse\": [\n{}\n  ],\n  \"flight\": [\n{}\n  ],\n  \"scaling\": [\n{}\n  ],\n  \
         \"timing\": [\n{}\n  ]\n}}\n",
        BENCH_SEED,
        std::thread::available_parallelism().map_or(0, usize::from),
        REACTOR_WINDOW,
        runs_json.join(",\n"),
        speedups_json.join(",\n"),
        insight_json.join(",\n"),
        pulse_json.join(",\n"),
        flight_json.join(",\n"),
        scaling_json.join(",\n"),
        timing_json,
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    eprintln!("wrote {out_path}");

    if let Some(path) = metrics_out {
        let registry = last_registry.expect("at least one reactor run");
        std::fs::write(&path, registry.json_snapshot()).expect("write metrics output");
        eprintln!("wrote {path}");
    }
}
