//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! experiments <exp> [--scale <f>] [--seed <u64>] [--csv <dir>]
//!             [--metrics-out <path>]
//!
//! <exp>: all | table1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8 |
//!        analysis | loss | timing | selectors | bypass | mapping |
//!        twophase | accuracy | consistency | poisoning | forwarders |
//!        background
//! ```
//!
//! With `--metrics-out`, a telemetry hub is installed globally so the
//! survey pipeline's campaign spans stream through it, and the final
//! metrics registry is written as a JSON snapshot to the given path.

use cde_bench::experiments as exp;
use cde_bench::{Scale, SurveyedPopulations};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = Scale::default();
    let mut seed = 0xC0DEu64;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut metrics_out: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale(args[i].parse().expect("--scale takes a float"));
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes a u64");
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(std::path::PathBuf::from(&args[i]));
            }
            "--metrics-out" => {
                i += 1;
                metrics_out = Some(std::path::PathBuf::from(&args[i]));
            }
            other if !other.starts_with("--") => which = other.to_string(),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }

    // Install the hub before any experiment runs so every campaign span
    // the survey pipeline opens is observed.
    let telemetry = metrics_out.as_ref().map(|_| {
        let hub = cde_telemetry::TelemetryHub::new(cde_telemetry::DEFAULT_RING_CAPACITY);
        cde_telemetry::install_global(std::sync::Arc::clone(&hub));
        let registry = cde_telemetry::MetricsRegistry::new();
        registry
            .register(std::sync::Arc::clone(&hub) as std::sync::Arc<dyn cde_telemetry::Collector>);
        (hub, registry)
    });

    let needs_surveys = matches!(
        which.as_str(),
        "all" | "fig3" | "fig4" | "fig5" | "fig6" | "fig7" | "fig8" | "accuracy"
    );
    let populations = if needs_surveys {
        eprintln!(
            "surveying populations (scale {:.2}; this runs the full measurement pipeline) ...",
            scale.0
        );
        Some(SurveyedPopulations::collect(scale, seed))
    } else {
        None
    };
    let pops = populations.as_ref();

    let mut printed = false;
    let mut run = |report: String| {
        println!("{report}");
        println!("{}", "-".repeat(78));
        printed = true;
    };

    let all = which == "all";
    if all || which == "table1" {
        run(exp::table1((1000.0 * scale.0) as usize, seed));
    }
    if all || which == "fig2" {
        run(exp::fig2(scale, seed));
    }
    if let Some(p) = pops {
        if all || which == "fig3" {
            run(exp::fig3(p));
        }
        if all || which == "fig4" {
            run(exp::fig4(p));
        }
        if all || which == "fig5" {
            run(exp::fig5(p));
        }
        if all || which == "fig6" {
            run(exp::fig6(p));
        }
        if all || which == "fig7" {
            run(exp::fig7(p));
        }
        if all || which == "fig8" {
            run(exp::fig8(p));
        }
        if all || which == "accuracy" {
            run(exp::accuracy(p));
        }
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            std::fs::write(dir.join("cdfs.csv"), exp::csv_cdfs(p)).expect("write cdfs.csv");
            std::fs::write(dir.join("scatters.csv"), exp::csv_scatters(p))
                .expect("write scatters.csv");
            std::fs::write(dir.join("networks.csv"), exp::csv_networks(p))
                .expect("write networks.csv");
            eprintln!(
                "wrote cdfs.csv, scatters.csv, networks.csv to {}",
                dir.display()
            );
        }
    }
    if all || which == "analysis" {
        run(exp::analysis(seed));
    }
    if all || which == "loss" {
        run(exp::loss(seed));
    }
    if all || which == "timing" {
        run(exp::timing(seed));
    }
    if all || which == "selectors" {
        run(exp::selectors(seed));
    }
    if all || which == "bypass" {
        run(exp::bypass(seed));
    }
    if all || which == "mapping" {
        run(exp::mapping_ablation(seed));
    }
    if all || which == "twophase" {
        run(exp::two_phase(seed));
    }
    if all || which == "consistency" {
        run(exp::consistency(seed));
    }
    if all || which == "poisoning" {
        run(exp::poisoning(seed));
    }
    if all || which == "forwarders" {
        run(exp::forwarders(seed));
    }
    if all || which == "background" {
        run(exp::background(seed));
    }
    if all || which == "edns" {
        run(exp::edns(scale, seed));
    }
    if all || which == "fingerprint" {
        run(exp::fingerprint(scale, seed));
    }
    if all || which == "caching" {
        run(exp::caching(seed));
    }

    if !printed {
        eprintln!("unknown experiment `{which}`");
        std::process::exit(2);
    }

    if let (Some(path), Some((hub, registry))) = (&metrics_out, &telemetry) {
        // Drain the ring so queue-depth reflects steady state, not the
        // backlog of a run nobody consumed.
        let events = hub.drain();
        eprintln!(
            "telemetry: {} events emitted, {} drained at exit, {} dropped",
            hub.emitted(),
            events.len(),
            hub.dropped()
        );
        std::fs::write(path, registry.json_snapshot()).expect("write metrics output");
        eprintln!("wrote {}", path.display());
    }
}
