//! Shared measurement runner: surveys whole populations in parallel.
//!
//! Every figure experiment follows the same recipe: generate a
//! ground-truth population (calibrated to the paper), run the CDE
//! measurement pipeline against each network, and aggregate the *measured*
//! values. Ground truth is kept alongside for validation columns.

use cde_core::{survey_platform, CdeInfra, SurveyOptions};
use cde_datasets::{generate_population, NetworkSpec, PopulationKind};
use cde_netsim::SimTime;
use cde_platform::NameserverNet;
use cde_probers::DirectProber;
use std::net::Ipv4Addr;

/// Measurement results for one network, next to its ground truth.
#[derive(Debug, Clone)]
pub struct MeasuredNetwork {
    /// The generated ground truth.
    pub spec: NetworkSpec,
    /// Caches measured by the CDE pipeline.
    pub measured_caches: u64,
    /// Egress addresses discovered.
    pub measured_egress: u64,
    /// Clusters discovered among the sampled ingress addresses.
    pub measured_clusters: usize,
}

impl MeasuredNetwork {
    /// `true` when the measured cache count equals ground truth.
    pub fn caches_exact(&self) -> bool {
        self.measured_caches == self.spec.total_caches() as u64
    }
}

/// How many ingress addresses of each network the survey samples (the
/// paper likewise probes the resolver addresses its dataset lists; huge
/// anycast farms are sampled, not exhausted).
pub const INGRESS_SAMPLE: usize = 6;

/// Surveys one network spec end-to-end.
pub fn measure_network(spec: &NetworkSpec) -> MeasuredNetwork {
    let mut net = NameserverNet::new();
    let mut infra = CdeInfra::install(&mut net);
    let mut platform = spec.build();

    let ingress_all = spec.ingress_ips();
    let ingress: Vec<Ipv4Addr> = if ingress_all.len() <= INGRESS_SAMPLE {
        ingress_all
    } else {
        // Spread the sample across the list (covers every cluster under
        // the platforms' round-robin ingress assignment and is a fair
        // random-ish sample otherwise).
        let step = ingress_all.len() / INGRESS_SAMPLE;
        (0..INGRESS_SAMPLE).map(|i| ingress_all[i * step]).collect()
    };

    let mut prober = DirectProber::new(
        Ipv4Addr::new(203, 0, 113, 77),
        spec.client_link(),
        0xBEEF ^ spec.id,
    );
    let opts = SurveyOptions {
        loss: spec.country.loss_rate(),
        ..SurveyOptions::default()
    };
    let survey = survey_platform(
        &mut prober,
        &mut platform,
        &mut net,
        &mut infra,
        &ingress,
        &opts,
        SimTime::ZERO,
    );
    MeasuredNetwork {
        spec: spec.clone(),
        measured_caches: survey.total_caches,
        measured_egress: survey.egress_count() as u64,
        measured_clusters: survey.mapping.cluster_count(),
    }
}

/// Generates and measures a whole population, in parallel across worker
/// threads (each network is an isolated simulation).
pub fn survey_population(kind: PopulationKind, size: usize, seed: u64) -> Vec<MeasuredNetwork> {
    let specs = generate_population(kind, size, seed);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(specs.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, MeasuredNetwork)>();
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let specs = &specs;
            let next = &next;
            let tx = tx.clone();
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= specs.len() {
                    break;
                }
                tx.send((i, measure_network(&specs[i])))
                    .expect("collector alive");
            });
        }
    })
    .expect("worker panicked");
    drop(tx);
    let mut indexed: Vec<(usize, MeasuredNetwork)> = rx.into_iter().collect();
    indexed.sort_by_key(|(i, _)| *i);
    assert_eq!(indexed.len(), specs.len(), "every network measured");
    indexed.into_iter().map(|(_, m)| m).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_network_recovers_small_spec() {
        let specs = generate_population(PopulationKind::OpenResolvers, 30, 99);
        // Pick a small, lossless, random-selector network for an exactness
        // check.
        let spec = specs
            .iter()
            .find(|s| {
                s.total_caches() <= 4
                    && s.ingress_count <= 3
                    && s.country == cde_netsim::CountryProfile::Typical
                    && s.selector == cde_platform::SelectorKind::Random
            })
            .expect("population contains a small network");
        let m = measure_network(spec);
        assert!(
            m.caches_exact(),
            "measured {} truth {}",
            m.measured_caches,
            spec.total_caches()
        );
        assert_eq!(m.measured_egress, spec.egress_count as u64);
    }

    #[test]
    fn survey_population_parallel_matches_serial() {
        let specs = generate_population(PopulationKind::Isps, 8, 5);
        let parallel = survey_population(PopulationKind::Isps, 8, 5);
        for (spec, m) in specs.iter().zip(&parallel) {
            assert_eq!(spec.id, m.spec.id);
            let serial = measure_network(spec);
            assert_eq!(serial.measured_caches, m.measured_caches);
            assert_eq!(serial.measured_egress, m.measured_egress);
        }
    }
}
