//! Experiment implementations: one function per table/figure of the
//! paper's evaluation, plus the §V-B analysis and the ablations called out
//! in `DESIGN.md` §5.
//!
//! Every function returns a plain-text report whose rows mirror what the
//! paper prints, with a `paper` column next to the `measured` column so
//! the shapes can be compared at a glance (absolute values come from
//! different substrates; see `EXPERIMENTS.md`).

use crate::runner::{survey_population, MeasuredNetwork};
use cde_analysis::coupon::{expected_queries, expected_success_rate, query_budget, simulate_mean};
use cde_analysis::estimators::carpet_bombing_k;
use cde_analysis::stats::{Cdf, Scatter};
use cde_core::access::{AccessChannel, DirectAccess};
use cde_core::enumerate::{
    enumerate_cname_farm, enumerate_identical, enumerate_names_hierarchy, enumerate_two_phase,
    EnumerateOptions,
};
use cde_core::{calibrate, enumerate_via_timing, CdeInfra, MappingOptions, MappingStrategy};
use cde_datasets::{generate_population, PopulationKind};
use cde_netsim::{CountryProfile, DetRng, LatencyModel, Link, LossModel, SimDuration, SimTime};
use cde_platform::{NameserverNet, PlatformBuilder, ResolutionPlatform, SelectorKind};
use cde_probers::{DirectProber, MailChecks, QueryKind};
use rand::Rng;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// Scale factor for population sizes (1.0 = the paper's dataset sizes).
#[derive(Debug, Clone, Copy)]
pub struct Scale(pub f64);

impl Scale {
    fn size(self, kind: PopulationKind) -> usize {
        ((kind.paper_size() as f64 * self.0).round() as usize).max(10)
    }
}

impl Default for Scale {
    fn default() -> Scale {
        Scale(1.0)
    }
}

fn fmt_pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

// ---------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------

/// Table I: DNS query types generated during the SMTP data collection.
///
/// Samples `size` enterprise MTAs with the Table I marginals and reports
/// the realised fractions next to the paper's.
pub fn table1(size: usize, seed: u64) -> String {
    let mut rng = DetRng::seed(seed).fork("table1");
    let mut counts = std::collections::BTreeMap::<QueryKind, u64>::new();
    for _ in 0..size {
        for kind in MailChecks::sample(&mut rng).kinds() {
            *counts.entry(kind).or_insert(0) += 1;
        }
    }
    let paper = [
        (QueryKind::SpfTxt, 69.6),
        (QueryKind::SpfQtype, 14.2),
        (QueryKind::Adsp, 2.0),
        (QueryKind::Dkim, 0.3),
        (QueryKind::Dmarc, 35.3),
        (QueryKind::MxA, 30.4),
    ];
    let mut out = String::new();
    writeln!(
        out,
        "Table I — DNS queries generated during the SMTP data collection ({size} domains)"
    )
    .unwrap();
    writeln!(out, "{:<45} {:>9} {:>9}", "Query type", "measured", "paper").unwrap();
    for (kind, paper_pct) in paper {
        let measured = *counts.get(&kind).unwrap_or(&0) as f64 / size as f64;
        writeln!(
            out,
            "{:<45} {:>9} {:>8.1}%",
            kind.to_string(),
            fmt_pct(measured),
            paper_pct
        )
        .unwrap();
    }
    out
}

// ---------------------------------------------------------------------
// Fig. 2
// ---------------------------------------------------------------------

/// Fig. 2: distribution of network operators across the three datasets.
pub fn fig2(scale: Scale, seed: u64) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 2 — Distribution of network operators across the datasets"
    )
    .unwrap();
    for kind in PopulationKind::all() {
        let pop = generate_population(kind, scale.size(kind), seed);
        let mut counts = std::collections::BTreeMap::<&'static str, u64>::new();
        for spec in &pop {
            *counts.entry(spec.operator).or_insert(0) += 1;
        }
        let mut rows: Vec<(&str, u64)> = counts.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        writeln!(out, "\n[{kind}] ({} networks)", pop.len()).unwrap();
        writeln!(out, "{:<50} {:>9}", "Network Operator", "measured").unwrap();
        for (name, count) in rows.iter().take(11) {
            writeln!(
                out,
                "{:<50} {:>9}",
                name,
                fmt_pct(*count as f64 / pop.len() as f64)
            )
            .unwrap();
        }
    }
    out
}

// ---------------------------------------------------------------------
// Figures 3–8 share one set of population surveys.
// ---------------------------------------------------------------------

/// Measured populations for the per-network figures.
#[derive(Debug)]
pub struct SurveyedPopulations {
    /// Open-resolver networks.
    pub open: Vec<MeasuredNetwork>,
    /// Enterprise networks.
    pub enterprises: Vec<MeasuredNetwork>,
    /// ISP networks.
    pub isps: Vec<MeasuredNetwork>,
}

impl SurveyedPopulations {
    /// Runs the measurement pipeline over all three populations.
    pub fn collect(scale: Scale, seed: u64) -> SurveyedPopulations {
        SurveyedPopulations {
            open: survey_population(
                PopulationKind::OpenResolvers,
                scale.size(PopulationKind::OpenResolvers),
                seed,
            ),
            enterprises: survey_population(
                PopulationKind::Enterprises,
                scale.size(PopulationKind::Enterprises),
                seed,
            ),
            isps: survey_population(PopulationKind::Isps, scale.size(PopulationKind::Isps), seed),
        }
    }

    fn labelled(&self) -> [(&'static str, &Vec<MeasuredNetwork>); 3] {
        [
            ("open-resolvers", &self.open),
            ("enterprises", &self.enterprises),
            ("isps", &self.isps),
        ]
    }
}

/// Fig. 3: CDF of the number of egress IP addresses per platform.
pub fn fig3(populations: &SurveyedPopulations) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 3 — Number of egress IP addresses supported by resolution platforms"
    )
    .unwrap();
    writeln!(
        out,
        "{:<16} {:>8} {:>8} {:>8} {:>10} {:>24}",
        "population", "p25", "median", "p85", "max", "paper checkpoint"
    )
    .unwrap();
    for (label, pop) in populations.labelled() {
        let cdf = Cdf::from_samples(pop.iter().map(|m| m.measured_egress));
        let checkpoint = match label {
            "open-resolvers" => format!("85% <= 5: {}", fmt_pct(cdf.fraction_at_or_below(5))),
            "enterprises" => format!("50% > 20: {}", fmt_pct(cdf.fraction_above(20))),
            _ => format!("50% > 11: {}", fmt_pct(cdf.fraction_above(11))),
        };
        writeln!(
            out,
            "{:<16} {:>8} {:>8} {:>8} {:>10} {:>24}",
            label,
            cdf.percentile(25.0),
            cdf.median(),
            cdf.percentile(85.0),
            cdf.percentile(100.0),
            checkpoint
        )
        .unwrap();
    }
    writeln!(
        out,
        "paper: enterprises 50% > 20 IPs; ISPs 50% > 11 IPs; open 85% <= 5 IPs"
    )
    .unwrap();
    out
}

/// Fig. 4: CDF of the number of caches per platform.
pub fn fig4(populations: &SurveyedPopulations) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 4 — Number of caches supported by resolution platforms (measured)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<16} {:>8} {:>8} {:>8} {:>10} {:>24}",
        "population", "p25", "median", "p85", "max", "paper checkpoint"
    )
    .unwrap();
    for (label, pop) in populations.labelled() {
        let cdf = Cdf::from_samples(pop.iter().map(|m| m.measured_caches));
        let checkpoint = match label {
            "open-resolvers" => format!("70% in 1-2: {}", fmt_pct(cdf.fraction_at_or_below(2))),
            "enterprises" => format!("65% in 1-4: {}", fmt_pct(cdf.fraction_at_or_below(4))),
            _ => format!("60% in 1-3: {}", fmt_pct(cdf.fraction_at_or_below(3))),
        };
        writeln!(
            out,
            "{:<16} {:>8} {:>8} {:>8} {:>10} {:>24}",
            label,
            cdf.percentile(25.0),
            cdf.median(),
            cdf.percentile(85.0),
            cdf.percentile(100.0),
            checkpoint
        )
        .unwrap();
    }
    writeln!(
        out,
        "paper: open 70% use 1-2; ISPs ~60% use 1-3; enterprises 65% use 1-4"
    )
    .unwrap();
    out
}

fn scatter_of(pop: &[MeasuredNetwork]) -> Scatter {
    pop.iter()
        .map(|m| (m.spec.ingress_count as u64, m.measured_caches))
        .collect()
}

fn scatter_report(title: &str, pop: &[MeasuredNetwork], paper_note: &str) -> String {
    let sc = scatter_of(pop);
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    writeln!(
        out,
        "(x = ingress IPs, y = measured caches; count = circle size)"
    )
    .unwrap();
    let mut cells: Vec<((u64, u64), u64)> = sc.cells().collect();
    cells.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    writeln!(
        out,
        "{:>10} {:>8} {:>8} {:>8}",
        "ingress", "caches", "count", "share"
    )
    .unwrap();
    for ((x, y), count) in cells.iter().take(10) {
        writeln!(
            out,
            "{x:>10} {y:>8} {count:>8} {:>8}",
            fmt_pct(*count as f64 / sc.total() as f64)
        )
        .unwrap();
    }
    writeln!(out, "paper: {paper_note}").unwrap();
    out
}

/// Fig. 5: ingress IPs vs caches for open resolvers.
pub fn fig5(populations: &SurveyedPopulations) -> String {
    scatter_report(
        "Fig. 5 — IP addresses vs caches, open resolvers",
        &populations.open,
        "dominant 1x1 circle (~70%); small circles < 10 IPs; few networks > 500 IPs with > 30 caches",
    )
}

/// Fig. 6: share of single-IP/single-cache vs multi/multi networks.
pub fn fig6(populations: &SurveyedPopulations) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 6 — IP addresses vs caches across the three populations"
    )
    .unwrap();
    writeln!(
        out,
        "{:<16} {:>16} {:>16} {:>16}",
        "population", "1 IP & 1 cache", "multi & multi", "mixed"
    )
    .unwrap();
    for (label, pop) in populations.labelled() {
        let sc = scatter_of(pop);
        let single = sc.fraction_where(|x, y| x == 1 && y == 1);
        let multi = sc.fraction_where(|x, y| x > 1 && y > 1);
        writeln!(
            out,
            "{:<16} {:>16} {:>16} {:>16}",
            label,
            fmt_pct(single),
            fmt_pct(multi),
            fmt_pct(1.0 - single - multi)
        )
        .unwrap();
    }
    writeln!(
        out,
        "paper: open ~70% single/single; ISPs <10% single (multi ~65%); enterprises <5% single (multi >80%)"
    )
    .unwrap();
    out
}

/// Fig. 7: ingress IPs vs caches for the SMTP (enterprise) population.
pub fn fig7(populations: &SurveyedPopulations) -> String {
    scatter_report(
        "Fig. 7 — IP addresses vs caches, SMTP population",
        &populations.enterprises,
        "scattered, more even distribution; fewer single-single than open resolvers",
    )
}

/// Fig. 8: ingress IPs vs caches for the ad-network (ISP) population.
pub fn fig8(populations: &SurveyedPopulations) -> String {
    scatter_report(
        "Fig. 8 — IP addresses vs caches, ad-network population",
        &populations.isps,
        "least caches and smallest IP counts of the three populations",
    )
}

/// Measurement-quality appendix: how often the pipeline recovered ground
/// truth exactly (not in the paper — our validation column).
pub fn accuracy(populations: &SurveyedPopulations) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Validation — measured vs ground truth (not in the paper)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<16} {:>14} {:>16} {:>18}",
        "population", "cache exact", "cache |err|<=1", "egress recovered"
    )
    .unwrap();
    for (label, pop) in populations.labelled() {
        let exact = pop.iter().filter(|m| m.caches_exact()).count() as f64 / pop.len() as f64;
        let close = pop
            .iter()
            .filter(|m| (m.measured_caches as i64 - m.spec.total_caches() as i64).abs() <= 1)
            .count() as f64
            / pop.len() as f64;
        let egress = pop
            .iter()
            .filter(|m| m.measured_egress == m.spec.egress_count as u64)
            .count() as f64
            / pop.len() as f64;
        writeln!(
            out,
            "{:<16} {:>14} {:>16} {:>18}",
            label,
            fmt_pct(exact),
            fmt_pct(close),
            fmt_pct(egress)
        )
        .unwrap();
    }
    out
}

// ---------------------------------------------------------------------
// §V-B analysis
// ---------------------------------------------------------------------

/// §V-B: coupon-collector expectation (Theorem 5.1) and init/validate
/// success rate, closed form vs Monte Carlo.
pub fn analysis(seed: u64) -> String {
    let mut rng = DetRng::seed(seed).fork("analysis");
    let mut out = String::new();
    writeln!(
        out,
        "Analysis (Sec. V-B) — E[X] = n*H_n, closed form vs Monte Carlo"
    )
    .unwrap();
    writeln!(
        out,
        "{:>4} {:>12} {:>12} {:>12} {:>10}",
        "n", "n*H_n", "simulated", "rel. err", "budget(q)"
    )
    .unwrap();
    for n in [1u64, 2, 4, 8, 16, 32, 64] {
        let theory = expected_queries(n);
        let sim = simulate_mean(n, 2000, &mut rng);
        writeln!(
            out,
            "{n:>4} {theory:>12.2} {sim:>12.2} {:>11.2}% {:>10}",
            (sim - theory).abs() / theory * 100.0,
            query_budget(n, 0.001)
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nInit/validate success rate N*(1 - exp(-N/n))^2 for n = 8:"
    )
    .unwrap();
    writeln!(out, "{:>6} {:>14} {:>18}", "N", "N/n", "expected successes").unwrap();
    for ratio in [1u64, 2, 4, 8] {
        let n = 8u64;
        let seeds = ratio * n;
        writeln!(
            out,
            "{seeds:>6} {ratio:>14} {:>18.2}",
            expected_success_rate(n, seeds)
        )
        .unwrap();
    }
    writeln!(
        out,
        "(as N/n grows the rate asymptotically reaches N — paper Sec. V-B)"
    )
    .unwrap();
    out
}

// ---------------------------------------------------------------------
// Experiment worlds for the ablations
// ---------------------------------------------------------------------

fn small_world(
    caches: usize,
    selector: SelectorKind,
    seed: u64,
) -> (ResolutionPlatform, NameserverNet, CdeInfra) {
    let mut net = NameserverNet::new();
    let infra = CdeInfra::install(&mut net);
    let platform = PlatformBuilder::new(seed)
        .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
        .egress((1..=4).map(|d| Ipv4Addr::new(192, 0, 3, d)).collect())
        .cluster(caches, selector)
        .build();
    (platform, net, infra)
}

/// §V carpet bombing: enumeration error with and without loss-matched
/// redundancy, across the paper's country loss profiles.
pub fn loss(seed: u64) -> String {
    let n = 4usize;
    let trials = 60u64;
    // A deliberately tight probe budget: enough to cover 4 caches when
    // nothing is lost (E[X] ≈ 8.3), marginal once packets start dropping —
    // exactly the regime carpet bombing is for.
    let probes = 14u64;
    let mut out = String::new();
    writeln!(out, "Packet loss (Sec. V) — enumeration of a {n}-cache platform, {probes} probes, {trials} trials").unwrap();
    writeln!(
        out,
        "{:<20} {:>4} {:>18} {:>18}",
        "profile", "K", "exact w/o carpet", "exact w/ carpet"
    )
    .unwrap();
    for profile in CountryProfile::all() {
        let k = carpet_bombing_k(profile.loss_rate().min(0.99), 0.001);
        let mut exact = [0u64; 2];
        for (mode, redundancy) in [(0usize, 1u64), (1, k)] {
            for t in 0..trials {
                let (mut platform, mut net, mut infra) =
                    small_world(n, SelectorKind::Random, seed + t * 7 + mode as u64);
                let session = infra.new_session(&mut net, 0);
                let link = Link::new(
                    LatencyModel::Constant(SimDuration::from_millis(10)),
                    LossModel::with_rate(profile.loss_rate()),
                );
                let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), link, seed + t);
                let mut access = DirectAccess::new(
                    &mut prober,
                    &mut platform,
                    Ipv4Addr::new(192, 0, 2, 1),
                    &mut net,
                );
                let e = enumerate_identical(
                    &mut access,
                    &infra,
                    &session,
                    EnumerateOptions {
                        probes,
                        redundancy,
                        gap: SimDuration::from_millis(10),
                    },
                    SimTime::ZERO,
                );
                if e.observed == n as u64 {
                    exact[mode] += 1;
                }
            }
        }
        writeln!(
            out,
            "{:<20} {k:>4} {:>18} {:>18}",
            profile.to_string(),
            fmt_pct(exact[0] as f64 / trials as f64),
            fmt_pct(exact[1] as f64 / trials as f64)
        )
        .unwrap();
    }
    writeln!(
        out,
        "paper: loss Iran 11%, China ~4%, typical ~1%; carpet bombing compensates"
    )
    .unwrap();
    out
}

/// §IV-B3 timing side channel: accuracy as upstream jitter grows.
pub fn timing(seed: u64) -> String {
    let n = 4usize;
    let mut out = String::new();
    writeln!(
        out,
        "Timing side channel (Sec. IV-B3) — {n}-cache platform, latency-only enumeration"
    )
    .unwrap();
    writeln!(
        out,
        "{:<12} {:>12} {:>12} {:>12}",
        "jitter σ", "calibrated", "slow resp.", "exact?"
    )
    .unwrap();
    for sigma in [0.1f64, 0.3, 0.6, 1.2, 2.4] {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(seed)
            .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster(n, SelectorKind::Random)
            .upstream_link(Link::new(
                LatencyModel::LogNormal {
                    median: SimDuration::from_millis(18),
                    sigma,
                },
                LossModel::none(),
            ))
            .build();
        let client = Link::new(
            LatencyModel::LogNormal {
                median: SimDuration::from_millis(12),
                sigma: 0.15,
            },
            LossModel::none(),
        );
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), client, seed);
        let mut access = DirectAccess::new(
            &mut prober,
            &mut platform,
            Ipv4Addr::new(192, 0, 2, 1),
            &mut net,
        );
        match calibrate(&mut access, &mut infra, 16, SimTime::ZERO) {
            Err(e) => {
                writeln!(
                    out,
                    "{sigma:<12} {:>12} {:>12} {:>12}",
                    format!("no ({e})"),
                    "-",
                    "-"
                )
                .unwrap();
            }
            Ok(cal) => {
                let session = infra.new_session(access.net_mut(), 0);
                let t = enumerate_via_timing(
                    &mut access,
                    &session.honey,
                    cal,
                    query_budget(n as u64, 0.001),
                    SimTime::ZERO + SimDuration::from_secs(5),
                );
                writeln!(
                    out,
                    "{sigma:<12} {:>12} {:>12} {:>12}",
                    "yes",
                    t.slow_responses,
                    if t.slow_responses == n as u64 {
                        "yes"
                    } else {
                        "no"
                    }
                )
                .unwrap();
            }
        }
    }
    writeln!(
        out,
        "(counts caches with no nameserver observation — the indirect-egress setting)"
    )
    .unwrap();
    out
}

/// §IV-A ablation: enumeration behaviour per cache-selection strategy.
pub fn selectors(seed: u64) -> String {
    let n = 6usize;
    let mut out = String::new();
    writeln!(out, "Selector ablation (Sec. IV-A) — {n}-cache platform").unwrap();
    writeln!(
        out,
        "{:<14} {:>18} {:>18} {:>12}",
        "selector", "identical probes ω", "cname farm ω", "truth"
    )
    .unwrap();
    for selector in SelectorKind::all() {
        let (mut platform, mut net, mut infra) = small_world(n, selector, seed);
        let session = infra.new_session(&mut net, 256);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed);
        let mut access = DirectAccess::new(
            &mut prober,
            &mut platform,
            Ipv4Addr::new(192, 0, 2, 1),
            &mut net,
        );
        let ident = enumerate_identical(
            &mut access,
            &infra,
            &session,
            EnumerateOptions::with_probes(query_budget(n as u64, 0.001)),
            SimTime::ZERO,
        );
        // Fresh world so the farm run starts cold.
        let (mut platform, mut net, mut infra) = small_world(n, selector, seed + 1);
        let session = infra.new_session(&mut net, 256);
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed + 1);
        let mut access = DirectAccess::new(
            &mut prober,
            &mut platform,
            Ipv4Addr::new(192, 0, 2, 1),
            &mut net,
        );
        let farm = enumerate_cname_farm(
            &mut access,
            &infra,
            &session,
            EnumerateOptions::with_probes(128),
            SimTime::ZERO,
        );
        writeln!(
            out,
            "{:<14} {:>18} {:>18} {:>12}",
            selector.to_string(),
            ident.observed,
            farm.observed,
            n
        )
        .unwrap();
    }
    writeln!(out, "paper: >80% of networks use unpredictable (random) selection; round robin needs only q = n").unwrap();
    out
}

/// §IV-B2 ablation: local-cache bypass — naive repeats vs CNAME chain vs
/// names hierarchy, through a browser-grade local cache chain.
pub fn bypass(seed: u64) -> String {
    use cde_core::access::{AccessChannel, AdNetAccess};
    use cde_probers::{AdNetProber, WebClient};

    let n = 4usize;
    let mut out = String::new();
    writeln!(
        out,
        "Local-cache bypass ablation (Sec. IV-B2) — {n}-cache platform behind browser caches"
    )
    .unwrap();
    writeln!(
        out,
        "{:<18} {:>10} {:>10} {:>8}",
        "technique", "probes", "ω", "truth"
    )
    .unwrap();

    // Naive: repeat the same hostname through the browser — blocked after
    // the first query, so ω stays 1 regardless of n.
    {
        let (mut platform, mut net, mut infra) = small_world(n, SelectorKind::Random, seed);
        let session = infra.new_session(&mut net, 0);
        let mut prober = AdNetProber::new(seed);
        let mut client = WebClient::new(Ipv4Addr::new(203, 0, 113, 9), Ipv4Addr::new(192, 0, 2, 1));
        let mut access = AdNetAccess {
            prober: &mut prober,
            client: &mut client,
            platform: &mut platform,
            net: &mut net,
        };
        let probes = 64u64;
        for i in 0..probes {
            let _ = access.trigger(&session.honey, SimTime::ZERO + SimDuration::from_secs(i));
        }
        let observed = infra.count_honey_fetches(access.net(), &session.honey);
        writeln!(
            out,
            "{:<18} {probes:>10} {observed:>10} {n:>8}",
            "naive repeat"
        )
        .unwrap();
    }

    // CNAME farm.
    {
        let (mut platform, mut net, mut infra) = small_world(n, SelectorKind::Random, seed + 1);
        let session = infra.new_session(&mut net, 64);
        let mut prober = AdNetProber::new(seed + 1);
        let mut client = WebClient::new(Ipv4Addr::new(203, 0, 113, 9), Ipv4Addr::new(192, 0, 2, 1));
        let mut access = AdNetAccess {
            prober: &mut prober,
            client: &mut client,
            platform: &mut platform,
            net: &mut net,
        };
        let e = enumerate_cname_farm(
            &mut access,
            &infra,
            &session,
            EnumerateOptions::with_probes(query_budget(n as u64, 0.001)),
            SimTime::ZERO,
        );
        writeln!(
            out,
            "{:<18} {:>10} {:>10} {n:>8}",
            "cname chain", e.probes, e.observed
        )
        .unwrap();
    }

    // Names hierarchy.
    {
        let (mut platform, mut net, mut infra) = small_world(n, SelectorKind::Random, seed + 2);
        let session = infra.new_session(&mut net, 64);
        let mut prober = AdNetProber::new(seed + 2);
        let mut client = WebClient::new(Ipv4Addr::new(203, 0, 113, 9), Ipv4Addr::new(192, 0, 2, 1));
        let mut access = AdNetAccess {
            prober: &mut prober,
            client: &mut client,
            platform: &mut platform,
            net: &mut net,
        };
        let e = enumerate_names_hierarchy(
            &mut access,
            &infra,
            &session,
            EnumerateOptions::with_probes(query_budget(n as u64, 0.001)),
            SimTime::ZERO,
        );
        writeln!(
            out,
            "{:<18} {:>10} {:>10} {n:>8}",
            "names hierarchy", e.probes, e.observed
        )
        .unwrap();
    }
    writeln!(
        out,
        "paper: both bypasses defeat browser/OS caches; naive repeats cannot"
    )
    .unwrap();
    out
}

/// Mapping-strategy ablation (DESIGN.md §5): fresh honey per test vs the
/// paper's shared honey per pivot.
pub fn mapping_ablation(seed: u64) -> String {
    use cde_core::{map_ingress_to_clusters, mapping_matches_ground_truth};

    let mut out = String::new();
    writeln!(
        out,
        "Mapping ablation (Sec. IV-B1b) — 6 ingress IPs over 3 single-cache clusters"
    )
    .unwrap();
    writeln!(
        out,
        "{:<26} {:>10} {:>14}",
        "strategy", "correct", "queries"
    )
    .unwrap();
    for strategy in [
        MappingStrategy::FreshHoneyPerTest,
        MappingStrategy::SharedHoneyPerPivot,
    ] {
        let trials = 10u64;
        let mut correct = 0u64;
        let mut queries = 0u64;
        for t in 0..trials {
            let mut net = NameserverNet::new();
            let mut infra = CdeInfra::install(&mut net);
            let ingress: Vec<Ipv4Addr> = (1..=6).map(|d| Ipv4Addr::new(192, 0, 2, d)).collect();
            let mut platform = PlatformBuilder::new(seed + t)
                .ingress(ingress.clone())
                .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
                .cluster(1, SelectorKind::Random)
                .cluster(1, SelectorKind::Random)
                .cluster(1, SelectorKind::Random)
                .ingress_assignment(vec![0, 1, 2, 0, 1, 2])
                .build();
            let mut prober =
                DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed + t);
            let mapping = map_ingress_to_clusters(
                &mut prober,
                &mut platform,
                &mut net,
                &mut infra,
                &ingress,
                MappingOptions {
                    strategy,
                    ..MappingOptions::default()
                },
                SimTime::ZERO,
            );
            if mapping_matches_ground_truth(&mapping, &platform) {
                correct += 1;
            }
            queries += mapping.queries_spent;
        }
        writeln!(
            out,
            "{:<26} {:>10} {:>14}",
            strategy.to_string(),
            fmt_pct(correct as f64 / trials as f64),
            queries / trials
        )
        .unwrap();
    }
    writeln!(
        out,
        "(shared honey pollutes candidate clusters; fresh honey spends more queries)"
    )
    .unwrap();
    out
}

/// Two-phase init/validate demonstration (§V-B): coverage and validate
/// hits across N/n ratios.
pub fn two_phase(seed: u64) -> String {
    let n = 8usize;
    let mut out = String::new();
    writeln!(out, "Init/validate (Sec. V-B) — {n}-cache platform").unwrap();
    writeln!(
        out,
        "{:>6} {:>10} {:>12} {:>14} {:>16} {:>16}",
        "N", "observed", "validated+", "validate hits", "N(1-e^-N/n)", "paper N(..)^2"
    )
    .unwrap();
    for ratio in [1u64, 2, 4] {
        let seeds = ratio * n as u64;
        let mut rng = DetRng::seed(seed).fork_indexed("twophase", ratio);
        let trials = 20;
        let mut tot_obs = 0u64;
        let mut tot_extra = 0u64;
        let mut tot_hits = 0u64;
        for t in 0..trials {
            let (mut platform, mut net, mut infra) = small_world(
                n,
                SelectorKind::Random,
                seed + 100 * ratio + t + rng.gen::<u8>() as u64,
            );
            let session = infra.new_session(&mut net, 0);
            let mut prober =
                DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed + t);
            let mut access = DirectAccess::new(
                &mut prober,
                &mut platform,
                Ipv4Addr::new(192, 0, 2, 1),
                &mut net,
            );
            let r = enumerate_two_phase(&mut access, &infra, &session, seeds, SimTime::ZERO);
            tot_obs += r.observed_init;
            tot_extra += r.observed_validate;
            tot_hits += r.validate_hits;
        }
        let coverage = 1.0 - (-(seeds as f64) / n as f64).exp();
        writeln!(
            out,
            "{seeds:>6} {:>10.2} {:>12.2} {:>14.2} {:>16.2} {:>16.2}",
            tot_obs as f64 / trials as f64,
            tot_extra as f64 / trials as f64,
            tot_hits as f64 / trials as f64,
            seeds as f64 * coverage,
            expected_success_rate(n as u64, seeds)
        )
        .unwrap();
    }
    writeln!(
        out,
        "paper: with N = 2n only a small fraction of caches is missed"
    )
    .unwrap();
    writeln!(
        out,
        "note: measured validate hits track N(1-e^-N/n); the paper's squared form counts\n\
         pairs where both the seed and its check land on covered caches (see EXPERIMENTS.md)"
    )
    .unwrap();
    out
}

/// §II-C ablation: TTL-consistency audit — separating multiple caches
/// from genuine TTL inconsistencies.
pub fn consistency(seed: u64) -> String {
    use cde_cache::CacheConfig;
    use cde_core::{audit_ttl_consistency, ConsistencyOptions};
    use cde_dns::Ttl;
    use cde_platform::ClusterConfig;

    let mut out = String::new();
    writeln!(
        out,
        "TTL consistency audit (Sec. II-C) — multiple caches vs TTL violations"
    )
    .unwrap();
    writeln!(
        out,
        "{:<34} {:>8} {:>12} {:>14} {:>14}",
        "platform", "caches", "refetch<TTL", "fetch>TTL", "verdict"
    )
    .unwrap();
    let cases: [(&str, usize, CacheConfig); 4] = [
        ("1 cache, honest TTLs", 1, CacheConfig::default()),
        ("4 caches, honest TTLs", 4, CacheConfig::default()),
        (
            "2 caches, max_ttl = 60s cap",
            2,
            CacheConfig {
                max_ttl: Ttl::from_secs(60),
                ..CacheConfig::default()
            },
        ),
        (
            "2 caches, min_ttl = 1d floor",
            2,
            CacheConfig {
                min_ttl: Ttl::from_secs(86_400),
                ..CacheConfig::default()
            },
        ),
    ];
    for (label, caches, cache_config) in cases {
        let mut net = NameserverNet::new();
        let mut infra = CdeInfra::install(&mut net);
        let mut platform = PlatformBuilder::new(seed)
            .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
            .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
            .cluster_config(ClusterConfig {
                cache_count: caches,
                cache_config,
                selector: SelectorKind::Random,
            })
            .build();
        let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed);
        let mut access = DirectAccess::new(
            &mut prober,
            &mut platform,
            Ipv4Addr::new(192, 0, 2, 1),
            &mut net,
        );
        let report = audit_ttl_consistency(
            &mut access,
            &mut infra,
            ConsistencyOptions::default(),
            SimTime::ZERO,
        );
        writeln!(
            out,
            "{label:<34} {:>8} {:>12} {:>14} {:>14}",
            report.caches,
            report.refetches_within_ttl,
            report.fetches_after_expiry,
            report.verdict.to_string()
        )
        .unwrap();
    }
    writeln!(
        out,
        "paper: multiple upstream queries within a TTL \"can be mistakenly taken as an\n\
         indication that the DNS platform does not respect the TTL\" — the audit separates the cases"
    )
    .unwrap();
    out
}

/// §II-A: poisoning resilience vs cache count — closed form and
/// simulation against the real load balancers.
pub fn poisoning(seed: u64) -> String {
    use cde_core::resilience::{
        expected_attack_attempts, poisoning_success_probability, simulate_attack_campaign,
    };

    let mut out = String::new();
    writeln!(
        out,
        "Poisoning resilience (Sec. II-A) — 2-record injection chain (NS then A)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>4} {:>16} {:>16} {:>18}",
        "n", "P(success) calc", "P(success) sim", "expected attempts"
    )
    .unwrap();
    for n in [1usize, 2, 4, 8, 16] {
        let calc = poisoning_success_probability(n as u64, 2);
        let sim = simulate_attack_campaign(n, SelectorKind::Random, 2, 40_000, seed);
        writeln!(
            out,
            "{n:>4} {calc:>16.4} {:>16.4} {:>18.0}",
            sim.success_rate(),
            expected_attack_attempts(n as u64, 2)
        )
        .unwrap();
    }
    writeln!(
        out,
        "paper: \"multiple caches, along with unpredictable cache selection strategy, can\n\
         significantly raise the bar for DNS cache poisoning\""
    )
    .unwrap();
    out
}

/// §VI ablation: forwarders — what enumeration sees through a pure relay
/// vs a caching forwarder.
pub fn forwarders(seed: u64) -> String {
    use cde_dns::{Name, RecordType};
    use cde_platform::{testnet, Forwarder};

    let n = 3usize;
    let mut out = String::new();
    writeln!(
        out,
        "Forwarders (Sec. VI) — {n}-cache upstream behind a forwarder"
    )
    .unwrap();
    writeln!(
        out,
        "{:<20} {:>22} {:>18}",
        "forwarder", "identical queries ω", "cname farm ω"
    )
    .unwrap();
    for caching in [false, true] {
        // Identical-query run.
        let mut w = testnet::build_simple_world(n, seed);
        let ing = w.platform.ingress_ips()[0];
        let mut fwd = if caching {
            Forwarder::caching(Ipv4Addr::new(198, 18, 7, 53), ing, 10_000, seed)
        } else {
            Forwarder::pure_relay(Ipv4Addr::new(198, 18, 7, 53), ing, seed)
        };
        let honey: Name = "name.cache.example".parse().expect("static");
        for _ in 0..64 {
            let _ = fwd.handle_query(
                Ipv4Addr::new(203, 0, 113, 2),
                &honey,
                RecordType::A,
                SimTime::ZERO,
                &mut w.platform,
                &mut w.net,
            );
        }
        let ident = w
            .net
            .server(testnet::CDE_ZONE_SERVER)
            .expect("zone server")
            .count_queries_for(&honey);

        // CNAME-farm run (fresh world).
        let mut w = testnet::build_simple_world(n, seed + 1);
        let ing = w.platform.ingress_ips()[0];
        let mut fwd = if caching {
            Forwarder::caching(Ipv4Addr::new(198, 18, 7, 53), ing, 10_000, seed + 1)
        } else {
            Forwarder::pure_relay(Ipv4Addr::new(198, 18, 7, 53), ing, seed + 1)
        };
        for i in 1..=64 {
            let alias: Name = format!("x-{i}.cache.example").parse().expect("static");
            let _ = fwd.handle_query(
                Ipv4Addr::new(203, 0, 113, 2),
                &alias,
                RecordType::A,
                SimTime::ZERO,
                &mut w.platform,
                &mut w.net,
            );
        }
        let farm = w
            .net
            .server(testnet::CDE_ZONE_SERVER)
            .expect("zone server")
            .count_queries_for(&honey);
        writeln!(
            out,
            "{:<20} {ident:>22} {farm:>18}",
            if caching { "caching" } else { "pure relay" }
        )
        .unwrap();
    }
    writeln!(
        out,
        "(truth: {n}; a caching forwarder masks the upstream for identical queries, the\n\
         CNAME farm still counts it — paper Sec. VI: clients \"only see the forwarder\")"
    )
    .unwrap();
    out
}

/// §V-B ablation: enumeration accuracy as background client traffic grows.
pub fn background(seed: u64) -> String {
    use cde_platform::BackgroundTraffic;

    let n = 4usize;
    let trials = 25u64;
    let mut out = String::new();
    writeln!(
        out,
        "Background traffic (Sec. V-B) — {n}-cache platform, round-robin selector"
    )
    .unwrap();
    writeln!(
        out,
        "{:>14} {:>22} {:>18} {:>14}",
        "bg per probe", "rr, fixed-rate bg", "rr, bursty bg", "random"
    )
    .unwrap();
    for bg_per_probe in [0u64, 1, 4, 16] {
        let mut exact = [0u64; 3];
        for (mode, selector, bursty) in [
            (0usize, SelectorKind::RoundRobin, false),
            (1, SelectorKind::RoundRobin, true),
            (2, SelectorKind::Random, true),
        ] {
            for t in 0..trials {
                let mut net = NameserverNet::new();
                let mut infra = CdeInfra::install(&mut net);
                let mut platform = PlatformBuilder::new(seed + t)
                    .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
                    .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
                    .cluster(n, selector)
                    .build();
                let mut traffic = BackgroundTraffic::new(50, 1.0, seed + t);
                let session = infra.new_session(&mut net, 0);
                let mut prober =
                    DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), seed + t);
                // Interleave probes and background bursts by hand. Round
                // robin would need exactly n probes without traffic; give
                // both selectors the coupon budget.
                let q = query_budget(n as u64, 0.001);
                let mut burst_rng = DetRng::seed(seed + t).fork("bursts");
                for _ in 0..q {
                    // Real interfering traffic is bursty; a fixed-rate
                    // burst would alias with the round-robin stride
                    // (e.g. exactly 1 bg query per probe on 4 caches
                    // pins probes to even cache indices forever).
                    let burst = if bg_per_probe == 0 {
                        0
                    } else if bursty {
                        burst_rng.gen_range(0..=2 * bg_per_probe)
                    } else {
                        bg_per_probe
                    };
                    traffic.inject(&mut platform, &mut net, burst, SimTime::ZERO);
                    let _ = prober.probe(
                        &mut platform,
                        Ipv4Addr::new(192, 0, 2, 1),
                        &session.honey,
                        cde_dns::RecordType::A,
                        SimTime::ZERO,
                        &mut net,
                    );
                }
                if infra.count_honey_fetches(&net, &session.honey) == n {
                    exact[mode] += 1;
                }
            }
        }
        writeln!(
            out,
            "{bg_per_probe:>14} {:>22} {:>18} {:>14}",
            fmt_pct(exact[0] as f64 / trials as f64),
            fmt_pct(exact[1] as f64 / trials as f64),
            fmt_pct(exact[2] as f64 / trials as f64)
        )
        .unwrap();
    }
    writeln!(
        out,
        "paper: enumeration complexity \"depends on the cache selection algorithm, and on\n\
         the traffic from other clients\" — random selection is insensitive to interference;\n\
         fixed-rate interference can alias with the round-robin stride and pin probes to a\n\
         subset of caches forever; bursty traffic randomises the stride instead; random\n\
         selection is insensitive either way"
    )
    .unwrap();
    out
}

/// §II-C: EDNS adoption measurement — the fraction of platforms whose
/// upstream queries carry an OPT record, observed entirely at the CDE
/// nameservers.
pub fn edns(scale: Scale, seed: u64) -> String {
    use cde_core::access::DirectAccess as DA;
    use cde_core::discover_egress;

    let mut out = String::new();
    writeln!(
        out,
        "EDNS adoption (Sec. II-C) — observed at the CDE nameservers"
    )
    .unwrap();
    writeln!(
        out,
        "{:<16} {:>10} {:>14} {:>14}",
        "population", "networks", "measured", "ground truth"
    )
    .unwrap();
    for kind in PopulationKind::all() {
        let size = (scale.size(kind) / 5).max(20); // a sample is plenty for adoption
        let specs = generate_population(kind, size, seed);
        let mut speaking = 0usize;
        let mut truth = 0usize;
        for spec in &specs {
            if spec.edns {
                truth += 1;
            }
            let mut net = NameserverNet::new();
            let mut infra = CdeInfra::install(&mut net);
            let mut platform = spec.build();
            let ingress = spec.ingress_ips()[0];
            let mut prober =
                DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), spec.id);
            let mut access = DA::new(&mut prober, &mut platform, ingress, &mut net);
            // A handful of forced misses produce plenty of upstream
            // queries to classify the platform.
            let _ = discover_egress(&mut access, &mut infra, 4, SimTime::ZERO);
            let (with, total) = infra.observed_edns_adoption(access.net());
            if total > 0 && with == total {
                speaking += 1;
            }
        }
        writeln!(
            out,
            "{:<16} {:>10} {:>14} {:>14}",
            kind.to_string(),
            size,
            fmt_pct(speaking as f64 / size as f64),
            fmt_pct(truth as f64 / size as f64)
        )
        .unwrap();
    }
    writeln!(
        out,
        "(the paper lists EDNS-adoption studies among the §II-C tool applications; ~90%\n\
         of deployments spoke EDNS in that era)"
    )
    .unwrap();
    out
}

// ---------------------------------------------------------------------
// CSV export (for external plotting of the figures)
// ---------------------------------------------------------------------

/// CSV rows for the Fig. 3 / Fig. 4 CDF curves:
/// `population,metric,value,cumulative_fraction`.
pub fn csv_cdfs(populations: &SurveyedPopulations) -> String {
    let mut out = String::from("population,metric,value,cumulative_fraction\n");
    for (label, pop) in populations.labelled() {
        for (metric, samples) in [
            (
                "egress_ips",
                pop.iter().map(|m| m.measured_egress).collect::<Vec<_>>(),
            ),
            (
                "caches",
                pop.iter().map(|m| m.measured_caches).collect::<Vec<_>>(),
            ),
        ] {
            let cdf = Cdf::from_samples(samples);
            for (value, fraction) in cdf.steps() {
                writeln!(out, "{label},{metric},{value},{fraction:.6}").unwrap();
            }
        }
    }
    out
}

/// CSV rows for the Fig. 5/7/8 bubble scatters:
/// `population,ingress_ips,caches,count`.
pub fn csv_scatters(populations: &SurveyedPopulations) -> String {
    let mut out = String::from("population,ingress_ips,caches,count\n");
    for (label, pop) in populations.labelled() {
        let sc = scatter_of(pop);
        for ((x, y), count) in sc.cells() {
            writeln!(out, "{label},{x},{y},{count}").unwrap();
        }
    }
    out
}

/// CSV rows for the per-network raw results (ground truth next to the
/// measurements): one row per surveyed network.
pub fn csv_networks(populations: &SurveyedPopulations) -> String {
    let mut out = String::from(
        "population,id,operator,country,ingress_ips,true_caches,measured_caches,\
         true_egress,measured_egress,selector,clusters_true,clusters_measured\n",
    );
    for (label, pop) in populations.labelled() {
        for m in pop {
            writeln!(
                out,
                "{label},{},{:?},{:?},{},{},{},{},{},{},{},{}",
                m.spec.id,
                m.spec.operator,
                m.spec.country,
                m.spec.ingress_count,
                m.spec.total_caches(),
                m.measured_caches,
                m.spec.egress_count,
                m.measured_egress,
                m.spec.selector,
                m.spec.cluster_caches.len(),
                m.measured_clusters,
            )
            .unwrap();
        }
    }
    out
}

/// §II-C: software fingerprinting — classify the cache software of a
/// sample of networks from each population, validated against ground
/// truth.
pub fn fingerprint(scale: Scale, seed: u64) -> String {
    use cde_core::access::DirectAccess as DA;
    use cde_core::{fingerprint_software, FingerprintOptions};

    let mut out = String::new();
    writeln!(
        out,
        "Software fingerprinting (Sec. II-C) — caps-based cache classification"
    )
    .unwrap();
    writeln!(
        out,
        "{:<16} {:>10} {:>12} {:>14}",
        "population", "sampled", "classified", "correct"
    )
    .unwrap();
    for kind in PopulationKind::all() {
        let size = (scale.size(kind) / 20).clamp(10, 40); // fingerprinting is probe-heavy
        let specs = generate_population(kind, size, seed);
        let mut classified = 0usize;
        let mut correct = 0usize;
        for spec in &specs {
            let mut net = NameserverNet::new();
            let mut infra = CdeInfra::install(&mut net);
            let mut platform = spec.build();
            let ingress = spec.ingress_ips()[0];
            let mut prober =
                DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), spec.id);
            let mut access = DA::new(&mut prober, &mut platform, ingress, &mut net);
            let fp = fingerprint_software(
                &mut access,
                &mut infra,
                &FingerprintOptions::default(),
                SimTime::ZERO,
            );
            if let Some(profile) = fp.classified {
                classified += 1;
                if profile == spec.software {
                    correct += 1;
                }
            }
        }
        writeln!(
            out,
            "{:<16} {:>10} {:>12} {:>14}",
            kind.to_string(),
            size,
            fmt_pct(classified as f64 / size as f64),
            fmt_pct(correct as f64 / size as f64)
        )
        .unwrap();
    }
    writeln!(
        out,
        "(classification probes the caches' own TTL caps; prior query-pattern methods\n\
         fingerprint the egress resolver, not the caches — paper Sec. VI)"
    )
    .unwrap();
    out
}

/// §II-C capacity planning: cache hit rate under Zipf-popular client
/// traffic as a function of cache capacity and eviction policy. The
/// paper's "size of DNS resolution platforms" use case — measuring
/// whether a platform's storage keeps up with demand.
pub fn caching(seed: u64) -> String {
    use cde_cache::{CacheConfig, DnsCache, EvictionPolicy};
    use cde_dns::{Name, RData, Record, Ttl};

    let catalogue = 4_000usize;
    let queries = 40_000u64;
    let mut out = String::new();
    writeln!(
        out,
        "Cache workload (Sec. II-C sizing) — Zipf(1.0) traffic over {catalogue} domains, {queries} queries"
    )
    .unwrap();
    writeln!(
        out,
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "capacity", "lru", "fifo", "expiry", "random"
    )
    .unwrap();
    // Pre-draw the query stream once so every configuration sees the
    // identical workload.
    let mut rng = DetRng::seed(seed).fork("caching");
    let weights: Vec<f64> = (1..=catalogue).map(|r| 1.0 / r as f64).collect();
    let stream: Vec<usize> = (0..queries)
        .map(|_| cde_netsim::sample_weighted(&mut rng, &weights))
        .collect();
    let names: Vec<Name> = (0..catalogue)
        .map(|i| format!("www.site-{i}.example").parse().expect("static"))
        .collect();

    for capacity in [64usize, 256, 1024, 4096] {
        let mut row = format!("{capacity:>10}");
        for policy in EvictionPolicy::all() {
            let mut cache = DnsCache::new(
                seed,
                CacheConfig {
                    capacity,
                    policy,
                    ..CacheConfig::default()
                },
            );
            for (k, &idx) in stream.iter().enumerate() {
                let now = SimTime::ZERO + SimDuration::from_millis(k as u64 * 50);
                let name = &names[idx];
                if !cache.lookup(name, cde_dns::RecordType::A, now).is_hit() {
                    let rr = Record::new(
                        name.clone(),
                        Ttl::from_secs(3_600),
                        RData::A(Ipv4Addr::new(198, 51, 100, 1)),
                    );
                    cache.insert(name.clone(), cde_dns::RecordType::A, vec![rr], now);
                }
            }
            row.push_str(&format!(" {:>12}", fmt_pct(cache.stats().hit_rate())));
        }
        writeln!(out, "{row}").unwrap();
    }
    writeln!(
        out,
        "(hit rate saturates once the cache holds the popular head of the Zipf\n\
         distribution; policy differences matter most under pressure)"
    )
    .unwrap();
    out
}
