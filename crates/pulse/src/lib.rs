//! cde-pulse: the engine's live health judgement.
//!
//! Raw counters (cde-engine) and latency digests (cde-insight) describe
//! what the engine *did*; nothing in the stack judged whether it was
//! *healthy* while doing it. At enumeration rates a human cannot eyeball
//! counter diffs, and an unhealthy vantage — shard starvation, ring
//! backpressure, silent wire loss — biases the coupon-collector
//! estimates without any probe "failing". This crate closes that gap
//! with four pieces, all dependency-light (cde-telemetry only) so every
//! layer above can use them:
//!
//! * [`SampleRing`] — a lock-free ring of timestamped cumulative counter
//!   snapshots ([`CounterSample`]), pushed by any sampler thread and read
//!   without locks; window deltas turn the cumulative counters into
//!   rates ([`WindowRates`]) over 10s/1m/5m horizons.
//! * [`SloSpec`] + [`evaluate`] — a declarative SLO (success target plus
//!   fast/slow multi-window burn-rate thresholds, the SRE alerting
//!   recipe) producing a typed [`HealthVerdict`]: Ok, Warn or Critical,
//!   each with machine-readable [`Cause`]s.
//! * [`ShardStat`] + [`ImbalanceReport`] — per-shard duty-cycle and
//!   queue-depth skew, catching the "one shard is drowning while the
//!   rest idle" failure that merged totals hide.
//! * [`ExemplarReservoir`] — a bounded top-K reservoir of the slowest
//!   and most-retried probe lifecycles ([`ProbeExemplar`]) for
//!   postmortems: *which* probes were slow, on which shard, after how
//!   many sends.
//!
//! [`Pulse`] assembles them behind one handle: a sampler feeds
//! [`Pulse::observe`]/[`Pulse::observe_shards`], readers call
//! [`Pulse::health`] (or scrape the `cde_pulse_*` series via the
//! [`Collector`] impl, or fetch the JSON from `GET /v1/health` in
//! cde-serve). Evaluation is anchored at the *latest sample's*
//! timestamp, never the wall clock, so replaying a recorded trace
//! through the same engine gives the same verdicts (`cde-analyze
//! --health`).

mod exemplar;
mod shards;
mod slo;
mod window;

pub use exemplar::{ExemplarReservoir, ProbeExemplar};
pub use shards::{ImbalanceReport, ShardStat};
pub use slo::{evaluate, Cause, HealthStatus, HealthVerdict, SloSpec};
pub use window::{window_label, CounterSample, SampleRing, WindowRates};

use cde_telemetry::{json, Collector, Metric};
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Default sample-ring capacity: at the daemon's ~100 ms sampling
/// cadence this holds a bit over five minutes of history — exactly the
/// slow SLO window.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// The assembled health engine: ring + spec + shard stats + exemplars.
///
/// One sampler thread (the daemon loop, a test, the offline replayer)
/// pushes cumulative [`CounterSample`]s and the latest [`ShardStat`]s;
/// any number of readers ask for the verdict. All methods take `&self`.
#[derive(Debug)]
pub struct Pulse {
    spec: SloSpec,
    ring: SampleRing,
    shards: Mutex<Vec<ShardStat>>,
    exemplars: Option<Arc<ExemplarReservoir>>,
    /// Last status level seen by [`status_transition`](Pulse::status_transition),
    /// for edge detection (flight-dump triggers fire on the edge into
    /// Critical, not on every Critical verdict).
    last_level: AtomicU8,
}

impl Pulse {
    /// A pulse evaluating `spec`, with the default ring capacity and no
    /// exemplar reservoir.
    pub fn new(spec: SloSpec) -> Pulse {
        Pulse {
            spec,
            ring: SampleRing::with_capacity(DEFAULT_RING_CAPACITY),
            shards: Mutex::new(Vec::new()),
            exemplars: None,
            last_level: AtomicU8::new(HealthStatus::Ok.as_level()),
        }
    }

    /// Attaches the reactor's exemplar reservoir so health reports carry
    /// the slowest/most-retried probe lifecycles.
    pub fn with_exemplars(mut self, reservoir: Arc<ExemplarReservoir>) -> Pulse {
        self.exemplars = Some(reservoir);
        self
    }

    /// The spec verdicts are evaluated against.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Pushes one cumulative counter sample (sampler side).
    pub fn observe(&self, sample: CounterSample) {
        self.ring.push(sample);
    }

    /// Replaces the per-shard runtime stats (sampler side).
    pub fn observe_shards(&self, stats: Vec<ShardStat>) {
        *self.shards.lock() = stats;
    }

    /// The current shard-imbalance view, `None` below two shards.
    pub fn imbalance(&self) -> Option<ImbalanceReport> {
        ImbalanceReport::from_stats(&self.shards.lock())
    }

    /// Evaluates the SLO over the ring's history: the verdict, its
    /// causes, and the window rates it was derived from.
    pub fn health(&self) -> HealthVerdict {
        evaluate(&self.ring.samples(), &self.spec, self.imbalance().as_ref())
    }

    /// Evaluates health and reports the edge: `Some((from, to))` the
    /// first call after the status changed, `None` while it holds. The
    /// daemon's run loop uses this to trigger a flight dump exactly
    /// once per transition *into* Critical rather than once per
    /// Critical verdict.
    pub fn status_transition(&self) -> Option<(HealthStatus, HealthStatus)> {
        let to = self.health().status;
        let from = HealthStatus::from_level(self.last_level.swap(to.as_level(), Ordering::Relaxed));
        (from != to).then_some((from, to))
    }

    /// The verdict as the `/v1/health` JSON body: status, causes,
    /// per-window rates, shard summary and exemplars.
    pub fn health_json(&self) -> String {
        let verdict = self.health();
        let mut out = String::with_capacity(1024);
        out.push_str("{\"status\": ");
        json::write_str(&mut out, verdict.status.as_str());
        out.push_str(", \"causes\": [");
        for (i, cause) in verdict.causes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"kind\": ");
            json::write_str(&mut out, cause.kind());
            out.push_str(", \"detail\": ");
            json::write_str(&mut out, &cause.detail());
            out.push('}');
        }
        out.push_str("], \"windows\": [");
        for (i, w) in verdict.windows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"window\": \"{}\", \"span_ms\": {}, \"attempts\": {}, ",
                window_label(w.window_ms),
                w.span_ms,
                w.attempts
            );
            out.push_str("\"probes_per_sec\": ");
            json::write_f64(&mut out, w.probes_per_sec);
            out.push_str(", \"timeout_ratio\": ");
            json::write_f64(&mut out, w.timeout_ratio);
            out.push_str(", \"stray_ratio\": ");
            json::write_f64(&mut out, w.stray_ratio);
            out.push_str(", \"shed_ratio\": ");
            json::write_f64(&mut out, w.shed_ratio);
            out.push('}');
        }
        out.push_str("], ");
        match self.imbalance() {
            Some(report) => {
                let _ = write!(out, "\"shards\": {}, ", report.shards);
                out.push_str("\"duty_skew\": ");
                json::write_f64(&mut out, report.duty_skew);
                out.push_str(", \"queue_skew\": ");
                json::write_f64(&mut out, report.queue_skew);
                out.push_str(", ");
            }
            None => {
                let _ = write!(out, "\"shards\": {}, ", self.shards.lock().len().max(1));
            }
        }
        out.push_str("\"exemplars\": ");
        match &self.exemplars {
            Some(res) => exemplar_json(&mut out, res),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// The `/v1/health/shards` JSON body: one object per shard plus the
    /// imbalance summary.
    pub fn shards_json(&self) -> String {
        let stats = self.shards.lock().clone();
        let mut out = String::with_capacity(512);
        out.push_str("{\"shards\": [");
        for (i, s) in stats.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"shard\": {}, \"busy_us\": {}, \"parked_us\": {}, \"duty_cycle\": ",
                s.shard, s.busy_us, s.parked_us
            );
            json::write_f64(&mut out, s.duty_cycle());
            let _ = write!(
                out,
                ", \"ring_depth\": {}, \"ring_depth_peak\": {}, \"in_flight\": {}, \
                 \"parks\": {}, \"unparks\": {}}}",
                s.ring_depth, s.ring_depth_peak, s.in_flight, s.parks, s.unparks
            );
        }
        out.push_str("], \"imbalance\": ");
        match ImbalanceReport::from_stats(&stats) {
            Some(report) => {
                out.push_str("{\"duty_skew\": ");
                json::write_f64(&mut out, report.duty_skew);
                out.push_str(", \"queue_skew\": ");
                json::write_f64(&mut out, report.queue_skew);
                out.push_str(", \"skewed\": ");
                out.push_str(if report.is_skewed(self.spec.imbalance_warn) {
                    "true"
                } else {
                    "false"
                });
                out.push('}');
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

fn exemplar_json(out: &mut String, res: &ExemplarReservoir) {
    let write_list = |out: &mut String, list: &[ProbeExemplar]| {
        out.push('[');
        for (i, e) in list.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"token\": {}, \"shard\": {}, \"ingress\": \"{}\", \"attempts\": {}, \
                 \"rtt_us\": {}, \"queue_us\": {}, \"lifetime_us\": {}, \"answered\": {}}}",
                e.token,
                e.shard,
                e.ingress,
                e.attempts,
                e.rtt_us,
                e.queue_us,
                e.lifetime_us,
                e.answered
            );
        }
        out.push(']');
    };
    let _ = write!(out, "{{\"observed\": {}, \"slowest\": ", res.observed());
    write_list(out, &res.slowest());
    out.push_str(", \"most_retried\": ");
    write_list(out, &res.most_retried());
    out.push('}');
}

impl Collector for Pulse {
    fn collect(&self, out: &mut Vec<Metric>) {
        let verdict = self.health();
        out.push(Metric::gauge(
            "cde_pulse_health_status",
            "Health verdict: 0 ok, 1 warn, 2 critical",
            verdict.status.as_level() as f64,
        ));
        for w in &verdict.windows {
            let label = window_label(w.window_ms);
            out.push(
                Metric::gauge(
                    "cde_pulse_probe_rate",
                    "Probe attempts per second over the rolling window",
                    w.probes_per_sec,
                )
                .with_label("window", label.clone()),
            );
            out.push(
                Metric::gauge(
                    "cde_pulse_timeout_ratio",
                    "Unanswered attempts over attempts in the rolling window",
                    w.timeout_ratio,
                )
                .with_label("window", label.clone()),
            );
            out.push(
                Metric::gauge(
                    "cde_pulse_stray_ratio",
                    "Stray replies over all replies in the rolling window",
                    w.stray_ratio,
                )
                .with_label("window", label.clone()),
            );
            out.push(
                Metric::gauge(
                    "cde_pulse_shed_ratio",
                    "Telemetry events shed over events produced in the rolling window",
                    w.shed_ratio,
                )
                .with_label("window", label),
            );
        }
        let (duty_skew, queue_skew) = match self.imbalance() {
            Some(r) => (r.duty_skew, r.queue_skew),
            None => (1.0, 1.0),
        };
        out.push(Metric::gauge(
            "cde_pulse_shard_duty_skew",
            "Max over mean per-shard duty cycle (1.0 = perfectly even)",
            duty_skew,
        ));
        out.push(Metric::gauge(
            "cde_pulse_shard_queue_skew",
            "Max over mean per-shard queued+in-flight depth (1.0 = even)",
            queue_skew,
        ));
        if let Some(res) = &self.exemplars {
            out.push(Metric::counter(
                "cde_pulse_exemplars_observed_total",
                "Probe lifecycles offered to the exemplar reservoir",
                res.observed(),
            ));
            out.push(Metric::gauge(
                "cde_pulse_exemplar_worst_lifetime_us",
                "Longest probe lifetime currently held by the reservoir",
                res.worst_lifetime_us() as f64,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_ms: u64, sent: u64, received: u64) -> CounterSample {
        CounterSample {
            at_ms,
            sent,
            received,
            ..CounterSample::default()
        }
    }

    #[test]
    fn lossy_stream_degrades_and_clean_stream_stays_ok() {
        let lossy = Pulse::new(SloSpec::default());
        let clean = Pulse::new(SloSpec::default());
        for i in 0..100u64 {
            // 30% of attempts unanswered vs none.
            lossy.observe(sample(i * 100, i * 100, i * 70));
            clean.observe(sample(i * 100, i * 100, i * 100));
        }
        assert_eq!(clean.health().status, HealthStatus::Ok);
        let verdict = lossy.health();
        assert_eq!(verdict.status, HealthStatus::Critical);
        assert!(verdict
            .causes
            .iter()
            .any(|c| c.detail().contains("loss") || c.kind().contains("loss")));
    }

    #[test]
    fn status_transition_fires_once_per_edge() {
        let pulse = Pulse::new(SloSpec::default());
        // Empty ring: Ok, and no edge from the initial Ok.
        assert_eq!(pulse.status_transition(), None);
        for i in 0..100u64 {
            // 30% of attempts unanswered: Critical loss burn.
            pulse.observe(sample(i * 100, i * 100, i * 70));
        }
        assert_eq!(
            pulse.status_transition(),
            Some((HealthStatus::Ok, HealthStatus::Critical))
        );
        assert_eq!(
            pulse.status_transition(),
            None,
            "still Critical — the edge already fired"
        );
    }

    #[test]
    fn health_json_is_flat_and_carries_status() {
        let pulse = Pulse::new(SloSpec::default());
        for i in 0..20u64 {
            pulse.observe(sample(i * 100, i * 50, i * 50));
        }
        pulse.observe_shards(vec![
            ShardStat {
                shard: 0,
                busy_us: 900,
                parked_us: 100,
                ring_depth: 4,
                ring_depth_peak: 9,
                in_flight: 12,
                parks: 3,
                unparks: 2,
            },
            ShardStat {
                shard: 1,
                busy_us: 100,
                parked_us: 900,
                ring_depth: 0,
                ring_depth_peak: 1,
                in_flight: 1,
                parks: 30,
                unparks: 29,
            },
        ]);
        let body = pulse.health_json();
        assert!(body.contains("\"status\": \"ok\""), "{body}");
        assert!(body.contains("\"windows\": ["), "{body}");
        assert!(body.contains("\"shards\": 2"), "{body}");
        let shards = pulse.shards_json();
        assert!(shards.contains("\"shard\": 1"), "{shards}");
        assert!(shards.contains("\"duty_cycle\": 0.9"), "{shards}");
        assert!(shards.contains("\"imbalance\": {"), "{shards}");
    }

    #[test]
    fn collector_exports_pulse_families() {
        let pulse = Pulse::new(SloSpec::default())
            .with_exemplars(Arc::new(ExemplarReservoir::with_capacity(4)));
        for i in 0..30u64 {
            pulse.observe(sample(i * 100, i * 10, i * 10));
        }
        let mut metrics = Vec::new();
        pulse.collect(&mut metrics);
        let names: Vec<&str> = metrics.iter().map(|m| m.name).collect();
        assert!(names.contains(&"cde_pulse_health_status"));
        assert!(names.contains(&"cde_pulse_probe_rate"));
        assert!(names.contains(&"cde_pulse_timeout_ratio"));
        assert!(names.contains(&"cde_pulse_shard_duty_skew"));
        assert!(names.contains(&"cde_pulse_exemplars_observed_total"));
        // Every window series is labelled.
        assert!(metrics
            .iter()
            .filter(|m| m.name == "cde_pulse_probe_rate")
            .all(|m| m.labels.iter().any(|(k, _)| *k == "window")));
    }
}
