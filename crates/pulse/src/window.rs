//! Rolling counter windows: a lock-free ring of timestamped cumulative
//! snapshots, and the window-delta arithmetic that turns them into
//! rates.
//!
//! The ring is a seqlock per slot: the writer claims a monotonically
//! increasing slot index, marks the slot's sequence odd (derived from
//! the claim, so it is unique to this write), stores every field, then
//! marks it even. A reader loads the sequence, copies the fields, and
//! re-loads: any concurrent write — including a wrap by a later claim —
//! changes the sequence and the reader retries or skips the slot. No
//! field can tear (each is its own `AtomicU64`); the seqlock only
//! guards *cross-field* consistency, so a rate can never mix the `sent`
//! of one sample with the `received` of another.

use std::sync::atomic::{AtomicU64, Ordering};

/// One cumulative counter snapshot, timestamped against the sampler's
/// epoch. All counters are totals-so-far (monotone non-decreasing
/// except `in_flight`); the window math takes deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSample {
    /// Milliseconds since the sampler's epoch.
    pub at_ms: u64,
    /// Datagrams sent (attempts included).
    pub sent: u64,
    /// Matched responses received.
    pub received: u64,
    /// Probes that exhausted every attempt.
    pub timeouts: u64,
    /// Retransmissions.
    pub retries: u64,
    /// Well-formed replies that matched no outstanding probe.
    pub strays: u64,
    /// Telemetry events shed by the hub's drop-oldest ring.
    pub shed: u64,
    /// Telemetry events successfully emitted.
    pub emitted: u64,
    /// Probes in flight at sample time (a gauge, not a total).
    pub in_flight: u64,
}

const FIELDS: usize = 9;

impl CounterSample {
    fn to_array(self) -> [u64; FIELDS] {
        [
            self.at_ms,
            self.sent,
            self.received,
            self.timeouts,
            self.retries,
            self.strays,
            self.shed,
            self.emitted,
            self.in_flight,
        ]
    }

    fn from_array(a: [u64; FIELDS]) -> CounterSample {
        CounterSample {
            at_ms: a[0],
            sent: a[1],
            received: a[2],
            timeouts: a[3],
            retries: a[4],
            strays: a[5],
            shed: a[6],
            emitted: a[7],
            in_flight: a[8],
        }
    }
}

struct Slot {
    /// `2 * claim + 1` while the claiming writer stores, `2 * claim + 2`
    /// once stable, 0 when never written. Claims are globally unique, so
    /// a reader comparing two loads detects *any* intervening writer.
    seq: AtomicU64,
    fields: [AtomicU64; FIELDS],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            fields: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Lock-free multi-producer, multi-reader ring of [`CounterSample`]s.
///
/// Writers never block (a wrap overwrites the oldest sample); readers
/// never block writers. Capacity is fixed at construction.
pub struct SampleRing {
    slots: Box<[Slot]>,
    /// Next claim index; `claim % capacity` is the slot.
    head: AtomicU64,
}

impl std::fmt::Debug for SampleRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SampleRing")
            .field("capacity", &self.slots.len())
            .field("pushed", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl SampleRing {
    /// A ring holding the latest `capacity` samples (min 2).
    pub fn with_capacity(capacity: usize) -> SampleRing {
        SampleRing {
            slots: (0..capacity.max(2)).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Total samples ever pushed.
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// Pushes one sample, overwriting the oldest on wrap.
    pub fn push(&self, sample: CounterSample) {
        let claim = self.head.fetch_add(1, Ordering::SeqCst);
        let slot = &self.slots[(claim % self.slots.len() as u64) as usize];
        slot.seq.store(2 * claim + 1, Ordering::SeqCst);
        for (dst, src) in slot.fields.iter().zip(sample.to_array()) {
            dst.store(src, Ordering::SeqCst);
        }
        slot.seq.store(2 * claim + 2, Ordering::SeqCst);
    }

    fn read_slot(&self, claim: u64) -> Option<CounterSample> {
        let slot = &self.slots[(claim % self.slots.len() as u64) as usize];
        let want = 2 * claim + 2;
        for _ in 0..4 {
            let before = slot.seq.load(Ordering::SeqCst);
            if before != want {
                // Not yet written, or already overwritten by a wrap.
                return None;
            }
            let mut fields = [0u64; FIELDS];
            for (dst, src) in fields.iter_mut().zip(&slot.fields) {
                *dst = src.load(Ordering::SeqCst);
            }
            if slot.seq.load(Ordering::SeqCst) == before {
                return Some(CounterSample::from_array(fields));
            }
        }
        None
    }

    /// The most recent consistent sample, if any.
    pub fn latest(&self) -> Option<CounterSample> {
        let head = self.head.load(Ordering::SeqCst);
        // Walk back a few claims: the newest may still be mid-store.
        (0..8.min(head)).find_map(|back| self.read_slot(head - 1 - back))
    }

    /// Every retained sample in chronological order, skipping slots a
    /// concurrent writer is touching.
    pub fn samples(&self) -> Vec<CounterSample> {
        let head = self.head.load(Ordering::SeqCst);
        let start = head.saturating_sub(self.slots.len() as u64);
        let mut out = Vec::with_capacity((head - start) as usize);
        for claim in start..head {
            if let Some(sample) = self.read_slot(claim) {
                out.push(sample);
            }
        }
        out
    }
}

/// Rates derived from the delta between two samples roughly one window
/// apart. `span_ms` is the *actual* distance used — shorter than
/// `window_ms` while history is still filling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowRates {
    /// The window that was asked for, in milliseconds.
    pub window_ms: u64,
    /// The distance between the two samples actually used.
    pub span_ms: u64,
    /// Attempts (sent datagrams) in the span.
    pub attempts: u64,
    /// Attempts per second.
    pub probes_per_sec: f64,
    /// Unanswered attempts over attempts, in `[0, 1]`, after deducting
    /// the probes still legitimately in flight at the anchor instant.
    /// Tracks wire loss: retransmissions count as attempts.
    pub timeout_ratio: f64,
    /// Stray replies over all replies (matched + stray).
    pub stray_ratio: f64,
    /// Telemetry events shed over events produced (emitted + shed).
    pub shed_ratio: f64,
}

/// Computes the rates over the trailing `window_ms` of `samples`
/// (chronological, as returned by [`SampleRing::samples`]): the anchor
/// is the *latest sample*, the baseline is the newest sample at least
/// `window_ms` older, clamped to the oldest available. `None` without
/// two distinct timestamps.
pub fn window_rates(samples: &[CounterSample], window_ms: u64) -> Option<WindowRates> {
    let anchor = *samples.last()?;
    let cutoff = anchor.at_ms.saturating_sub(window_ms);
    let base = samples
        .iter()
        .rev()
        .skip(1)
        .find(|s| s.at_ms <= cutoff)
        .copied()
        .or_else(|| samples.first().copied().filter(|s| s.at_ms < anchor.at_ms))?;
    let span_ms = anchor.at_ms - base.at_ms;
    if span_ms == 0 {
        return None;
    }
    let sent = anchor.sent.saturating_sub(base.sent);
    let received = anchor.received.saturating_sub(base.received);
    let strays = anchor.strays.saturating_sub(base.strays);
    let shed = anchor.shed.saturating_sub(base.shed);
    let emitted = anchor.emitted.saturating_sub(base.emitted);
    let ratio = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            (num as f64 / den as f64).clamp(0.0, 1.0)
        }
    };
    // Unanswered = sent − received, minus what is still in flight at
    // the anchor instant — a healthy pipeline's outstanding probes must
    // not read as loss.
    let lost = sent
        .saturating_sub(received)
        .saturating_sub(anchor.in_flight);
    Some(WindowRates {
        window_ms,
        span_ms,
        attempts: sent,
        probes_per_sec: sent as f64 * 1000.0 / span_ms as f64,
        timeout_ratio: ratio(lost, sent),
        stray_ratio: ratio(strays, strays + received),
        shed_ratio: ratio(shed, shed + emitted),
    })
}

/// Human label for a window size: `"10s"`, `"1m"`, `"500ms"`.
#[allow(clippy::manual_is_multiple_of)] // u64::is_multiple_of needs 1.87, MSRV is 1.81
pub fn window_label(window_ms: u64) -> String {
    if window_ms >= 60_000 && window_ms % 60_000 == 0 {
        format!("{}m", window_ms / 60_000)
    } else if window_ms >= 1_000 && window_ms % 1_000 == 0 {
        format!("{}s", window_ms / 1_000)
    } else {
        format!("{window_ms}ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample(at_ms: u64, sent: u64, received: u64) -> CounterSample {
        CounterSample {
            at_ms,
            sent,
            received,
            ..CounterSample::default()
        }
    }

    #[test]
    fn rates_use_the_requested_window() {
        let ring = SampleRing::with_capacity(64);
        // 100 attempts/s for 20s, all answered.
        for i in 0..=20u64 {
            ring.push(sample(i * 1000, i * 100, i * 100));
        }
        let samples = ring.samples();
        let fast = window_rates(&samples, 10_000).unwrap();
        assert_eq!(fast.span_ms, 10_000);
        assert_eq!(fast.attempts, 1000);
        assert!((fast.probes_per_sec - 100.0).abs() < 1e-9);
        assert_eq!(fast.timeout_ratio, 0.0);
    }

    #[test]
    fn short_history_clamps_to_oldest() {
        let samples = vec![sample(0, 0, 0), sample(2_000, 500, 400)];
        let w = window_rates(&samples, 300_000).unwrap();
        assert_eq!(w.span_ms, 2_000);
        assert!((w.timeout_ratio - 0.2).abs() < 1e-9);
        assert!(window_rates(&samples[..1], 10_000).is_none());
        assert!(window_rates(&[], 10_000).is_none());
    }

    #[test]
    fn ring_wraps_keeping_the_newest() {
        let ring = SampleRing::with_capacity(8);
        for i in 0..20u64 {
            ring.push(sample(i, i, i));
        }
        let samples = ring.samples();
        assert_eq!(samples.len(), 8);
        assert_eq!(samples.first().unwrap().at_ms, 12);
        assert_eq!(samples.last().unwrap().at_ms, 19);
        assert_eq!(ring.latest().unwrap().at_ms, 19);
        assert_eq!(ring.pushed(), 20);
    }

    #[test]
    fn in_flight_probes_are_not_loss() {
        let samples = vec![
            sample(0, 0, 0),
            CounterSample {
                at_ms: 2_000,
                sent: 500,
                received: 480,
                in_flight: 20,
                ..CounterSample::default()
            },
        ];
        let w = window_rates(&samples, 10_000).unwrap();
        assert_eq!(w.timeout_ratio, 0.0);
    }

    #[test]
    fn stray_and_shed_ratios() {
        let samples = vec![
            CounterSample::default(),
            CounterSample {
                at_ms: 1000,
                sent: 100,
                received: 80,
                strays: 20,
                shed: 10,
                emitted: 90,
                ..CounterSample::default()
            },
        ];
        let w = window_rates(&samples, 10_000).unwrap();
        assert!((w.stray_ratio - 0.2).abs() < 1e-9);
        assert!((w.shed_ratio - 0.1).abs() < 1e-9);
    }

    /// The seqlock must never surface a torn sample: writers store
    /// samples whose fields are all equal, so any mixed-up read is
    /// detectable.
    #[test]
    fn concurrent_writers_never_tear_a_sample() {
        let ring = Arc::new(SampleRing::with_capacity(32));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        let v = w * 1_000_000 + i;
                        ring.push(CounterSample {
                            at_ms: v,
                            sent: v,
                            received: v,
                            timeouts: v,
                            retries: v,
                            strays: v,
                            shed: v,
                            emitted: v,
                            in_flight: v,
                        });
                    }
                })
            })
            .collect();
        let reader = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut read = 0u64;
                while read < 50_000 {
                    for s in ring.samples() {
                        assert_eq!(s.at_ms, s.sent);
                        assert_eq!(s.sent, s.received);
                        assert_eq!(s.received, s.in_flight);
                        read += 1;
                    }
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(ring.pushed(), 20_000);
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(window_label(10_000), "10s");
        assert_eq!(window_label(60_000), "1m");
        assert_eq!(window_label(300_000), "5m");
        assert_eq!(window_label(500), "500ms");
    }
}
