//! Slow-probe exemplars: a bounded top-K reservoir of the slowest and
//! most-retried probe lifecycles, kept for postmortem.
//!
//! Aggregates tell you *that* the tail got worse; exemplars tell you
//! *which* probes live there — their target shard, ingress, attempt
//! count and where the time went (queued vs on the wire). The hot path
//! must not pay for this: admission floors are plain atomics, so a
//! probe that cannot possibly enter either top-K list is rejected with
//! two loads and no lock.

use parking_lot::Mutex;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

/// One completed probe's lifecycle summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeExemplar {
    /// Correlation token of the probe.
    pub token: u64,
    /// Shard that owned it.
    pub shard: u32,
    /// Ingress (resolver) address probed.
    pub ingress: Ipv4Addr,
    /// Datagrams sent (1 = no retries).
    pub attempts: u32,
    /// Round-trip of the matching reply, microseconds (0 if unanswered).
    pub rtt_us: u64,
    /// Time from admission to first send, microseconds.
    pub queue_us: u64,
    /// Time from admission to completion, microseconds.
    pub lifetime_us: u64,
    /// Whether a reply ever matched.
    pub answered: bool,
}

#[derive(Default)]
struct Inner {
    /// Sorted by `lifetime_us` descending, truncated to K.
    slowest: Vec<ProbeExemplar>,
    /// Sorted by `(attempts, lifetime_us)` descending, truncated to K.
    most_retried: Vec<ProbeExemplar>,
}

/// Lock-avoiding top-K reservoir of [`ProbeExemplar`]s.
pub struct ExemplarReservoir {
    capacity: usize,
    /// Smallest lifetime currently in `slowest` once full (admission floor).
    slow_floor_us: AtomicU64,
    /// Smallest attempt count currently in `most_retried` once full.
    retry_floor: AtomicU64,
    observed: AtomicU64,
    worst_lifetime_us: AtomicU64,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for ExemplarReservoir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExemplarReservoir")
            .field("capacity", &self.capacity)
            .field("observed", &self.observed())
            .finish()
    }
}

impl ExemplarReservoir {
    /// A reservoir keeping the top `capacity` (min 1) probes per list.
    pub fn with_capacity(capacity: usize) -> ExemplarReservoir {
        ExemplarReservoir {
            capacity: capacity.max(1),
            slow_floor_us: AtomicU64::new(0),
            retry_floor: AtomicU64::new(0),
            observed: AtomicU64::new(0),
            worst_lifetime_us: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Number of probes per list this reservoir retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total probes offered to the reservoir.
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }

    /// Longest probe lifetime ever offered, microseconds.
    pub fn worst_lifetime_us(&self) -> u64 {
        self.worst_lifetime_us.load(Ordering::Relaxed)
    }

    /// Offers one completed probe. Cheap when it cannot enter either
    /// top-K list: two relaxed loads, no lock.
    pub fn record(&self, probe: ProbeExemplar) {
        self.observed.fetch_add(1, Ordering::Relaxed);
        self.worst_lifetime_us
            .fetch_max(probe.lifetime_us, Ordering::Relaxed);
        // Floors are 0 until the lists fill, so early probes always
        // take the lock; after that only genuine candidates do.
        let maybe_slow = probe.lifetime_us > self.slow_floor_us.load(Ordering::Relaxed);
        // `>=` on the retry floor: an equal-attempt probe can still win
        // its place on the lifetime tie-break.
        let maybe_retried = probe.attempts > 1
            && u64::from(probe.attempts) >= self.retry_floor.load(Ordering::Relaxed);
        if !maybe_slow && !maybe_retried {
            return;
        }
        let mut inner = self.inner.lock();
        if maybe_slow {
            inner.slowest.push(probe);
            inner
                .slowest
                .sort_by_key(|p| std::cmp::Reverse(p.lifetime_us));
            inner.slowest.truncate(self.capacity);
            if inner.slowest.len() == self.capacity {
                let floor = inner.slowest.last().map_or(0, |p| p.lifetime_us);
                self.slow_floor_us.store(floor, Ordering::Relaxed);
            }
        }
        if maybe_retried {
            inner.most_retried.push(probe);
            inner
                .most_retried
                .sort_by_key(|p| std::cmp::Reverse((p.attempts, p.lifetime_us)));
            inner.most_retried.truncate(self.capacity);
            if inner.most_retried.len() == self.capacity {
                let floor = inner
                    .most_retried
                    .last()
                    .map_or(0, |p| u64::from(p.attempts));
                self.retry_floor.store(floor, Ordering::Relaxed);
            }
        }
    }

    /// The slowest probes, worst first.
    pub fn slowest(&self) -> Vec<ProbeExemplar> {
        self.inner.lock().slowest.clone()
    }

    /// The most-retried probes, worst first.
    pub fn most_retried(&self) -> Vec<ProbeExemplar> {
        self.inner.lock().most_retried.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn probe(token: u64, attempts: u32, lifetime_us: u64) -> ProbeExemplar {
        ProbeExemplar {
            token,
            shard: 0,
            ingress: Ipv4Addr::new(192, 0, 2, 1),
            attempts,
            rtt_us: lifetime_us / 2,
            queue_us: 10,
            lifetime_us,
            answered: true,
        }
    }

    #[test]
    fn keeps_the_k_slowest() {
        let res = ExemplarReservoir::with_capacity(3);
        for i in 0..100u64 {
            res.record(probe(i, 1, i * 10));
        }
        let slow = res.slowest();
        let lifetimes: Vec<u64> = slow.iter().map(|p| p.lifetime_us).collect();
        assert_eq!(lifetimes, vec![990, 980, 970]);
        assert_eq!(res.observed(), 100);
        assert_eq!(res.worst_lifetime_us(), 990);
    }

    #[test]
    fn retried_list_ranks_by_attempts_then_lifetime() {
        let res = ExemplarReservoir::with_capacity(2);
        res.record(probe(1, 3, 100));
        res.record(probe(2, 5, 50));
        res.record(probe(3, 3, 200));
        res.record(probe(4, 1, 9_999)); // never retried: slow list only
        let retried = res.most_retried();
        assert_eq!(retried.len(), 2);
        assert_eq!(retried[0].token, 2);
        assert_eq!(retried[1].token, 3);
        assert!(res.slowest().iter().any(|p| p.token == 4));
    }

    #[test]
    fn floor_rejects_without_growing_lists() {
        let res = ExemplarReservoir::with_capacity(2);
        res.record(probe(1, 1, 1_000));
        res.record(probe(2, 1, 2_000));
        // Below both floors once full: must not displace anything.
        for i in 0..1_000u64 {
            res.record(probe(100 + i, 1, 5));
        }
        let slow = res.slowest();
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].lifetime_us, 2_000);
        assert_eq!(slow[1].lifetime_us, 1_000);
        assert_eq!(res.observed(), 1_002);
    }

    #[test]
    fn concurrent_recording_keeps_the_global_worst() {
        let res = Arc::new(ExemplarReservoir::with_capacity(4));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let res = Arc::clone(&res);
                std::thread::spawn(move || {
                    for i in 0..2_500u64 {
                        let v = t * 2_500 + i;
                        res.record(probe(v, (v % 7 + 1) as u32, v));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(res.observed(), 10_000);
        assert_eq!(res.worst_lifetime_us(), 9_999);
        let slow = res.slowest();
        assert_eq!(slow.len(), 4);
        // The top of the slow list must be the true global maximum.
        assert_eq!(slow[0].lifetime_us, 9_999);
        assert!(slow
            .windows(2)
            .all(|w| w[0].lifetime_us >= w[1].lifetime_us));
    }
}
