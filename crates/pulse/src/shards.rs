//! Per-shard runtime statistics and the imbalance detector.
//!
//! A sharded reactor is only as fast as its hottest shard: the FNV
//! target hash spreads load statistically, so a skewed target mix (or a
//! stuck socket) shows up as one shard with a far higher duty cycle and
//! deeper queue than its peers. The detector compares max against mean
//! for both signals; either exceeding the configured multiple marks the
//! fleet skewed.

/// One shard's runtime counters, as sampled from its metrics block.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStat {
    /// Shard index.
    pub shard: u64,
    /// Microseconds spent inside loop iterations (busy).
    pub busy_us: u64,
    /// Microseconds spent parked waiting for work.
    pub parked_us: u64,
    /// Submission-ring occupancy at sample time.
    pub ring_depth: u64,
    /// Highest ring occupancy ever observed.
    pub ring_depth_peak: u64,
    /// Probes currently in flight on this shard.
    pub in_flight: u64,
    /// Times the shard parked.
    pub parks: u64,
    /// Times the shard was woken from a park.
    pub unparks: u64,
}

impl ShardStat {
    /// Fraction of accounted time spent busy, in `[0, 1]`.
    pub fn duty_cycle(&self) -> f64 {
        let total = self.busy_us + self.parked_us;
        if total == 0 {
            0.0
        } else {
            self.busy_us as f64 / total as f64
        }
    }

    /// Queue pressure: ring backlog plus in-flight probes.
    pub fn queue_load(&self) -> u64 {
        self.ring_depth + self.in_flight
    }
}

/// Max-versus-mean skew across a shard fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImbalanceReport {
    /// Number of shards compared.
    pub shards: usize,
    /// Highest duty cycle.
    pub max_duty: f64,
    /// Mean duty cycle.
    pub mean_duty: f64,
    /// `max_duty / mean_duty` (1.0 when idle).
    pub duty_skew: f64,
    /// Highest queue load.
    pub max_queue: f64,
    /// Mean queue load.
    pub mean_queue: f64,
    /// `max_queue / mean_queue` (1.0 when empty).
    pub queue_skew: f64,
}

impl ImbalanceReport {
    /// Computes the skew report; `None` with fewer than two shards
    /// (a single shard cannot be imbalanced).
    pub fn from_stats(stats: &[ShardStat]) -> Option<ImbalanceReport> {
        if stats.len() < 2 {
            return None;
        }
        let n = stats.len() as f64;
        let duties: Vec<f64> = stats.iter().map(ShardStat::duty_cycle).collect();
        let queues: Vec<f64> = stats.iter().map(|s| s.queue_load() as f64).collect();
        let max_duty = duties.iter().copied().fold(0.0, f64::max);
        let mean_duty = duties.iter().sum::<f64>() / n;
        let max_queue = queues.iter().copied().fold(0.0, f64::max);
        let mean_queue = queues.iter().sum::<f64>() / n;
        let skew = |max: f64, mean: f64| if mean > 0.0 { max / mean } else { 1.0 };
        Some(ImbalanceReport {
            shards: stats.len(),
            max_duty,
            mean_duty,
            duty_skew: skew(max_duty, mean_duty),
            max_queue,
            mean_queue,
            queue_skew: skew(max_queue, mean_queue),
        })
    }

    /// True when either skew reaches `threshold` — with an activity
    /// floor so an idle fleet (mean duty ≈ 0) never alarms on noise.
    pub fn is_skewed(&self, threshold: f64) -> bool {
        let duty_skewed = self.mean_duty > 0.01 && self.duty_skew >= threshold;
        let queue_skewed = self.mean_queue >= 1.0 && self.queue_skew >= threshold;
        duty_skewed || queue_skewed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(shard: u64, busy_us: u64, parked_us: u64, ring_depth: u64) -> ShardStat {
        ShardStat {
            shard,
            busy_us,
            parked_us,
            ring_depth,
            ..ShardStat::default()
        }
    }

    #[test]
    fn balanced_fleet_is_not_skewed() {
        let stats: Vec<_> = (0..4).map(|i| stat(i, 5_000, 5_000, 100)).collect();
        let r = ImbalanceReport::from_stats(&stats).unwrap();
        assert!((r.duty_skew - 1.0).abs() < 1e-9);
        assert!((r.queue_skew - 1.0).abs() < 1e-9);
        assert!(!r.is_skewed(2.0));
    }

    #[test]
    fn hot_shard_is_detected() {
        let stats = vec![
            stat(0, 9_900, 100, 800),
            stat(1, 1_000, 9_000, 10),
            stat(2, 1_000, 9_000, 10),
            stat(3, 1_000, 9_000, 10),
        ];
        let r = ImbalanceReport::from_stats(&stats).unwrap();
        assert!(r.duty_skew > 2.0);
        assert!(r.queue_skew > 2.0);
        assert!(r.is_skewed(2.0));
    }

    #[test]
    fn idle_fleet_never_alarms() {
        // Rounding noise on a near-idle fleet: huge relative skew,
        // negligible absolute activity.
        let stats = vec![stat(0, 10, 1_000_000, 0), stat(1, 0, 1_000_000, 0)];
        let r = ImbalanceReport::from_stats(&stats).unwrap();
        assert!(r.duty_skew > 1.9);
        assert!(!r.is_skewed(1.5));
    }

    #[test]
    fn single_shard_has_no_report() {
        assert!(ImbalanceReport::from_stats(&[stat(0, 1, 1, 1)]).is_none());
        assert!(ImbalanceReport::from_stats(&[]).is_none());
    }

    #[test]
    fn duty_cycle_bounds() {
        assert_eq!(stat(0, 0, 0, 0).duty_cycle(), 0.0);
        assert_eq!(stat(0, 100, 0, 0).duty_cycle(), 1.0);
        assert!((stat(0, 900, 100, 0).duty_cycle() - 0.9).abs() < 1e-9);
    }
}
