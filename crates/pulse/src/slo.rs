//! Declarative SLO evaluation: multi-window burn rates over the rolling
//! counter windows, plus stray/shed/imbalance guards, producing a typed
//! verdict with machine-readable causes.
//!
//! The burn-rate scheme follows the SRE playbook: with a success target
//! `t`, the error *budget* is `1 - t`, and a window's burn is its
//! observed timeout ratio divided by that budget. A fast burn (≥ 14×)
//! sustained over both the fast and mid windows pages (Critical); a
//! slow burn (≥ 2×) over both the mid and slow windows tickets (Warn).
//! Requiring two windows each suppresses blips (the short window alone
//! is noisy) and stale alerts (the long window alone lags recovery).

use crate::shards::ImbalanceReport;
use crate::window::{window_label, window_rates, CounterSample, WindowRates};

/// Declarative health objective. Defaults encode "99% of attempts
/// answered" with the classic 14×/2× two-window burn thresholds over
/// 10s/1m/5m.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Fraction of attempts that should be answered (e.g. 0.99).
    pub success_target: f64,
    /// Budget-burn multiple that pages when sustained over the fast
    /// *and* mid windows.
    pub fast_burn: f64,
    /// Budget-burn multiple that warns when sustained over the mid
    /// *and* slow windows.
    pub slow_burn: f64,
    /// Fast window, milliseconds.
    pub fast_window_ms: u64,
    /// Mid window, milliseconds.
    pub mid_window_ms: u64,
    /// Slow window, milliseconds.
    pub slow_window_ms: u64,
    /// Stray-reply ratio that warrants a Warn.
    pub stray_warn: f64,
    /// Telemetry shed ratio that warrants a Warn.
    pub shed_warn: f64,
    /// Max/mean shard skew (duty or queue) that warrants a Warn.
    pub imbalance_warn: f64,
    /// A window with fewer attempts than this is too thin to judge.
    pub min_attempts: u64,
}

impl Default for SloSpec {
    fn default() -> SloSpec {
        SloSpec {
            success_target: 0.99,
            fast_burn: 14.0,
            slow_burn: 2.0,
            fast_window_ms: 10_000,
            mid_window_ms: 60_000,
            slow_window_ms: 300_000,
            stray_warn: 0.05,
            shed_warn: 0.01,
            imbalance_warn: 2.0,
            min_attempts: 50,
        }
    }
}

/// Overall health level, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// Everything within budget.
    Ok,
    /// Budget burning slowly, or a secondary signal out of bounds.
    Warn,
    /// Budget burning fast — the campaign's results are suspect now.
    Critical,
}

impl HealthStatus {
    /// Lowercase wire form: `"ok"`, `"warn"`, `"critical"`.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Warn => "warn",
            HealthStatus::Critical => "critical",
        }
    }

    /// Numeric level for gauges: 0, 1, 2.
    pub fn as_level(self) -> u8 {
        match self {
            HealthStatus::Ok => 0,
            HealthStatus::Warn => 1,
            HealthStatus::Critical => 2,
        }
    }

    /// Inverse of [`as_level`](HealthStatus::as_level); unknown levels
    /// clamp to `Ok`.
    pub fn from_level(level: u8) -> HealthStatus {
        match level {
            2 => HealthStatus::Critical,
            1 => HealthStatus::Warn,
            _ => HealthStatus::Ok,
        }
    }
}

/// Why a verdict is not Ok. Each variant carries the evidence that
/// tripped it.
#[derive(Debug, Clone, PartialEq)]
pub enum Cause {
    /// Timeout ratio is burning the error budget at `burn`× over the
    /// given window.
    LossBudgetBurn {
        ratio: f64,
        burn: f64,
        window_ms: u64,
    },
    /// Stray (unmatched) replies dominate the given window.
    StrayFlood { ratio: f64, window_ms: u64 },
    /// The telemetry hub is shedding events.
    ShedPressure { ratio: f64, window_ms: u64 },
    /// One shard is doing disproportionate work or holding a deeper
    /// queue than its peers.
    ShardImbalance { duty_skew: f64, queue_skew: f64 },
}

impl Cause {
    /// Stable snake_case kind for JSON consumers.
    pub fn kind(&self) -> &'static str {
        match self {
            Cause::LossBudgetBurn { .. } => "loss_budget_burn",
            Cause::StrayFlood { .. } => "stray_flood",
            Cause::ShedPressure { .. } => "shed_pressure",
            Cause::ShardImbalance { .. } => "shard_imbalance",
        }
    }

    /// Human-readable one-liner.
    pub fn detail(&self) -> String {
        match self {
            Cause::LossBudgetBurn {
                ratio,
                burn,
                window_ms,
            } => format!(
                "loss {:.1}% over {} burns error budget at {:.1}x",
                ratio * 100.0,
                window_label(*window_ms),
                burn
            ),
            Cause::StrayFlood { ratio, window_ms } => format!(
                "stray replies {:.1}% of traffic over {}",
                ratio * 100.0,
                window_label(*window_ms)
            ),
            Cause::ShedPressure { ratio, window_ms } => format!(
                "telemetry shedding {:.1}% of events over {}",
                ratio * 100.0,
                window_label(*window_ms)
            ),
            Cause::ShardImbalance {
                duty_skew,
                queue_skew,
            } => format!("shard skew: duty {duty_skew:.2}x mean, queue {queue_skew:.2}x mean"),
        }
    }
}

/// The outcome of one SLO evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthVerdict {
    /// Worst level across all checks.
    pub status: HealthStatus,
    /// Every check that fired, most severe first.
    pub causes: Vec<Cause>,
    /// The window rates the verdict was computed from.
    pub windows: Vec<WindowRates>,
}

impl HealthVerdict {
    fn ok() -> HealthVerdict {
        HealthVerdict {
            status: HealthStatus::Ok,
            causes: Vec::new(),
            windows: Vec::new(),
        }
    }
}

/// Evaluates `spec` over chronological `samples` (plus an optional
/// shard-imbalance report), anchored at the latest sample's timestamp —
/// deterministic, so an offline replay over a trace produces the same
/// verdicts the live engine did.
pub fn evaluate(
    samples: &[CounterSample],
    spec: &SloSpec,
    imbalance: Option<&ImbalanceReport>,
) -> HealthVerdict {
    if samples.len() < 2 {
        return HealthVerdict::ok();
    }
    let fast = window_rates(samples, spec.fast_window_ms);
    let mid = window_rates(samples, spec.mid_window_ms);
    let slow = window_rates(samples, spec.slow_window_ms);
    let windows: Vec<WindowRates> = [fast, mid, slow].into_iter().flatten().collect();

    let budget = (1.0 - spec.success_target).max(f64::EPSILON);
    let burn = |w: &WindowRates| w.timeout_ratio / budget;
    let active = |w: &WindowRates| w.attempts >= spec.min_attempts;

    let mut critical: Vec<Cause> = Vec::new();
    let mut warn: Vec<Cause> = Vec::new();

    // Fast burn: sustained over the fast AND mid windows.
    if let (Some(f), Some(m)) = (fast.as_ref(), mid.as_ref()) {
        if active(f) && active(m) && burn(f) >= spec.fast_burn && burn(m) >= spec.fast_burn {
            critical.push(Cause::LossBudgetBurn {
                ratio: f.timeout_ratio,
                burn: burn(f),
                window_ms: f.window_ms,
            });
        }
    }
    // Slow burn: sustained over the mid AND slow windows.
    if critical.is_empty() {
        if let (Some(m), Some(s)) = (mid.as_ref(), slow.as_ref()) {
            if active(m) && active(s) && burn(m) >= spec.slow_burn && burn(s) >= spec.slow_burn {
                warn.push(Cause::LossBudgetBurn {
                    ratio: m.timeout_ratio,
                    burn: burn(m),
                    window_ms: m.window_ms,
                });
            }
        }
    }
    if let Some(f) = fast.as_ref().filter(|w| active(w)) {
        if f.stray_ratio >= spec.stray_warn {
            warn.push(Cause::StrayFlood {
                ratio: f.stray_ratio,
                window_ms: f.window_ms,
            });
        }
        if f.shed_ratio >= spec.shed_warn {
            warn.push(Cause::ShedPressure {
                ratio: f.shed_ratio,
                window_ms: f.window_ms,
            });
        }
    }
    if let Some(report) = imbalance {
        if report.is_skewed(spec.imbalance_warn) {
            warn.push(Cause::ShardImbalance {
                duty_skew: report.duty_skew,
                queue_skew: report.queue_skew,
            });
        }
    }

    let status = if !critical.is_empty() {
        HealthStatus::Critical
    } else if !warn.is_empty() {
        HealthStatus::Warn
    } else {
        HealthStatus::Ok
    };
    let mut causes = critical;
    causes.extend(warn);
    HealthVerdict {
        status,
        causes,
        windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shards::ShardStat;

    fn stream(ms_step: u64, n: u64, loss: f64) -> Vec<CounterSample> {
        (0..=n)
            .map(|i| CounterSample {
                at_ms: i * ms_step,
                sent: i * 100,
                received: ((i * 100) as f64 * (1.0 - loss)) as u64,
                ..CounterSample::default()
            })
            .collect()
    }

    #[test]
    fn clean_stream_is_ok() {
        let v = evaluate(&stream(100, 100, 0.0), &SloSpec::default(), None);
        assert_eq!(v.status, HealthStatus::Ok);
        assert!(v.causes.is_empty());
        assert!(!v.windows.is_empty());
    }

    #[test]
    fn heavy_loss_pages() {
        let v = evaluate(&stream(100, 100, 0.30), &SloSpec::default(), None);
        assert_eq!(v.status, HealthStatus::Critical);
        assert_eq!(v.causes[0].kind(), "loss_budget_burn");
        assert!(v.causes[0].detail().contains("loss"));
    }

    #[test]
    fn slow_leak_warns_but_does_not_page() {
        // 3% loss: burn = 3x — above the slow threshold (2x), below the
        // fast one (14x). Needs mid+slow history to fire.
        let v = evaluate(&stream(5_000, 120, 0.03), &SloSpec::default(), None);
        assert_eq!(v.status, HealthStatus::Warn);
        assert_eq!(v.causes[0].kind(), "loss_budget_burn");
    }

    #[test]
    fn thin_windows_are_not_judged() {
        // Plenty of loss but almost no attempts: stay Ok.
        let samples = vec![
            CounterSample::default(),
            CounterSample {
                at_ms: 10_000,
                sent: 10,
                received: 2,
                ..CounterSample::default()
            },
        ];
        let v = evaluate(&samples, &SloSpec::default(), None);
        assert_eq!(v.status, HealthStatus::Ok);
    }

    #[test]
    fn stray_flood_and_shed_pressure_warn() {
        let samples = vec![
            CounterSample::default(),
            CounterSample {
                at_ms: 10_000,
                sent: 1000,
                received: 1000,
                strays: 200,
                shed: 50,
                emitted: 950,
                ..CounterSample::default()
            },
        ];
        let v = evaluate(&samples, &SloSpec::default(), None);
        assert_eq!(v.status, HealthStatus::Warn);
        let kinds: Vec<_> = v.causes.iter().map(|c| c.kind()).collect();
        assert!(kinds.contains(&"stray_flood"));
        assert!(kinds.contains(&"shed_pressure"));
    }

    #[test]
    fn imbalance_report_taints_the_verdict() {
        let hot = ShardStat {
            shard: 0,
            busy_us: 9_000,
            parked_us: 1_000,
            ring_depth: 900,
            ..ShardStat::default()
        };
        let cold = ShardStat {
            busy_us: 1_000,
            parked_us: 9_000,
            ring_depth: 10,
            ..ShardStat::default()
        };
        let stats = vec![
            hot,
            ShardStat { shard: 1, ..cold },
            ShardStat { shard: 2, ..cold },
        ];
        let report = ImbalanceReport::from_stats(&stats).unwrap();
        let v = evaluate(&stream(100, 100, 0.0), &SloSpec::default(), Some(&report));
        assert_eq!(v.status, HealthStatus::Warn);
        assert_eq!(v.causes[0].kind(), "shard_imbalance");
    }

    #[test]
    fn status_strings_and_levels() {
        assert_eq!(HealthStatus::Ok.as_str(), "ok");
        assert_eq!(HealthStatus::Warn.as_level(), 1);
        assert_eq!(HealthStatus::Critical.as_level(), 2);
        assert!(HealthStatus::Critical > HealthStatus::Warn);
    }
}
