//! **counting-dark** — a from-scratch Rust reproduction of *Counting in
//! the Dark: DNS Caches Discovery and Enumeration in the Internet*
//! (DSN 2017).
//!
//! This umbrella crate re-exports the whole workspace so examples and
//! downstream users need a single dependency:
//!
//! * [`dns`] — the DNS substrate (names, records, wire format, zones),
//! * [`cache`] — TTL caches with clamping and eviction policies,
//! * [`netsim`] — deterministic virtual time, latency and loss models,
//! * [`platform`] — simulated resolution platforms and authoritative
//!   nameservers,
//! * [`probers`] — direct, SMTP and ad-network probers,
//! * [`cde`] — the paper's contribution: caches discovery & enumeration,
//! * [`analysis`] — coupon-collector math and figure statistics,
//! * [`datasets`] — populations calibrated to the paper's marginals,
//! * [`engine`] — the live wire-level engine: real UDP transports, a
//!   loopback authoritative farm, campaign scheduling and rate limiting,
//! * [`telemetry`] — campaign tracing (JSONL event stream) and the
//!   pull-model metrics registry with Prometheus text export,
//! * [`faults`] — deterministic, seedable network fault injection
//!   (bursty loss, reordering, duplication, truncation, rate limiting)
//!   for chaos-testing the engine,
//! * [`insight`] — latency analysis: streaming RTT digests, hot-path
//!   phase profiling, bimodality splitting and the offline telemetry
//!   trace analyzer behind the `cde-analyze` binary,
//! * [`serve`] — the multi-tenant campaign daemon: weighted per-tenant
//!   pacing over one shared reactor, checkpoint/resume snapshots and
//!   the dependency-free HTTP control plane behind the `cde-serve`
//!   binary.
//!
//! # Quickstart
//!
//! ```
//! use counting_dark::cde::access::DirectAccess;
//! use counting_dark::cde::enumerate::{enumerate_identical, EnumerateOptions};
//! use counting_dark::cde::CdeInfra;
//! use counting_dark::netsim::{Link, SimTime};
//! use counting_dark::platform::{NameserverNet, PlatformBuilder, SelectorKind};
//! use counting_dark::probers::DirectProber;
//! use std::net::Ipv4Addr;
//!
//! // A hidden 3-cache platform ...
//! let mut net = NameserverNet::new();
//! let mut infra = CdeInfra::install(&mut net);
//! let mut platform = PlatformBuilder::new(7)
//!     .ingress(vec![Ipv4Addr::new(192, 0, 2, 1)])
//!     .egress(vec![Ipv4Addr::new(192, 0, 3, 1)])
//!     .cluster(3, SelectorKind::Random)
//!     .build();
//!
//! // ... counted from the outside.
//! let session = infra.new_session(&mut net, 0);
//! let mut prober = DirectProber::new(Ipv4Addr::new(203, 0, 113, 1), Link::ideal(), 1);
//! let mut access = DirectAccess::new(&mut prober, &mut platform, Ipv4Addr::new(192, 0, 2, 1), &mut net);
//! let result = enumerate_identical(&mut access, &infra, &session, EnumerateOptions::with_probes(48), SimTime::ZERO);
//! assert_eq!(result.observed, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cde_analysis as analysis;
pub use cde_cache as cache;
pub use cde_core as cde;
pub use cde_datasets as datasets;
pub use cde_dns as dns;
pub use cde_engine as engine;
pub use cde_faults as faults;
pub use cde_insight as insight;
pub use cde_netsim as netsim;
pub use cde_platform as platform;
pub use cde_probers as probers;
pub use cde_serve as serve;
pub use cde_telemetry as telemetry;
