//! Offline drop-in subset of the
//! [`parking_lot`](https://crates.io/crates/parking_lot) crate, vendored so
//! the workspace resolves without registry access.
//!
//! The key API difference from `std::sync` that callers rely on is
//! preserved: `lock()`/`read()`/`write()` return guards directly (no
//! poisoning, no `Result`). Internally these wrap the std primitives and
//! recover from poisoning by taking the inner guard, which matches
//! parking_lot's "poisoning does not exist" semantics closely enough for
//! this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual exclusion primitive. Unlike `std::sync::Mutex`, `lock()`
/// returns the guard directly and the lock is never poisoned.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait`] can move
/// it out by value and put the re-acquired guard back; it is `Some` at all
/// times outside that window.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(inner) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (requires `&mut`,
    /// so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A reader-writer lock. Unlike `std::sync::RwLock`, `read()`/`write()`
/// return guards directly and the lock is never poisoned.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(TryLockError::Poisoned(poisoned)) => Some(RwLockReadGuard {
                inner: poisoned.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(TryLockError::Poisoned(poisoned)) => Some(RwLockWriteGuard {
                inner: poisoned.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guarded mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let owned = guard.inner.take().expect("guard taken during wait");
        let reacquired = match self.inner.wait(owned) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(reacquired);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let owned = guard.inner.take().expect("guard taken during wait");
        let (reacquired, result) = match self.inner.wait_timeout(owned, timeout) {
            Ok(pair) => pair,
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(reacquired);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(r1.len() + r2.len(), 6);
        drop((r1, r2));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
