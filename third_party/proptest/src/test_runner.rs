//! Case generation and execution.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration. Only the knobs the workspace uses are modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A default configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Builds the generator for case number `case` of the test named
    /// `name` (typically its module path). Stable across runs, so a
    /// reported failing case can be replayed by rerunning the test.
    pub fn deterministic(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, then mix in the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        let seed = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform sample below `bound` (`bound > 0`).
    pub(crate) fn below(&mut self, bound: usize) -> usize {
        self.inner.gen_range(0..bound)
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the whole property fails.
    Fail(String),
    /// A `prop_assume!` precondition was not met; the case is discarded.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives a property over its configured number of cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    /// Creates a runner for the test named `name`.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        Self { config, name }
    }

    /// Runs `case` until `config.cases` successes, panicking on the first
    /// failure with enough context to replay it.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut stream = 0u64;
        while passed < self.config.cases {
            let mut rng = TestRng::deterministic(self.name, stream);
            stream += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "property test `{}` gave up: {} cases rejected by prop_assume! \
                             (only {} of {} passed)",
                            self.name, rejected, passed, self.config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "property test `{}` failed at case #{} (deterministic stream {}): {}",
                        self.name,
                        passed,
                        stream - 1,
                        msg
                    );
                }
            }
        }
    }
}
