//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of an associated type.
///
/// Upstream strategies build shrinkable value *trees*; this subset
/// generates plain values (no shrinking), which is all the workspace's
/// tests rely on.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

type Arm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Boxes one `prop_oneof!` arm. A plain `Box::new(..) as Box<dyn Fn..>`
/// cast in the macro leaves the value type to deferred coercion, which
/// lets integer-literal fallback win (e.g. a `(1..=3).contains(&v)` in
/// the test body pins `v` to `i32` before the arm's `u8` is seen); going
/// through this function anchors the type to `S::Value` eagerly.
#[doc(hidden)]
pub fn box_arm<S: Strategy + 'static>(strategy: S) -> Arm<S::Value> {
    Box::new(move |rng| strategy.sample(rng))
}

/// Uniform choice between heterogeneous strategies sharing a value type;
/// built by the [`prop_oneof!`](crate::prop_oneof) macro.
pub struct Union<T> {
    arms: Vec<Arm<T>>,
}

impl<T> Union<T> {
    /// Builds a union from boxed sampling closures (one per arm).
    pub fn new(arms: Vec<Arm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len());
        (self.arms[idx])(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union {{ arms: {} }}", self.arms.len())
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
    (A, B, C, D, E, F, G, H, I, J, K)
    (A, B, C, D, E, F, G, H, I, J, K, L)
}
