//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo >= self.hi_inclusive {
            self.lo
        } else {
            self.lo + rng.below(self.hi_inclusive - self.lo + 1)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
