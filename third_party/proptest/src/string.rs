//! String strategies driven by a (small) regex subset.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt;

/// Error returned for patterns outside the supported regex subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported regex pattern: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// One generatable unit of the pattern.
#[derive(Debug, Clone)]
enum Atom {
    /// A fixed character.
    Literal(char),
    /// A character class, expanded to its members.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Strategy returned by [`string_regex`]: generates strings matching the
/// parsed pattern.
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    pieces: Vec<Piece>,
}

/// Builds a strategy generating strings that match `pattern`.
///
/// Supported subset: literal characters, character classes
/// (`[a-z0-9_-]`, ranges and literal members), and the quantifiers
/// `{m}`, `{m,n}`, `?`, `*`, `+` (the open-ended ones capped at 8
/// repetitions). Anything else returns an [`Error`].
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut pieces = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut members = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let m = chars
                        .next()
                        .ok_or_else(|| Error(format!("unterminated class in {pattern:?}")))?;
                    match m {
                        ']' => break,
                        '^' if prev.is_none() && members.is_empty() => {
                            return Err(Error(format!("negated class in {pattern:?}")));
                        }
                        '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let start = prev.take().expect("checked above");
                            let end = chars.next().expect("peeked above");
                            if start > end {
                                return Err(Error(format!("bad range {start}-{end}")));
                            }
                            // `start` is already in `members`; add the rest.
                            for cp in (start as u32 + 1)..=(end as u32) {
                                members.push(char::from_u32(cp).ok_or_else(|| {
                                    Error(format!("bad codepoint in {pattern:?}"))
                                })?);
                            }
                        }
                        '\\' => {
                            let esc = chars
                                .next()
                                .ok_or_else(|| Error(format!("dangling escape in {pattern:?}")))?;
                            members.push(esc);
                            prev = Some(esc);
                        }
                        other => {
                            members.push(other);
                            prev = Some(other);
                        }
                    }
                }
                if members.is_empty() {
                    return Err(Error(format!("empty class in {pattern:?}")));
                }
                Atom::Class(members)
            }
            '\\' => {
                let esc = chars
                    .next()
                    .ok_or_else(|| Error(format!("dangling escape in {pattern:?}")))?;
                Atom::Literal(esc)
            }
            '(' | ')' | '|' | '.' | '^' | '$' => {
                return Err(Error(format!("construct {c:?} in {pattern:?}")));
            }
            other => Atom::Literal(other),
        };

        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                loop {
                    let d = chars
                        .next()
                        .ok_or_else(|| Error(format!("unterminated {{}} in {pattern:?}")))?;
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                let parse = |s: &str| {
                    s.trim()
                        .parse::<usize>()
                        .map_err(|_| Error(format!("bad quantifier {{{spec}}}")))
                };
                match spec.split_once(',') {
                    Some((m, n)) => (parse(m)?, parse(n)?),
                    None => {
                        let m = parse(&spec)?;
                        (m, m)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        if min > max {
            return Err(Error(format!("inverted quantifier in {pattern:?}")));
        }
        pieces.push(Piece { atom, min, max });
    }
    Ok(RegexGeneratorStrategy { pieces })
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let count = if piece.min == piece.max {
                piece.min
            } else {
                piece.min + rng.below(piece.max - piece.min + 1)
            };
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(members) => out.push(members[rng.below(members.len())]),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn label_pattern_generates_valid_labels() {
        let s = string_regex("[a-z0-9_-]{1,16}").expect("valid regex");
        let mut rng = TestRng::deterministic("label", 0);
        for _ in 0..500 {
            let v = s.sample(&mut rng);
            assert!(!v.is_empty() && v.len() <= 16, "bad length: {v:?}");
            assert!(
                v.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'),
                "bad char in {v:?}"
            );
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let s = string_regex("ab{3}c?").expect("valid regex");
        let mut rng = TestRng::deterministic("lit", 0);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!(v == "abbb" || v == "abbbc", "got {v:?}");
        }
    }

    #[test]
    fn unsupported_constructs_error() {
        assert!(string_regex("(a|b)").is_err());
        assert!(string_regex("[^a]").is_err());
        assert!(string_regex("a{2,").is_err());
    }
}
