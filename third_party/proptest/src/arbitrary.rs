//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Self(PhantomData)
    }
}

/// The canonical strategy for `A`: full-range uniform for integers,
/// `[0, 1)` for floats, fair coin for `bool`, uniformly filled arrays.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.gen()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}
