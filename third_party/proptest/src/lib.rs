//! Offline drop-in subset of the
//! [`proptest`](https://crates.io/crates/proptest) framework, vendored so
//! the workspace resolves without registry access.
//!
//! Supported surface (exactly what the workspace's property tests use):
//! the [`proptest!`] block macro with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`,
//! [`strategy::Strategy`] with `prop_map`, [`prop_oneof!`] over
//! heterogeneous arms, [`arbitrary::any`], integer/float range strategies,
//! tuple strategies, [`collection::vec`] and [`string::string_regex`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test path), and failing inputs are
//! **not shrunk** — the panic message reports the case number and seed so
//! a failure is still reproducible by rerunning the test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! Single-import convenience module, mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares a block of property tests.
///
/// ```ignore
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let mut __runner = $crate::test_runner::TestRunner::new(
                    $cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                __runner.run(|__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut *__rng);)*
                    let __case = move || -> $crate::test_runner::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test, recording a failure (with
/// the generating case) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(*__left == *__right, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(*__left != *__right, $($fmt)*);
    }};
}

/// Skips the current case (without counting it as run) when a sampled
/// input does not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Chooses uniformly between heterogeneous strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::box_arm($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..500).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in 10u8..20, w in 5usize..=9) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((5..=9).contains(&w));
        }

        #[test]
        fn prop_map_applies(v in small_even()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn tuples_and_vecs_compose(
            (a, b) in (0u16..100, 0u16..100),
            items in crate::collection::vec(0u64..10, 1..=5),
        ) {
            prop_assert!(a < 100 && b < 100);
            prop_assert!(!items.is_empty() && items.len() <= 5);
            prop_assert!(items.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_hits_every_arm_eventually(v in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn assume_rejects_without_failing(v in 0u32..10) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn regex_strings_match_class(s in crate::string::string_regex("[a-z0-9_-]{1,16}").expect("valid")) {
            prop_assert!(!s.is_empty() && s.len() <= 16);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || c == '_'
                || c == '-'));
        }

        #[test]
        fn any_arrays_fill(bytes in any::<[u8; 16]>(), word in any::<u64>()) {
            prop_assert_eq!(bytes.len(), 16);
            let _ = word;
        }
    }

    #[test]
    #[should_panic(expected = "property test")]
    fn failing_property_panics_with_context() {
        // No #[test] on the inner item: rustc cannot run nested tests
        // and warns on the attribute; we call it directly instead.
        proptest! {
            fn always_fails(v in 0u32..10) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u64..1000, 1..10);
        let a: Vec<Vec<u64>> = (0..5)
            .map(|i| s.sample(&mut TestRng::deterministic("det", i)))
            .collect();
        let b: Vec<Vec<u64>> = (0..5)
            .map(|i| s.sample(&mut TestRng::deterministic("det", i)))
            .collect();
        assert_eq!(a, b);
    }
}
