//! Offline drop-in subset of the [`bytes`](https://crates.io/crates/bytes)
//! crate, vendored so the workspace resolves without registry access.
//!
//! Only the surface the workspace actually uses is provided: [`BytesMut`]
//! as a growable byte buffer and the [`BufMut`] write trait. Semantics
//! match upstream for that subset (network byte order for the integer
//! writers, `Deref<Target = [u8]>` for reads and index patching).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// A growable, uniquely-owned byte buffer.
///
/// Upstream `bytes::BytesMut` supports zero-copy splitting; this subset is
/// backed by a plain `Vec<u8>`, which is all the wire encoder needs.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { inner: Vec::new() }
    }

    /// Creates an empty buffer with at least `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Total capacity of the underlying allocation.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Clears the buffer, keeping the allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Shortens the buffer to `len` bytes; no-op if already shorter.
    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    /// Appends a slice to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consumes the buffer, yielding the underlying `Vec<u8>`.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.inner {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        Self { inner }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(slice: &[u8]) -> Self {
        Self {
            inner: slice.to_vec(),
        }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Vec<u8> {
        buf.inner
    }
}

/// A trait for writing bytes into a buffer, network byte order for
/// multi-byte integers. Mirrors the upstream `bytes::BufMut` subset the
/// workspace uses.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        assert_eq!(b.to_vec(), vec![0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF]);
    }

    #[test]
    fn deref_allows_in_place_patching() {
        let mut b = BytesMut::new();
        b.put_u16(0);
        b[0..2].copy_from_slice(&0xC00Cu16.to_be_bytes());
        assert_eq!(&b[..], &[0xC0, 0x0C]);
    }

    #[test]
    fn put_slice_appends() {
        let mut b = BytesMut::new();
        b.put_slice(b"abc");
        b.put_slice(b"def");
        assert_eq!(b.len(), 6);
        assert_eq!(b.as_ref(), b"abcdef");
    }
}
