//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++ (the family
/// upstream `rand::rngs::SmallRng` uses on 64-bit targets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s.iter().all(|&w| w == 0) {
            // The all-zero state is a fixed point of xoshiro; upstream
            // remaps it through `seed_from_u64(0)`.
            return Self::seed_from_u64(0);
        }
        Self { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.step().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.step().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// The standard generator. Upstream this is ChaCha-based; offline we
/// alias the same engine as [`SmallRng`] — statistically strong, not
/// cryptographically secure, which matches how the workspace uses it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng(SmallRng);

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self(SmallRng::from_seed(seed))
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}
