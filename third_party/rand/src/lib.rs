//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API shape), vendored so the workspace resolves without
//! registry access.
//!
//! The workspace's simulations assert statistical properties (selector
//! fairness, coupon-collector tolerances), so the generator quality is
//! not negotiable: [`rngs::SmallRng`] is xoshiro256++, the same engine
//! upstream `small_rng` uses on 64-bit targets, seeded through the
//! rand_core-default PCG32 expansion — bit-exact with upstream, which the
//! workspace's seed-sensitive statistical tests empirically confirm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Error type reported by fallible RNG operations. The vendored
/// generators are infallible, so this is never produced by them; it
/// exists so `try_fill_bytes` signatures match upstream.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Self { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer output and byte
/// filling.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type, a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it through a PCG32
    /// stream — rand_core's default construction, reproduced bit-exactly
    /// so seeds picked against upstream keep their streams.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            // Advance first, to get away from low-Hamming-weight inputs.
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let state = *state;
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(4) {
            chunk.copy_from_slice(&pcg32(&mut state));
        }
        Self::from_seed(seed)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Matches upstream's `Bernoulli`: one raw `u64` draw compared
    /// against `p` scaled to 64 bits (`p == 1.0` consumes no draw).
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        if p >= 1.0 {
            return true;
        }
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }

    /// Fills `dest` with random data (byte-slice convenience).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer uniform sampling, replicating upstream rand 0.8's
/// `UniformInt::sample_single_inclusive` bit-for-bit: types up to 32 bits
/// draw through `next_u32`, 64-bit types through `next_u64`; out-of-zone
/// widening-multiply results are rejected and redrawn. Bit-exactness
/// matters because the workspace's deterministic simulations validate
/// statistical tolerances against specific seeds.
macro_rules! int_sample_range {
    ($($t:ty, $unsigned:ty, $u_large:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Exclusive high: sample the inclusive range [start, end - 1].
                let range = self.end.wrapping_sub(self.start) as $unsigned as $u_large;
                sample_in_span(rng, range, self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let range =
                    end.wrapping_sub(start).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // Full type-width range: every raw draw is valid.
                    return Standard.sample(rng);
                }
                sample_in_span(rng, range, start)
            }
        }

        impl SpanSample<$u_large> for $t {
            fn from_offset(start: $t, offset: $u_large) -> $t {
                start.wrapping_add(offset as $t)
            }
        }
    )*};
}

/// Glue mapping a sampled unsigned offset back into the target type.
trait SpanSample<U>: Copy {
    fn from_offset(start: Self, offset: U) -> Self;
}

/// One accepted draw from `[start, start + range)` (upstream's zone
/// rejection; `range > 0`).
fn sample_in_span<R, T, U>(rng: &mut R, range: U, start: T) -> T
where
    R: RngCore + ?Sized,
    T: SpanSample<U>,
    U: WideMul + Copy + PartialOrd,
{
    let zone = range.reject_zone();
    loop {
        let v = U::draw(rng);
        let (hi, lo) = v.wmul(range);
        if lo <= zone {
            return T::from_offset(start, hi);
        }
    }
}

/// Widening multiply + draw/zone plumbing for the two `u_large` widths.
trait WideMul: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    fn wmul(self, other: Self) -> (Self, Self);
    fn reject_zone(self) -> Self;
}

impl WideMul for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }

    fn wmul(self, other: u32) -> (u32, u32) {
        let wide = u64::from(self) * u64::from(other);
        ((wide >> 32) as u32, wide as u32)
    }

    fn reject_zone(self) -> u32 {
        (self << self.leading_zeros()).wrapping_sub(1)
    }
}

impl WideMul for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }

    fn wmul(self, other: u64) -> (u64, u64) {
        let wide = u128::from(self) * u128::from(other);
        ((wide >> 64) as u64, wide as u64)
    }

    fn reject_zone(self) -> u64 {
        (self << self.leading_zeros()).wrapping_sub(1)
    }
}

int_sample_range!(
    u8, u8, u32, u16, u16, u32, u32, u32, u32, u64, u64, u64, usize, usize, u64, i8, u8, u32, i16,
    u16, u32, i32, u32, u32, i64, u64, u64, isize, usize, u64,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // Upstream's [1, 2)-mantissa construction: 52 fraction bits with
        // a fixed exponent give a uniform value1_2 in [1, 2); one
        // multiply-add maps it onto [start, end). The rare rounding hit
        // on the excluded endpoint shrinks `scale` one ULP and redraws.
        let mut scale = self.end - self.start;
        loop {
            let fraction = rng.next_u64() >> 12;
            let value1_2 = f64::from_bits((1023u64 << 52) | fraction);
            let res = value1_2 * scale + (self.start - scale);
            if res < self.end {
                return res;
            }
            scale = f64::from_bits(scale.to_bits() - 1);
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let mut scale = self.end - self.start;
        loop {
            let fraction = rng.next_u32() >> 9;
            let value1_2 = f32::from_bits((127u32 << 23) | fraction);
            let res = value1_2 * scale + (self.start - scale);
            if res < self.end {
                return res;
            }
            scale = f32::from_bits(scale.to_bits() - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_is_in_range_and_uniformish() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_covers_small_domain_uniformly() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 6];
        for _ in 0..60_000 {
            counts[rng.gen_range(0usize..6)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_range_inclusive_hits_both_endpoints() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1_000 {
            match rng.gen_range(2u8..=4) {
                2 => lo = true,
                4 => hi = true,
                3 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(19);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 50_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn fill_bytes_all_lengths() {
        let mut rng = SmallRng::seed_from_u64(23);
        for len in 0..40 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            rng.try_fill_bytes(&mut buf).unwrap();
        }
        // 32 random bytes are never all zero for a healthy generator.
        let mut buf = [0u8; 32];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn signed_ranges_work() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = rng.gen_range(-10i32..10);
            assert!((-10..10).contains(&v));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v));
        }
    }
}
