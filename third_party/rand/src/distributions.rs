//! Value distributions for [`Rng::gen`](crate::Rng::gen).
//!
//! The constructions here follow upstream rand 0.8 *bit-exactly*, not
//! just statistically: the workspace's deterministic simulations pick
//! seeds whose behaviour was validated against upstream streams, so a
//! vendored generator must consume and map raw RNG output the same way
//! (e.g. `u8`/`u16`/`u32` come from `next_u32`, not `next_u64`; `bool`
//! is the sign bit of a `u32`).

use crate::{Rng, RngCore};

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over the full range for integers,
/// uniform on `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_from_u32 {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u32() as $t
            }
        }
    )*};
}

macro_rules! standard_from_u64 {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_from_u32!(u8, u16, u32, i8, i16, i32);
standard_from_u64!(u64, usize, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        // Low word first, matching upstream's draw order.
        let x = u128::from(rng.next_u64());
        let y = u128::from(rng.next_u64());
        (y << 64) | x
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i128 {
        Distribution::<u128>::sample(&Standard, rng) as i128
    }
}

impl Distribution<bool> for Standard {
    /// The sign bit of a `u32` draw (upstream avoids the low bits, which
    /// are weaker for some generators).
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    /// Uniform on `[0, 1)` with 53 bits of precision (upstream's
    /// multiply-based construction).
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Distribution<[u8; N]> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        RngCore::fill_bytes(rng, &mut out);
        out
    }
}
