//! Offline drop-in subset of the [`serde`](https://serde.rs) framework,
//! vendored so the workspace resolves without registry access.
//!
//! The workspace derives `Serialize`/`Deserialize` on plain data types and
//! hand-implements the pair for `Name` via `serialize_str` /
//! `String::deserialize`; no serializer backend (e.g. serde_json) is in
//! the dependency set. This subset therefore provides the trait
//! vocabulary — enough to compile every impl and to drive string-shaped
//! ones — while derived impls produced by the vendored `serde_derive`
//! panic if actually invoked (nothing in the workspace invokes them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod ser {
    //! Serialization half of the vocabulary.

    use std::fmt::Display;

    /// Errors produced by a [`Serializer`].
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A data format that can serialize values.
    pub trait Serializer: Sized {
        /// Output on success.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Serializes a string slice.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;

        /// Serializes a `bool`.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
            let _ = v;
            Err(Error::custom("serialize_bool unsupported by this format"))
        }

        /// Serializes a `u64`.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
            let _ = v;
            Err(Error::custom("serialize_u64 unsupported by this format"))
        }

        /// Serializes an `f64`.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
            let _ = v;
            Err(Error::custom("serialize_f64 unsupported by this format"))
        }
    }

    /// A value serializable into any format.
    pub trait Serialize {
        /// Serializes `self` into the given serializer.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    impl Serialize for str {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(self)
        }
    }

    impl Serialize for String {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(self)
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(serializer)
        }
    }
}

pub mod de {
    //! Deserialization half of the vocabulary.

    use std::fmt::Display;

    /// Errors produced by a [`Deserializer`].
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A data format that can deserialize values.
    ///
    /// Upstream drives deserialization through a visitor; this subset
    /// exposes the one primitive the workspace needs (owned strings).
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;

        /// Deserializes an owned string.
        fn deserialize_string(self) -> Result<String, Self::Error>;
    }

    /// A value deserializable from any format.
    pub trait Deserialize<'de>: Sized {
        /// Deserializes `Self` from the given deserializer.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    impl<'de> Deserialize<'de> for String {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            deserializer.deserialize_string()
        }
    }
}

// Mirror upstream: `serde::Serialize` names both the trait and (via the
// derive re-export above) the derive macro; Rust resolves by namespace, so
// `#[derive(serde::Serialize)]` and `impl serde::Serialize for T` both work.
pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(test)]
mod tests {
    use super::{de, ser};
    use std::fmt;

    #[derive(Debug)]
    struct StrError(String);

    impl fmt::Display for StrError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for StrError {}

    impl ser::Error for StrError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Self(msg.to_string())
        }
    }

    impl de::Error for StrError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Self(msg.to_string())
        }
    }

    /// A toy format that (de)serializes only strings.
    struct StringFormat(String);

    impl ser::Serializer for &mut StringFormat {
        type Ok = ();
        type Error = StrError;

        fn serialize_str(self, v: &str) -> Result<(), StrError> {
            self.0 = v.to_string();
            Ok(())
        }
    }

    impl<'de> de::Deserializer<'de> for &StringFormat {
        type Error = StrError;

        fn deserialize_string(self) -> Result<String, StrError> {
            Ok(self.0.clone())
        }
    }

    #[test]
    fn string_roundtrip_through_toy_format() {
        use de::Deserialize;
        use ser::Serialize;

        let mut fmt = StringFormat(String::new());
        "cache.example".serialize(&mut fmt).unwrap();
        let back = String::deserialize(&fmt).unwrap();
        assert_eq!(back, "cache.example");
    }
}
