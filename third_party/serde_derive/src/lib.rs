//! Offline drop-in subset of `serde_derive`, vendored so the workspace
//! resolves without registry access.
//!
//! The workspace derives `Serialize`/`Deserialize` on concrete (non-
//! generic) data types but never drives them through a format backend —
//! there is no serde_json (or any other serializer) in the dependency
//! set. These derive macros therefore only need to make the annotated
//! types *satisfy the trait bounds*: the generated impls are placeholders
//! that panic with a clear message if ever invoked at runtime.
//!
//! Implemented without syn/quote (also unavailable offline): a tiny
//! token-stream scan finds the `struct`/`enum` name, and the impls are
//! emitted via `format!` + `.parse()`.

use proc_macro::{TokenStream, TokenTree};

/// Finds the name of the item being derived: the identifier following the
/// first `struct` or `enum` keyword (attributes and doc comments before
/// the keyword are skipped by virtue of the scan). Returns `None` for
/// shapes this subset does not support (e.g. nothing to derive on).
fn item_name(input: TokenStream) -> Option<(String, bool)> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tree) = tokens.next() {
        if let TokenTree::Ident(ident) = &tree {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    let generic = matches!(
                        tokens.peek(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    return Some((name.to_string(), generic));
                }
                return None;
            }
        }
    }
    None
}

fn derive(input: TokenStream, trait_name: &str, body: &str) -> TokenStream {
    match item_name(input) {
        Some((name, false)) => body.replace("__NAME__", &name).parse().unwrap(),
        Some((_, true)) => format!(
            "compile_error!(\"vendored serde_derive does not support generic types ({trait_name})\");"
        )
        .parse()
        .unwrap(),
        None => format!(
            "compile_error!(\"vendored serde_derive could not find a struct/enum name ({trait_name})\");"
        )
        .parse()
        .unwrap(),
    }
}

/// Placeholder `Serialize` derive: satisfies the bound, panics if called.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive(
        input,
        "Serialize",
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for __NAME__ {\n\
             fn serialize<S: ::serde::ser::Serializer>(\n\
                 &self,\n\
                 _serializer: S,\n\
             ) -> ::core::result::Result<S::Ok, S::Error> {\n\
                 ::core::panic!(\n\
                     \"vendored serde stub: derived Serialize for `__NAME__` is a \\\n\
                      compile-time placeholder and cannot serialize values\"\n\
                 )\n\
             }\n\
         }",
    )
}

/// Placeholder `Deserialize` derive: satisfies the bound, panics if called.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive(
        input,
        "Deserialize",
        "#[automatically_derived]\n\
         impl<'de> ::serde::de::Deserialize<'de> for __NAME__ {\n\
             fn deserialize<D: ::serde::de::Deserializer<'de>>(\n\
                 _deserializer: D,\n\
             ) -> ::core::result::Result<Self, D::Error> {\n\
                 ::core::panic!(\n\
                     \"vendored serde stub: derived Deserialize for `__NAME__` is a \\\n\
                      compile-time placeholder and cannot deserialize values\"\n\
                 )\n\
             }\n\
         }",
    )
}
