//! Offline drop-in subset of the
//! [`crossbeam`](https://crates.io/crates/crossbeam) crate, vendored so the
//! workspace resolves without registry access.
//!
//! Two modules are provided, covering exactly what the workspace uses:
//!
//! * [`channel`] — multi-producer multi-consumer channels (`bounded` /
//!   `unbounded`) built on `Mutex` + `Condvar`. Cloneable senders *and*
//!   receivers, blocking/timed/non-blocking receives, iterator draining.
//! * [`thread`] — scoped threads (`thread::scope`) layered over
//!   `std::thread::scope`, returning `Err` when any spawned thread
//!   panicked (panics are caught per-thread rather than propagated).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! MPMC channels with the `crossbeam-channel` API shape.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// The wait deadline elapsed with the channel still empty.
        Timeout,
        /// All senders disconnected and the channel is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Timeout => f.write_str("timed out waiting on receive"),
                Self::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the channel is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Empty => f.write_str("channel empty"),
                Self::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// `None` = unbounded. `Some(0)` is treated as capacity 1 (true
        /// rendezvous semantics are not needed by this workspace).
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn effective_cap(&self) -> Option<usize> {
            self.cap.map(|c| c.max(1))
        }
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a bounded MPMC channel; senders block while `cap` messages
    /// are in flight. `cap == 0` is approximated as capacity 1.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking while the channel is at capacity.
        /// Fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &*self.shared;
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match shared.effective_cap() {
                    Some(cap) if state.queue.len() >= cap => {
                        state = shared.not_full.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Attempts to send without blocking; returns the value back if
        /// the channel is full or disconnected.
        pub fn try_send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &*self.shared;
            let mut state = shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if let Some(cap) = shared.effective_cap() {
                if state.queue.len() >= cap {
                    return Err(SendError(value));
                }
            }
            state.queue.push_back(value);
            drop(state);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Receives a value, blocking until one is available. Fails only
        /// when the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &*self.shared;
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = shared.not_empty.wait(state).unwrap();
            }
        }

        /// Receives a value, giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let shared = &*self.shared;
            let deadline = Instant::now() + timeout;
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = guard;
            }
        }

        /// Receives a value if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &*self.shared;
            let mut state = shared.state.lock().unwrap();
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator over received values; ends when the channel
        /// disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Non-blocking iterator draining currently queued values.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.receivers -= 1;
            let last = state.receivers == 0;
            drop(state);
            if last {
                // Wake senders blocked on a full queue so they can
                // observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Non-blocking iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    /// Owning blocking iterator returned by `Receiver::into_iter`.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_roundtrip_and_drain() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = rx.into_iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn bounded_blocks_sender_until_recv() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert!(tx.try_send(3).is_err());
            let feeder = thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until a slot frees
            });
            assert_eq!(rx.recv(), Ok(1));
            feeder.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn mpmc_workers_share_one_receiver() {
            let (tx, rx) = unbounded();
            let (out_tx, out_rx) = unbounded();
            let mut joins = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                let out = out_tx.clone();
                joins.push(thread::spawn(move || {
                    for v in rx.iter() {
                        out.send(v).unwrap();
                    }
                }));
            }
            drop(rx);
            drop(out_tx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            for j in joins {
                j.join().unwrap();
            }
            let mut got: Vec<i32> = out_rx.into_iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_timeout_times_out_then_succeeds() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }
    }
}

pub mod thread {
    //! Scoped threads with the `crossbeam-utils` API shape, layered over
    //! `std::thread::scope`.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    /// Panic payload carried out of a scope when a spawned thread panics.
    pub type Payload = Box<dyn Any + Send + 'static>;

    /// A scope handle for spawning borrow-capturing threads.
    ///
    /// Panic payloads are funnelled through an owned `Arc` (not a stack
    /// borrow): the closure handed to `std::thread::scope` is generic over
    /// `'scope`, so any captured *borrow* would have to outlive every
    /// possible `'scope` — i.e. all of `'env` — which a local cannot.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        panics: Arc<Mutex<Vec<Payload>>>,
    }

    /// Join handle for a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish. `Err` means it panicked (the
        /// payload itself is surfaced by the enclosing [`scope`] call).
        pub fn join(self) -> Result<T, Payload> {
            match self.inner.join() {
                Ok(Some(v)) => Ok(v),
                Ok(None) => Err(Box::new("scoped thread panicked")),
                Err(payload) => Err(payload),
            }
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to `'env` borrows. The closure receives
        /// the scope again so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            let panics = Arc::clone(&self.panics);
            let handle = self.inner.spawn(move || {
                let scope = Scope {
                    inner,
                    panics: Arc::clone(&panics),
                };
                match catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                    Ok(v) => Some(v),
                    Err(payload) => {
                        panics.lock().unwrap().push(payload);
                        None
                    }
                }
            });
            ScopedJoinHandle { inner: handle }
        }
    }

    /// Runs `f` with a scope in which threads borrowing local state can be
    /// spawned; joins them all before returning. Returns `Err` with the
    /// first panic payload if any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let panics: Arc<Mutex<Vec<Payload>>> = Arc::new(Mutex::new(Vec::new()));
        let handed_out = Arc::clone(&panics);
        let result = std::thread::scope(move |s| {
            let scope = Scope {
                inner: s,
                panics: handed_out,
            };
            f(&scope)
        });
        let mut collected = panics.lock().unwrap();
        if collected.is_empty() {
            Ok(result)
        } else {
            Err(collected.remove(0))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn scope_joins_borrowing_threads() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = scope(|s| {
                let (lo, hi) = data.split_at(data.len() / 2);
                let left = s.spawn(move |_| lo.iter().sum::<u64>());
                let right = s.spawn(move |_| hi.iter().sum::<u64>());
                left.join().unwrap() + right.join().unwrap()
            })
            .expect("no panics");
            assert_eq!(total, 10);
        }

        #[test]
        fn scope_reports_thread_panic() {
            let result = scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(result.is_err());
        }
    }
}
