//! Offline drop-in subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! vendored so the workspace resolves without registry access.
//!
//! Benchmarks compile and run with the same source: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. Instead of upstream's statistical analysis,
//! each benchmark is timed with a warmup phase followed by a fixed
//! measurement window, and the mean ns/iter is printed.
//!
//! Argument handling mirrors upstream where it matters for cargo: when
//! the binary is invoked with `--test` (as `cargo test --benches` does),
//! every benchmark body runs exactly once so the suite acts as a smoke
//! test; under `--bench` (from `cargo bench`) or no arguments, full
//! timing runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How a run was requested on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full timing (cargo bench, or direct invocation).
    Bench,
    /// One iteration per benchmark (cargo test --benches).
    Test,
}

fn mode_from_args() -> Mode {
    if std::env::args().any(|a| a == "--test") {
        Mode::Test
    } else {
        Mode::Bench
    }
}

/// Benchmark identifier: a function/group name plus an optional
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier with an explicit function name and parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier rendered from the parameter alone (the group supplies
    /// the name prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean ns/iter.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Test {
            black_box(routine());
            self.last_ns_per_iter = 0.0;
            return;
        }

        // Warmup + calibration: run until ~20ms elapse to pick an
        // iteration count whose measurement is comfortably above timer
        // resolution.
        let warmup = Duration::from_millis(20);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;

        // Measurement window scaled by sample_size (upstream's
        // sample_size(n) similarly trades accuracy for time).
        let window =
            Duration::from_millis(10).mul_f64((self.sample_size as f64).clamp(2.0, 100.0) / 10.0);
        let iters = ((window.as_secs_f64() / per_iter) as u64).clamp(1, 10_000_000);
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = t0.elapsed();
        self.last_ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    }
}

fn report(path: &str, b: &Bencher) {
    if b.mode == Mode::Test {
        println!("test {path} ... ok (ran once)");
    } else {
        let ns = b.last_ns_per_iter;
        if ns >= 1_000_000.0 {
            println!("{path:<50} {:>12.3} ms/iter", ns / 1_000_000.0);
        } else if ns >= 1_000.0 {
            println!("{path:<50} {:>12.3} us/iter", ns / 1_000.0);
        } else {
            println!("{path:<50} {:>12.1} ns/iter", ns);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample budget (smaller = faster run).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            last_ns_per_iter: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            last_ns_per_iter: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Ends the group (upstream emits summary statistics here).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    mode: Mode,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            mode: mode_from_args(),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the default sample budget for subsequent benchmarks.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Overrides the measurement window (accepted for source
    /// compatibility; the stub derives its window from `sample_size`).
    pub fn measurement_time(self, _dur: Duration) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmarks `f` under `id` at the top level.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: self.mode,
            sample_size: self.sample_size,
            last_ns_per_iter: 0.0,
        };
        f(&mut b);
        report(&id.to_string(), &b);
        self
    }
}

/// Declares a benchmark group function, optionally with a custom
/// `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` function running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        (1..=n).fold(1, |a, b| a.wrapping_mul(b) % 1_000_003)
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            mode: Mode::Test,
            sample_size: 2,
        };
        let mut group = c.benchmark_group("fib");
        group.sample_size(2);
        for n in [5u64, 10] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| black_box(fib(black_box(n))));
            });
        }
        group.finish();
        c.bench_function("fib/20", |b| b.iter(|| black_box(fib(20))));
    }

    #[test]
    fn bench_mode_times_work() {
        let mut b = Bencher {
            mode: Mode::Bench,
            sample_size: 2,
            last_ns_per_iter: 0.0,
        };
        b.iter(|| black_box(fib(black_box(64))));
        assert!(b.last_ns_per_iter > 0.0);
    }
}
