# Convenience targets; everything builds offline from vendored deps
# (third_party/, see README "Offline builds").

.PHONY: build test chaos bench-smoke bench-json bench-check timing-check analyze-smoke serve-smoke forensics-smoke lint

build:
	cargo build --release --locked

test:
	cargo test -q --workspace --locked

# Run every criterion bench exactly once — a fast correctness pass over
# the bench harnesses (the zero-alloc wire bench asserts its property).
bench-smoke:
	cargo bench -p cde-bench --locked -- --test

# Blocking-vs-reactor campaign throughput at 1k/10k probes over real
# loopback UDP, plus the 1/2/4/8-shard scaling curve; writes
# BENCH_engine.json (probes/sec, p50/p99 latency, per-shard throughput)
# plus BENCH_engine_metrics.json (final reactor metrics-registry
# snapshot: engine counters, health gauges, pool/limiter/telemetry).
bench-json:
	cargo run --release --locked -p cde-bench --bin engine_bench -- \
		BENCH_engine.json --metrics-out BENCH_engine_metrics.json

# Both chaos suites: the hermetic FaultyTransport tests and the live
# loopback reactor fault-layer tests. Override the seed with
# CDE_CHAOS_SEED=<n>; failures print the seed to replay.
chaos:
	cargo test --release --locked --test chaos
	cargo test --release --locked -p cde-engine --test reactor_chaos

# Capture → analyze round trip: run the live census with telemetry
# JSONL capture, then feed the trace through the offline analyzer.
# `--check` fails unless at least one campaign completed with clean
# (non-retransmit) RTT samples.
analyze-smoke:
	cargo run --release --locked --example live_loopback_census -- \
		--telemetry-jsonl target/census_telemetry.jsonl
	cargo run --release --locked -p cde-insight --bin cde-analyze -- \
		target/census_telemetry.jsonl --check
	cargo run --release --locked -p cde-insight --bin cde-analyze -- \
		target/census_telemetry.jsonl --json --check > target/census_analysis.json

# The campaign daemon end to end: start cde-serve, drive it with curl
# (tenants, submit, status, /metrics), kill -9 it mid-campaign and
# resume from the checkpoint. Override the seed with CDE_CHAOS_SEED=<n>.
serve-smoke:
	scripts/serve_smoke.sh

# Flight-recorder forensics round trip: run the chaos census with the
# flight recorder on, dump the rings, and reconcile the dump into the
# per-ingress fate table. The seeded chaos plan plants *query*-direction
# loss only, so the dump must carry query-side wire evidence and zero
# reply drops; `--check` additionally enforces the versioned header,
# zero skipped lines and >=95% unanswered-probe coverage.
forensics-smoke:
	CDE_CHAOS_SEED=$${CDE_CHAOS_SEED:-4242} cargo run --release --locked --example live_loopback_census -- \
		--chaos --flight-dump target/census_flight.jsonl
	cargo run --release --locked -p cde-insight --bin cde-analyze -- \
		target/census_flight.jsonl --forensics --check | tee target/census_forensics.txt
	! grep -q 'wire observations: 0 query_dropped' target/census_forensics.txt
	grep -q ', 0 reply_dropped' target/census_forensics.txt

# Regenerate the engine benchmark and gate on the committed baseline:
# fails when the reactor-vs-blocking speedup drops more than 25%, the
# insight digests-on/off ratio regresses, the pulse-on/pulse-off health
# sampling ratio regresses, the flight-recorder on/off ratio regresses,
# per-shard scaling efficiency falls more
# than 10% below the baseline curve, (on a multi-core host) 2 shards
# deliver less than 1.6x one shard, or the adaptive timing loop stops
# beating the static plan on time-to-exact-count (see timing-check).
bench-check:
	cargo run --release --locked -p cde-bench --bin engine_bench -- \
		BENCH_engine.fresh.json
	cargo run --release --locked -p cde-bench --bin bench_check -- \
		BENCH_engine.json BENCH_engine.fresh.json

# The time-to-exact-count lane alone: static fixed-budget enumeration
# vs the adaptive loop (per-ingress RTO + sequential stopping) under a
# fixed-seed 30% Gilbert-Elliott fault plan. Fails unless both runs
# recover the planted cache count exactly, the adaptive run stays
# measurably cheaper in wall-clock and retransmits, and neither ratio
# regresses past the committed baseline's.
timing-check:
	cargo run --release --locked -p cde-bench --bin engine_bench -- \
		BENCH_engine.timing.fresh.json --timing-only
	cargo run --release --locked -p cde-bench --bin bench_check -- \
		BENCH_engine.json BENCH_engine.timing.fresh.json --timing-only

lint:
	cargo clippy --workspace --all-targets --locked -- -D warnings
	cargo fmt --all -- --check
